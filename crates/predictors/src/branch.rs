//! A two-level hybrid branch direction predictor (Table 1: "2-level
//! hybrid").
//!
//! The predictor combines a PC-indexed bimodal component with a
//! global-history (gshare) component; a chooser table of two-bit counters
//! selects between them per branch, as in the Alpha 21264-style hybrid the
//! paper's configuration implies.

use wp_mem::Addr;

use crate::counter::SaturatingCounter;

/// The resolved direction of a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOutcome {
    /// The branch was taken.
    Taken,
    /// The branch was not taken.
    NotTaken,
}

impl BranchOutcome {
    /// Converts a boolean "taken" flag.
    pub fn from_taken(taken: bool) -> Self {
        if taken {
            BranchOutcome::Taken
        } else {
            BranchOutcome::NotTaken
        }
    }

    /// True if this outcome is taken.
    pub fn is_taken(&self) -> bool {
        matches!(self, BranchOutcome::Taken)
    }
}

/// Sizing of the hybrid predictor's three tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridConfig {
    /// Entries in the bimodal (PC-indexed) table.
    pub bimodal_entries: usize,
    /// Entries in the gshare (history-XOR-PC-indexed) table.
    pub gshare_entries: usize,
    /// Entries in the chooser table.
    pub chooser_entries: usize,
    /// Number of global history bits.
    pub history_bits: u32,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            bimodal_entries: 2048,
            gshare_entries: 4096,
            chooser_entries: 2048,
            history_bits: 12,
        }
    }
}

/// Two-level hybrid branch direction predictor.
///
/// # Example
///
/// ```
/// use wp_predictors::{BranchOutcome, HybridBranchPredictor};
///
/// let mut p = HybridBranchPredictor::default();
/// let pc = 0x40_0000;
/// // Train a strongly taken branch.
/// for _ in 0..4 {
///     p.update(pc, BranchOutcome::Taken);
/// }
/// assert_eq!(p.predict(pc), BranchOutcome::Taken);
/// ```
#[derive(Debug, Clone)]
pub struct HybridBranchPredictor {
    config: HybridConfig,
    bimodal: Vec<SaturatingCounter>,
    gshare: Vec<SaturatingCounter>,
    chooser: Vec<SaturatingCounter>,
    history: u64,
    predictions: u64,
    mispredictions: u64,
}

impl Default for HybridBranchPredictor {
    fn default() -> Self {
        Self::new(HybridConfig::default())
    }
}

impl HybridBranchPredictor {
    /// Creates a predictor with the given table sizes.
    ///
    /// # Panics
    ///
    /// Panics if any table size is not a power of two.
    pub fn new(config: HybridConfig) -> Self {
        for (name, v) in [
            ("bimodal_entries", config.bimodal_entries),
            ("gshare_entries", config.gshare_entries),
            ("chooser_entries", config.chooser_entries),
        ] {
            assert!(v.is_power_of_two(), "{name} must be a power of two");
        }
        Self {
            config,
            bimodal: vec![SaturatingCounter::two_bit(1); config.bimodal_entries],
            gshare: vec![SaturatingCounter::two_bit(1); config.gshare_entries],
            chooser: vec![SaturatingCounter::two_bit(2); config.chooser_entries],
            history: 0,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// The table sizing in use.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    fn bimodal_index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & (self.bimodal.len() - 1)
    }

    fn gshare_index(&self, pc: Addr) -> usize {
        let history_mask = (1u64 << self.config.history_bits) - 1;
        (((pc >> 2) ^ (self.history & history_mask)) as usize) & (self.gshare.len() - 1)
    }

    fn chooser_index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & (self.chooser.len() - 1)
    }

    /// Predicts the direction of the branch at `pc` without updating any
    /// state.
    pub fn predict(&self, pc: Addr) -> BranchOutcome {
        let bimodal = self.bimodal[self.bimodal_index(pc)].is_high();
        let gshare = self.gshare[self.gshare_index(pc)].is_high();
        let use_gshare = self.chooser[self.chooser_index(pc)].is_high();
        BranchOutcome::from_taken(if use_gshare { gshare } else { bimodal })
    }

    /// Updates the predictor with the resolved `outcome` of the branch at
    /// `pc` and returns the outcome that had been predicted (so callers can
    /// count mispredictions without a separate `predict` call).
    pub fn update(&mut self, pc: Addr, outcome: BranchOutcome) -> BranchOutcome {
        let bimodal_idx = self.bimodal_index(pc);
        let gshare_idx = self.gshare_index(pc);
        let chooser_idx = self.chooser_index(pc);

        let bimodal_pred = self.bimodal[bimodal_idx].is_high();
        let gshare_pred = self.gshare[gshare_idx].is_high();
        let use_gshare = self.chooser[chooser_idx].is_high();
        let predicted = if use_gshare {
            gshare_pred
        } else {
            bimodal_pred
        };
        let taken = outcome.is_taken();

        self.predictions += 1;
        if predicted != taken {
            self.mispredictions += 1;
        }

        // Train the chooser toward whichever component was right when they
        // disagree.
        if bimodal_pred != gshare_pred {
            if gshare_pred == taken {
                self.chooser[chooser_idx].increment();
            } else {
                self.chooser[chooser_idx].decrement();
            }
        }
        // Train both components.
        if taken {
            self.bimodal[bimodal_idx].increment();
            self.gshare[gshare_idx].increment();
        } else {
            self.bimodal[bimodal_idx].decrement();
            self.gshare[gshare_idx].decrement();
        }
        // Update global history.
        self.history = (self.history << 1) | u64::from(taken);

        BranchOutcome::from_taken(predicted)
    }

    /// Total branches predicted (via [`Self::update`]).
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Branches whose prediction disagreed with the outcome.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Prediction accuracy in `[0, 1]`; 1.0 when no branch has been seen.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = HybridBranchPredictor::default();
        let pc = 0x1000;
        for _ in 0..20 {
            p.update(pc, BranchOutcome::Taken);
        }
        assert_eq!(p.predict(pc), BranchOutcome::Taken);
        assert!(p.accuracy() > 0.8);
    }

    #[test]
    fn learns_an_alternating_pattern_via_history() {
        let mut p = HybridBranchPredictor::default();
        let pc = 0x2000;
        // Alternating taken/not-taken: bimodal flounders, gshare learns it.
        let mut correct = 0;
        let total = 400;
        for i in 0..total {
            let outcome = BranchOutcome::from_taken(i % 2 == 0);
            let predicted = p.update(pc, outcome);
            if predicted == outcome {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.8,
            "hybrid should learn alternation, got {correct}/{total}"
        );
    }

    #[test]
    fn accuracy_is_one_before_any_branch() {
        let p = HybridBranchPredictor::default();
        assert_eq!(p.accuracy(), 1.0);
    }

    #[test]
    fn update_returns_the_prediction_made() {
        let mut p = HybridBranchPredictor::default();
        let pc = 0x3000;
        let predicted = p.predict(pc);
        let reported = p.update(pc, BranchOutcome::Taken);
        assert_eq!(predicted, reported);
    }

    #[test]
    fn mispredictions_are_counted() {
        let mut p = HybridBranchPredictor::default();
        let pc = 0x4000;
        for _ in 0..10 {
            p.update(pc, BranchOutcome::Taken);
        }
        let before = p.mispredictions();
        p.update(pc, BranchOutcome::NotTaken);
        assert_eq!(p.mispredictions(), before + 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_config_panics() {
        let _ = HybridBranchPredictor::new(HybridConfig {
            bimodal_entries: 1000,
            ..HybridConfig::default()
        });
    }
}
