//! Way-prediction tables for d-cache loads.
//!
//! Section 2.2.1: "way-prediction schemes look up a prediction table using a
//! handle to index into the table and obtain the predicted way number". Two
//! handles are viable: the load PC (available early in the pipeline, less
//! accurate) and the XOR approximation of the load address (more accurate,
//! but available too late to hide the table lookup).

use wp_mem::{Addr, WayIndex};

/// A direct-indexed table mapping a handle to the last way the handle's
/// accesses hit in.
#[derive(Debug, Clone)]
struct WayTable {
    entries: Vec<Option<WayIndex>>,
    predictions: u64,
    hits_without_prediction: u64,
}

impl WayTable {
    fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        Self {
            entries: vec![None; entries],
            predictions: 0,
            hits_without_prediction: 0,
        }
    }

    #[inline]
    fn index(&self, handle: u64) -> usize {
        (handle as usize) & (self.entries.len() - 1)
    }

    #[inline]
    fn predict(&mut self, handle: u64) -> Option<WayIndex> {
        let prediction = self.entries[self.index(handle)];
        match prediction {
            Some(_) => self.predictions += 1,
            None => self.hits_without_prediction += 1,
        }
        prediction
    }

    #[inline]
    fn update(&mut self, handle: u64, way: WayIndex) {
        let idx = self.index(handle);
        self.entries[idx] = Some(way);
    }
}

/// PC-indexed way predictor (the "early available" handle).
///
/// The predictor exploits per-instruction block locality: a load that keeps
/// accessing the same block (a loop walking an array block, or a load of a
/// global) keeps hitting in the same way.
///
/// # Example
///
/// ```
/// use wp_predictors::PcWayPredictor;
///
/// let mut p = PcWayPredictor::new(1024);
/// assert_eq!(p.predict(0x400), None); // cold: no prediction
/// p.update(0x400, 2);
/// assert_eq!(p.predict(0x400), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct PcWayPredictor {
    table: WayTable,
}

impl PcWayPredictor {
    /// Creates a predictor with `entries` table entries (the paper uses
    /// 1024).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        Self {
            table: WayTable::new(entries),
        }
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.entries.len()
    }

    /// Bits of storage per entry for an `associativity`-way cache (used for
    /// energy accounting: `log2(N)` way bits plus a valid bit).
    pub fn bits_per_entry(associativity: usize) -> usize {
        (associativity.max(2)).trailing_zeros() as usize + 1
    }

    /// Predicts the way for the load at `pc`, or `None` if the entry has
    /// never been trained (the access then defaults to a parallel probe).
    pub fn predict(&mut self, pc: Addr) -> Option<WayIndex> {
        self.table.predict(pc >> 2)
    }

    /// Records that the load at `pc` actually hit in `way`.
    pub fn update(&mut self, pc: Addr, way: WayIndex) {
        self.table.update(pc >> 2, way);
    }

    /// Number of lookups that returned a prediction.
    pub fn predictions_made(&self) -> u64 {
        self.table.predictions
    }

    /// Number of lookups that found an untrained entry.
    pub fn cold_lookups(&self) -> u64 {
        self.table.hits_without_prediction
    }
}

/// Way predictor indexed by the XOR approximation of the load address
/// (the "late available" handle of Section 2.2.1, after \[3\] and \[10\]).
///
/// The caller supplies the approximate address (source register XOR offset);
/// the trace generator models how often that approximation matches the real
/// block address.
#[derive(Debug, Clone)]
pub struct XorWayPredictor {
    table: WayTable,
    block_shift: u32,
}

impl XorWayPredictor {
    /// Creates a predictor with `entries` table entries, indexing by the
    /// approximate *block* address of a cache with `block_bytes` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `block_bytes` is not a power of two.
    pub fn new(entries: usize, block_bytes: usize) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        Self {
            table: WayTable::new(entries),
            block_shift: block_bytes.trailing_zeros(),
        }
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.entries.len()
    }

    /// Predicts the way for a load whose XOR-approximate address is
    /// `approx_addr`.
    pub fn predict(&mut self, approx_addr: Addr) -> Option<WayIndex> {
        self.table.predict(approx_addr >> self.block_shift)
    }

    /// Trains the entry for `approx_addr` with the way the load actually hit
    /// in.
    pub fn update(&mut self, approx_addr: Addr, way: WayIndex) {
        self.table.update(approx_addr >> self.block_shift, way);
    }

    /// Number of lookups that returned a prediction.
    pub fn predictions_made(&self) -> u64 {
        self.table.predictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_predictor_learns_last_way() {
        let mut p = PcWayPredictor::new(16);
        p.update(0x1000, 3);
        assert_eq!(p.predict(0x1000), Some(3));
        p.update(0x1000, 1);
        assert_eq!(p.predict(0x1000), Some(1));
    }

    #[test]
    fn pc_predictor_cold_entries_return_none() {
        let mut p = PcWayPredictor::new(16);
        assert_eq!(p.predict(0x2000), None);
        assert_eq!(p.cold_lookups(), 1);
        assert_eq!(p.predictions_made(), 0);
    }

    #[test]
    fn distinct_pcs_use_distinct_entries() {
        let mut p = PcWayPredictor::new(1024);
        p.update(0x1000, 0);
        p.update(0x1004, 1);
        assert_eq!(p.predict(0x1000), Some(0));
        assert_eq!(p.predict(0x1004), Some(1));
    }

    #[test]
    fn aliasing_pcs_share_an_entry() {
        let mut p = PcWayPredictor::new(16);
        // PCs 16 entries * 4 bytes apart alias.
        p.update(0x1000, 0);
        p.update(0x1000 + 16 * 4, 2);
        assert_eq!(p.predict(0x1000), Some(2));
    }

    #[test]
    fn bits_per_entry_grows_with_associativity() {
        assert_eq!(PcWayPredictor::bits_per_entry(2), 2);
        assert_eq!(PcWayPredictor::bits_per_entry(4), 3);
        assert_eq!(PcWayPredictor::bits_per_entry(8), 4);
    }

    #[test]
    fn xor_predictor_indexes_by_block() {
        let mut p = XorWayPredictor::new(64, 32);
        p.update(0x1000, 3);
        // Same block, different word: same prediction.
        assert_eq!(p.predict(0x101c), Some(3));
        // Different block: untrained.
        assert_eq!(p.predict(0x1020), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_table_panics() {
        let _ = PcWayPredictor::new(1000);
    }
}
