//! The selective direct-mapping prediction table (Section 2.2.2).
//!
//! Each load PC indexes a two-bit saturating counter. Counter values 0 and 1
//! flag *direct mapping* (probe only the direct-mapping way); values 2 and 3
//! flag *set-associative mapping* (the access is treated as conflicting and
//! handled by parallel, sequential, or way-predicted access). A hit through
//! the direct-mapping way decrements the counter; a hit through a
//! set-associative way increments it.

use wp_mem::Addr;

use crate::counter::SaturatingCounter;

/// The mapping predicted for a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingPrediction {
    /// Probe only the direct-mapping way (the common, non-conflicting case).
    DirectMapped,
    /// Treat the access as conflicting and use the set-associative fallback
    /// (parallel, sequential, or way-predicted).
    SetAssociative,
}

/// PC-indexed table of two-bit counters choosing direct vs. set-associative
/// mapping per access.
///
/// # Example
///
/// ```
/// use wp_predictors::{MappingPrediction, SelDmPredictor};
///
/// let mut p = SelDmPredictor::new(1024);
/// let pc = 0x400;
/// assert_eq!(p.predict(pc), MappingPrediction::DirectMapped);
/// p.record_set_associative_hit(pc);
/// p.record_set_associative_hit(pc);
/// assert_eq!(p.predict(pc), MappingPrediction::SetAssociative);
/// p.record_direct_mapped_hit(pc);
/// p.record_direct_mapped_hit(pc);
/// assert_eq!(p.predict(pc), MappingPrediction::DirectMapped);
/// ```
#[derive(Debug, Clone)]
pub struct SelDmPredictor {
    counters: Vec<SaturatingCounter>,
}

impl SelDmPredictor {
    /// Number of bits stored per entry (a two-bit counter).
    pub const BITS_PER_ENTRY: usize = 2;

    /// Creates a table with `entries` counters, all initialised to 0 so
    /// every load starts out predicted direct-mapped ("cache blocks are
    /// considered non-conflicting by default").
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        Self {
            counters: vec![SaturatingCounter::two_bit(0); entries],
        }
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predicts the mapping for the load at `pc`.
    #[inline]
    pub fn predict(&self, pc: Addr) -> MappingPrediction {
        if self.counters[self.index(pc)].is_high() {
            MappingPrediction::SetAssociative
        } else {
            MappingPrediction::DirectMapped
        }
    }

    /// Records that the load at `pc` hit in its direct-mapping way
    /// (decrements the counter toward direct mapping).
    #[inline]
    pub fn record_direct_mapped_hit(&mut self, pc: Addr) {
        let idx = self.index(pc);
        self.counters[idx].decrement();
    }

    /// Records that the load at `pc` hit through a set-associative
    /// (non-direct-mapping) way (increments the counter toward
    /// set-associative mapping).
    #[inline]
    pub fn record_set_associative_hit(&mut self, pc: Addr) {
        let idx = self.index(pc);
        self.counters[idx].increment();
    }

    /// Raw counter value for the load at `pc` (useful for tests and
    /// diagnostics).
    pub fn counter_value(&self, pc: Addr) -> u8 {
        self.counters[self.index(pc)].value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_direct_mapped() {
        let p = SelDmPredictor::new(64);
        for pc in [0u64, 0x400, 0xffff_fffc] {
            assert_eq!(p.predict(pc), MappingPrediction::DirectMapped);
        }
    }

    #[test]
    fn counter_thresholds_match_paper() {
        // "Counter values of 0 and 1 flag direct-mapping, and values 2 and 3
        // flag set-associative mapping."
        let mut p = SelDmPredictor::new(64);
        let pc = 0x100;
        assert_eq!(p.counter_value(pc), 0);
        p.record_set_associative_hit(pc);
        assert_eq!(p.counter_value(pc), 1);
        assert_eq!(p.predict(pc), MappingPrediction::DirectMapped);
        p.record_set_associative_hit(pc);
        assert_eq!(p.counter_value(pc), 2);
        assert_eq!(p.predict(pc), MappingPrediction::SetAssociative);
        p.record_set_associative_hit(pc);
        p.record_set_associative_hit(pc);
        assert_eq!(p.counter_value(pc), 3, "saturates at 3");
    }

    #[test]
    fn direct_mapped_hits_pull_back_down() {
        let mut p = SelDmPredictor::new(64);
        let pc = 0x200;
        for _ in 0..3 {
            p.record_set_associative_hit(pc);
        }
        assert_eq!(p.predict(pc), MappingPrediction::SetAssociative);
        p.record_direct_mapped_hit(pc);
        p.record_direct_mapped_hit(pc);
        assert_eq!(p.predict(pc), MappingPrediction::DirectMapped);
        for _ in 0..5 {
            p.record_direct_mapped_hit(pc);
        }
        assert_eq!(p.counter_value(pc), 0, "saturates at 0");
    }

    #[test]
    fn different_pcs_do_not_interfere_in_large_table() {
        let mut p = SelDmPredictor::new(1024);
        p.record_set_associative_hit(0x100);
        p.record_set_associative_hit(0x100);
        assert_eq!(p.predict(0x100), MappingPrediction::SetAssociative);
        assert_eq!(p.predict(0x104), MappingPrediction::DirectMapped);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = SelDmPredictor::new(1000);
    }
}
