//! The saturating-counter building block shared by the prediction tables.

/// An n-bit saturating counter (the paper's tables use two-bit counters that
/// "saturate at 0 and 3").
///
/// # Example
///
/// ```
/// use wp_predictors::SaturatingCounter;
///
/// let mut c = SaturatingCounter::two_bit(0);
/// c.increment();
/// c.increment();
/// c.increment();
/// c.increment();
/// assert_eq!(c.value(), 3); // saturates at 3
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates a counter saturating at `max`, starting at `initial`
    /// (clamped to `max`).
    pub fn new(initial: u8, max: u8) -> Self {
        Self {
            value: initial.min(max),
            max,
        }
    }

    /// A two-bit counter (saturating at 0 and 3) starting at `initial`.
    pub fn two_bit(initial: u8) -> Self {
        Self::new(initial, 3)
    }

    /// Current counter value.
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Maximum (saturation) value.
    pub fn max(&self) -> u8 {
        self.max
    }

    /// Increments, saturating at the maximum.
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    pub fn decrement(&mut self) {
        self.value = self.value.saturating_sub(1);
    }

    /// True if the counter is in its upper half (≥ (max+1)/2); for a
    /// two-bit counter this is the conventional "taken" / "set-associative"
    /// region (values 2 and 3).
    pub fn is_high(&self) -> bool {
        u16::from(self.value) * 2 > u16::from(self.max)
    }
}

impl Default for SaturatingCounter {
    /// A two-bit counter starting at 0.
    fn default() -> Self {
        Self::two_bit(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c = SaturatingCounter::two_bit(0);
        c.decrement();
        assert_eq!(c.value(), 0);
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn two_bit_high_region_is_2_and_3() {
        for (v, high) in [(0u8, false), (1, false), (2, true), (3, true)] {
            assert_eq!(SaturatingCounter::two_bit(v).is_high(), high, "value {v}");
        }
    }

    #[test]
    fn initial_value_is_clamped() {
        assert_eq!(SaturatingCounter::two_bit(9).value(), 3);
    }

    #[test]
    fn default_is_zeroed_two_bit() {
        let c = SaturatingCounter::default();
        assert_eq!(c.value(), 0);
        assert_eq!(c.max(), 3);
    }
}
