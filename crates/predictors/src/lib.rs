//! Prediction structures for the wpsdm reproduction of *Reducing
//! Set-Associative Cache Energy via Way-Prediction and Selective
//! Direct-Mapping* (Powell et al., MICRO 2001).
//!
//! The paper's techniques rest on small lookup tables that predict, before
//! the cache is probed, either *which way* holds the data or *whether the
//! access is non-conflicting* and can use direct mapping:
//!
//! * [`PcWayPredictor`] — PC-indexed way prediction for d-cache loads
//!   (early-available but ~60 % accurate; Section 2.2.1).
//! * [`XorWayPredictor`] — way prediction indexed by the XOR approximation
//!   of the load address (more accurate but late-available; Section 2.2.1).
//! * [`SelDmPredictor`] — the PC-indexed two-bit-counter table that flags an
//!   access as direct-mapped or set-associative (Section 2.2.2).
//! * [`VictimList`] — the 16-entry list of recently evicted blocks that
//!   identifies conflicting blocks (Section 2.2.2).
//! * [`Btb`], [`Sawp`], [`ReturnAddressStack`], [`HybridBranchPredictor`] —
//!   the fetch-engine structures, extended with way fields, that provide
//!   timely i-cache way predictions (Section 2.3 / Figure 3).
//! * [`SaturatingCounter`] — the shared two-bit counter building block.
//!
//! # Example
//!
//! ```
//! use wp_predictors::{MappingPrediction, SelDmPredictor};
//!
//! let mut predictor = SelDmPredictor::new(1024);
//! let pc = 0x40_0100;
//! // Loads default to direct mapping until they are caught conflicting.
//! assert_eq!(predictor.predict(pc), MappingPrediction::DirectMapped);
//! // Two hits through a set-associative way flip the prediction.
//! predictor.record_set_associative_hit(pc);
//! predictor.record_set_associative_hit(pc);
//! assert_eq!(predictor.predict(pc), MappingPrediction::SetAssociative);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod btb;
mod counter;
mod ras;
mod sawp;
mod seldm;
mod victim_list;
mod way_table;

pub use branch::{BranchOutcome, HybridBranchPredictor, HybridConfig};
pub use btb::{Btb, BtbEntry};
pub use counter::SaturatingCounter;
pub use ras::ReturnAddressStack;
pub use sawp::Sawp;
pub use seldm::{MappingPrediction, SelDmPredictor};
pub use victim_list::VictimList;
pub use way_table::{PcWayPredictor, XorWayPredictor};
