//! The Sequential Address Way-Predictor (SAWP) table (Section 2.3).
//!
//! "For not-taken branches and sequential fetches (non-branches), we use an
//! extra table called the Sequential Address Way-Predictor (SAWP) table,
//! which is indexed by the current PC. At first glance, the SAWP might seem
//! unnecessary, because the incremented PC would map to the same way as the
//! current PC. However, successive PCs may not fall within the same way."

use wp_mem::{Addr, WayIndex};

/// PC-indexed table predicting the i-cache way of the *next sequential*
/// fetch.
///
/// # Example
///
/// ```
/// use wp_predictors::Sawp;
///
/// let mut sawp = Sawp::new(1024);
/// // After observing that the fetch following PC 0x40_0000 hit way 3 ...
/// sawp.update(0x40_0000, 3);
/// // ... the next time we fetch from 0x40_0000 we predict way 3 for its
/// // successor.
/// assert_eq!(sawp.predict(0x40_0000), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct Sawp {
    entries: Vec<Option<WayIndex>>,
    lookups: u64,
    predictions: u64,
}

impl Sawp {
    /// Creates a SAWP with `entries` entries (the paper evaluates a
    /// 1024-entry SAWP).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "SAWP size must be a power of two"
        );
        Self {
            entries: vec![None; entries],
            lookups: 0,
            predictions: 0,
        }
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Bits per entry for an `associativity`-way i-cache (`log2(N)` way bits
    /// plus a valid bit), for energy accounting.
    pub fn bits_per_entry(associativity: usize) -> usize {
        (associativity.max(2)).trailing_zeros() as usize + 1
    }

    fn index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    /// Predicts the way of the fetch that sequentially follows the fetch at
    /// `current_pc`, or `None` if the entry is untrained (the fetch then
    /// defaults to a parallel access).
    pub fn predict(&mut self, current_pc: Addr) -> Option<WayIndex> {
        self.lookups += 1;
        let prediction = self.entries[self.index(current_pc)];
        if prediction.is_some() {
            self.predictions += 1;
        }
        prediction
    }

    /// Records that the fetch following `current_pc` actually resided in
    /// `way`.
    pub fn update(&mut self, current_pc: Addr, way: WayIndex) {
        let idx = self.index(current_pc);
        self.entries[idx] = Some(way);
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that returned a prediction.
    pub fn predictions_made(&self) -> u64 {
        self.predictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_entries_return_none() {
        let mut s = Sawp::new(64);
        assert_eq!(s.predict(0x100), None);
        assert_eq!(s.lookups(), 1);
        assert_eq!(s.predictions_made(), 0);
    }

    #[test]
    fn learns_successor_way() {
        let mut s = Sawp::new(64);
        s.update(0x100, 2);
        assert_eq!(s.predict(0x100), Some(2));
        s.update(0x100, 0);
        assert_eq!(s.predict(0x100), Some(0));
    }

    #[test]
    fn successive_pcs_can_predict_different_ways() {
        // The reason the SAWP exists: the next sequential block need not sit
        // in the same way as the current one.
        let mut s = Sawp::new(1024);
        s.update(0x1000, 0);
        s.update(0x1020, 3);
        assert_eq!(s.predict(0x1000), Some(0));
        assert_eq!(s.predict(0x1020), Some(3));
    }

    #[test]
    fn bits_per_entry_matches_associativity() {
        assert_eq!(Sawp::bits_per_entry(4), 3);
        assert_eq!(Sawp::bits_per_entry(8), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = Sawp::new(1000);
    }
}
