//! A return address stack augmented with way predictions (Section 2.3).
//!
//! "For function returns, we augment the return address stack (RAS) to
//! provide not only the return address but also the return address's way."

use wp_mem::{Addr, WayIndex};

/// A bounded return address stack whose entries carry the i-cache way of the
/// return target.
///
/// When the stack overflows, the oldest entry is discarded (as in real
/// hardware); when it underflows, [`ReturnAddressStack::pop`] returns `None`
/// and the fetch falls back to a parallel access.
///
/// # Example
///
/// ```
/// use wp_predictors::ReturnAddressStack;
///
/// let mut ras = ReturnAddressStack::new(8);
/// ras.push(0x40_0104, Some(2));
/// assert_eq!(ras.pop(), Some((0x40_0104, Some(2))));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    entries: Vec<(Addr, Option<WayIndex>)>,
    capacity: usize,
    overflows: u64,
    underflows: u64,
}

impl ReturnAddressStack {
    /// Creates a stack with room for `capacity` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be non-zero");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            overflows: 0,
            underflows: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the stack holds no return addresses.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pushes the return address of a call, with the predicted i-cache way
    /// of the return target if known.
    pub fn push(&mut self, return_addr: Addr, way: Option<WayIndex>) {
        if self.entries.len() == self.capacity {
            self.overflows += 1;
            self.entries.remove(0);
        }
        self.entries.push((return_addr, way));
    }

    /// Pops the most recent return address and its way prediction, or `None`
    /// if the stack is empty.
    pub fn pop(&mut self) -> Option<(Addr, Option<WayIndex>)> {
        let popped = self.entries.pop();
        if popped.is_none() {
            self.underflows += 1;
        }
        popped
    }

    /// Number of pushes that discarded the oldest entry.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Number of pops on an empty stack.
    pub fn underflows(&self) -> u64 {
        self.underflows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(0x100, Some(0));
        ras.push(0x200, Some(1));
        assert_eq!(ras.pop(), Some((0x200, Some(1))));
        assert_eq!(ras.pop(), Some((0x100, Some(0))));
    }

    #[test]
    fn overflow_discards_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(0x100, None);
        ras.push(0x200, None);
        ras.push(0x300, None);
        assert_eq!(ras.overflows(), 1);
        assert_eq!(ras.pop(), Some((0x300, None)));
        assert_eq!(ras.pop(), Some((0x200, None)));
        assert_eq!(ras.pop(), None, "0x100 was discarded");
    }

    #[test]
    fn underflow_is_counted() {
        let mut ras = ReturnAddressStack::new(2);
        assert_eq!(ras.pop(), None);
        assert_eq!(ras.underflows(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = ReturnAddressStack::new(0);
    }
}
