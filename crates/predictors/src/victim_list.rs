//! The victim list that identifies conflicting blocks (Section 2.2.2).
//!
//! "We identify conflicting blocks by maintaining a list of victim (i.e.,
//! replaced) block addresses. On a replacement, the evicted block increments
//! its entry's counter in the victim list if it is already present in the
//! victim list; otherwise, a new victim list entry is allocated. If the
//! count exceeds two, the block is deemed conflicting and placed in its
//! set-associative position to avoid future conflicts."

use wp_mem::BlockAddr;

#[derive(Debug, Clone, Copy)]
struct VictimEntry {
    block: BlockAddr,
    count: u32,
    last_use: u64,
}

/// A small, fully-associative list of recently evicted block addresses with
/// per-block eviction counts. The paper uses 16 entries (~0.06 KB).
///
/// # Example
///
/// ```
/// use wp_predictors::VictimList;
///
/// let mut list = VictimList::new(16, 2);
/// let block = 0x4_2000;
/// assert!(!list.record_eviction(block));
/// assert!(!list.record_eviction(block));
/// // The third eviction pushes the count past the threshold.
/// assert!(list.record_eviction(block));
/// assert!(list.is_conflicting(block));
/// ```
#[derive(Debug, Clone)]
pub struct VictimList {
    entries: Vec<VictimEntry>,
    capacity: usize,
    conflict_threshold: u32,
    clock: u64,
    allocations: u64,
    replacements: u64,
}

impl VictimList {
    /// Creates a victim list with room for `capacity` block addresses; a
    /// block becomes conflicting once its eviction count *exceeds*
    /// `conflict_threshold` (the paper uses a threshold of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, conflict_threshold: u32) -> Self {
        assert!(capacity > 0, "victim list capacity must be non-zero");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            conflict_threshold,
            clock: 0,
            allocations: 0,
            replacements: 0,
        }
    }

    /// The paper's configuration: 16 entries, conflicting after more than
    /// two evictions.
    pub fn paper_default() -> Self {
        Self::new(16, 2)
    }

    /// Number of entries the list can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently occupied.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no victims have been recorded (or all have aged out).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of new entries allocated so far.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Number of entries displaced because the list was full.
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// Records that `block` was just evicted from the cache.
    ///
    /// Returns `true` if the block is now considered conflicting (its count
    /// exceeds the threshold), so callers can switch the block to its
    /// set-associative position on the refill.
    pub fn record_eviction(&mut self, block: BlockAddr) -> bool {
        self.clock += 1;
        if let Some(entry) = self.entries.iter_mut().find(|e| e.block == block) {
            entry.count += 1;
            entry.last_use = self.clock;
            return entry.count > self.conflict_threshold;
        }
        self.allocations += 1;
        if self.entries.len() == self.capacity {
            self.replacements += 1;
            // Replace the least recently touched entry (captures conflicts
            // that recur "within a short duration").
            if let Some(pos) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
            {
                self.entries[pos] = VictimEntry {
                    block,
                    count: 1,
                    last_use: self.clock,
                };
            }
        } else {
            self.entries.push(VictimEntry {
                block,
                count: 1,
                last_use: self.clock,
            });
        }
        1 > self.conflict_threshold
    }

    /// True if `block` has been evicted more than the threshold number of
    /// times while tracked by the list.
    pub fn is_conflicting(&self, block: BlockAddr) -> bool {
        self.entries
            .iter()
            .any(|e| e.block == block && e.count > self.conflict_threshold)
    }

    /// The eviction count recorded for `block`, if it is currently tracked.
    pub fn eviction_count(&self, block: BlockAddr) -> Option<u32> {
        self.entries
            .iter()
            .find(|e| e.block == block)
            .map(|e| e.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_16_entries() {
        let list = VictimList::paper_default();
        assert_eq!(list.capacity(), 16);
        assert!(list.is_empty());
    }

    #[test]
    fn becomes_conflicting_after_threshold_exceeded() {
        let mut list = VictimList::new(4, 2);
        let block = 0x1000;
        assert!(!list.record_eviction(block));
        assert!(!list.is_conflicting(block));
        assert!(!list.record_eviction(block));
        assert!(!list.is_conflicting(block));
        assert!(list.record_eviction(block));
        assert!(list.is_conflicting(block));
        assert_eq!(list.eviction_count(block), Some(3));
    }

    #[test]
    fn zero_threshold_flags_immediately() {
        let mut list = VictimList::new(4, 0);
        assert!(list.record_eviction(0x2000));
        assert!(list.is_conflicting(0x2000));
    }

    #[test]
    fn capacity_is_bounded_and_lru_entry_is_displaced() {
        let mut list = VictimList::new(2, 2);
        list.record_eviction(0x100);
        list.record_eviction(0x200);
        // Touch 0x100 so 0x200 is the stalest.
        list.record_eviction(0x100);
        list.record_eviction(0x300);
        assert_eq!(list.len(), 2);
        assert_eq!(list.replacements(), 1);
        assert!(
            list.eviction_count(0x200).is_none(),
            "stale entry displaced"
        );
        assert_eq!(list.eviction_count(0x100), Some(2));
        assert_eq!(list.eviction_count(0x300), Some(1));
    }

    #[test]
    fn displaced_blocks_lose_their_history() {
        let mut list = VictimList::new(1, 2);
        list.record_eviction(0xa00);
        list.record_eviction(0xa00);
        list.record_eviction(0xb00); // displaces 0xa00
                                     // 0xa00 starts from scratch.
        assert!(!list.record_eviction(0xa00));
        assert_eq!(list.eviction_count(0xa00), Some(1));
    }

    #[test]
    fn untracked_blocks_are_not_conflicting() {
        let list = VictimList::paper_default();
        assert!(!list.is_conflicting(0xdead_0000));
        assert_eq!(list.eviction_count(0xdead_0000), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = VictimList::new(0, 2);
    }
}
