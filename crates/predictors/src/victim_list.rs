//! The victim list that identifies conflicting blocks (Section 2.2.2).
//!
//! "We identify conflicting blocks by maintaining a list of victim (i.e.,
//! replaced) block addresses. On a replacement, the evicted block increments
//! its entry's counter in the victim list if it is already present in the
//! victim list; otherwise, a new victim list entry is allocated. If the
//! count exceeds two, the block is deemed conflicting and placed in its
//! set-associative position to avoid future conflicts."

use wp_mem::BlockAddr;

#[derive(Debug, Clone, Copy)]
struct VictimEntry {
    block: BlockAddr,
    count: u32,
    last_use: u64,
    /// Cached [`VictimList::filter_bit`] of `block`, so filter rebuilds
    /// after a displacement never re-hash.
    bit: u64,
}

/// A small, fully-associative list of recently evicted block addresses with
/// per-block eviction counts. The paper uses 16 entries (~0.06 KB).
///
/// # Example
///
/// ```
/// use wp_predictors::VictimList;
///
/// let mut list = VictimList::new(16, 2);
/// let block = 0x4_2000;
/// assert!(!list.record_eviction(block));
/// assert!(!list.record_eviction(block));
/// // The third eviction pushes the count past the threshold.
/// assert!(list.record_eviction(block));
/// assert!(list.is_conflicting(block));
/// ```
#[derive(Debug, Clone)]
pub struct VictimList {
    entries: Vec<VictimEntry>,
    capacity: usize,
    conflict_threshold: u32,
    clock: u64,
    allocations: u64,
    replacements: u64,
    /// 64-bit membership filter over the *conflicting* entries: bit
    /// `hash(block) % 64` is set for every block whose count exceeds the
    /// threshold. [`VictimList::is_conflicting`] is consulted on every
    /// d-cache access and almost always answers "no"; a clear filter bit
    /// proves that without scanning the list. A set bit falls back to the
    /// exact scan, so answers are identical to the unfiltered list.
    conflict_filter: u64,
    /// Same construction over *all* tracked entries: every eviction of a
    /// block the list has never seen (the common case — most victims are
    /// new) skips the exact find and goes straight to allocation.
    presence_filter: u64,
}

impl VictimList {
    /// Creates a victim list with room for `capacity` block addresses; a
    /// block becomes conflicting once its eviction count *exceeds*
    /// `conflict_threshold` (the paper uses a threshold of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, conflict_threshold: u32) -> Self {
        assert!(capacity > 0, "victim list capacity must be non-zero");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            conflict_threshold,
            clock: 0,
            allocations: 0,
            replacements: 0,
            conflict_filter: 0,
            presence_filter: 0,
        }
    }

    /// The filter bit of `block` (multiplicative hash: block addresses are
    /// block-aligned, so the low bits carry no information).
    #[inline]
    fn filter_bit(block: BlockAddr) -> u64 {
        1 << (block.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58)
    }

    /// Rebuilds both filters from the entries (after a displacement
    /// removed a block, its bits may have to go).
    fn rebuild_filters(&mut self) {
        self.presence_filter = 0;
        self.conflict_filter = 0;
        for entry in &self.entries {
            self.presence_filter |= entry.bit;
            if entry.count > self.conflict_threshold {
                self.conflict_filter |= entry.bit;
            }
        }
    }

    /// The paper's configuration: 16 entries, conflicting after more than
    /// two evictions.
    pub fn paper_default() -> Self {
        Self::new(16, 2)
    }

    /// Number of entries the list can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently occupied.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no victims have been recorded (or all have aged out).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of new entries allocated so far.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Number of entries displaced because the list was full.
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// Records that `block` was just evicted from the cache.
    ///
    /// Returns `true` if the block is now considered conflicting (its count
    /// exceeds the threshold), so callers can switch the block to its
    /// set-associative position on the refill.
    pub fn record_eviction(&mut self, block: BlockAddr) -> bool {
        self.clock += 1;
        let threshold = self.conflict_threshold;
        let bit = Self::filter_bit(block);
        if self.presence_filter & bit != 0 {
            // Possibly tracked: the exact find decides.
            if let Some(entry) = self.entries.iter_mut().find(|e| e.block == block) {
                entry.count += 1;
                entry.last_use = self.clock;
                let conflicting = entry.count > threshold;
                if conflicting {
                    self.conflict_filter |= bit;
                }
                return conflicting;
            }
        }
        self.allocations += 1;
        let entry = VictimEntry {
            block,
            count: 1,
            last_use: self.clock,
            bit,
        };
        if self.entries.len() == self.capacity {
            self.replacements += 1;
            // Replace the least recently touched entry (captures conflicts
            // that recur "within a short duration").
            if let Some(pos) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i)
            {
                let displaced_conflicting = self.entries[pos].count > threshold;
                self.entries[pos] = entry;
                self.presence_filter |= bit;
                // Displacements leave stale bits behind (harmless: a stale
                // bit only costs a wasted exact scan). Rebuild exactly when
                // a conflicting block was displaced — is_conflicting answers
                // depend on it staying tight — and periodically so the
                // presence filter does not saturate under heavy thrashing.
                if displaced_conflicting || self.replacements & 0xFF == 0 {
                    self.rebuild_filters();
                }
            }
        } else {
            self.entries.push(entry);
            self.presence_filter |= bit;
        }
        let conflicting = 1 > threshold;
        if conflicting {
            self.conflict_filter |= bit;
        }
        conflicting
    }

    /// True if `block` has been evicted more than the threshold number of
    /// times while tracked by the list.
    #[inline]
    pub fn is_conflicting(&self, block: BlockAddr) -> bool {
        if self.conflict_filter & Self::filter_bit(block) == 0 {
            return false;
        }
        self.entries
            .iter()
            .any(|e| e.block == block && e.count > self.conflict_threshold)
    }

    /// The eviction count recorded for `block`, if it is currently tracked.
    pub fn eviction_count(&self, block: BlockAddr) -> Option<u32> {
        self.entries
            .iter()
            .find(|e| e.block == block)
            .map(|e| e.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_16_entries() {
        let list = VictimList::paper_default();
        assert_eq!(list.capacity(), 16);
        assert!(list.is_empty());
    }

    #[test]
    fn becomes_conflicting_after_threshold_exceeded() {
        let mut list = VictimList::new(4, 2);
        let block = 0x1000;
        assert!(!list.record_eviction(block));
        assert!(!list.is_conflicting(block));
        assert!(!list.record_eviction(block));
        assert!(!list.is_conflicting(block));
        assert!(list.record_eviction(block));
        assert!(list.is_conflicting(block));
        assert_eq!(list.eviction_count(block), Some(3));
    }

    #[test]
    fn zero_threshold_flags_immediately() {
        let mut list = VictimList::new(4, 0);
        assert!(list.record_eviction(0x2000));
        assert!(list.is_conflicting(0x2000));
    }

    #[test]
    fn capacity_is_bounded_and_lru_entry_is_displaced() {
        let mut list = VictimList::new(2, 2);
        list.record_eviction(0x100);
        list.record_eviction(0x200);
        // Touch 0x100 so 0x200 is the stalest.
        list.record_eviction(0x100);
        list.record_eviction(0x300);
        assert_eq!(list.len(), 2);
        assert_eq!(list.replacements(), 1);
        assert!(
            list.eviction_count(0x200).is_none(),
            "stale entry displaced"
        );
        assert_eq!(list.eviction_count(0x100), Some(2));
        assert_eq!(list.eviction_count(0x300), Some(1));
    }

    #[test]
    fn displaced_blocks_lose_their_history() {
        let mut list = VictimList::new(1, 2);
        list.record_eviction(0xa00);
        list.record_eviction(0xa00);
        list.record_eviction(0xb00); // displaces 0xa00
                                     // 0xa00 starts from scratch.
        assert!(!list.record_eviction(0xa00));
        assert_eq!(list.eviction_count(0xa00), Some(1));
    }

    #[test]
    fn untracked_blocks_are_not_conflicting() {
        let list = VictimList::paper_default();
        assert!(!list.is_conflicting(0xdead_0000));
        assert_eq!(list.eviction_count(0xdead_0000), None);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = VictimList::new(0, 2);
    }
}
