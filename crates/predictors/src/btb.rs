//! A branch target buffer extended with a way field (Section 2.3).
//!
//! "Existing high-performance processors use a branch target buffer (BTB) to
//! determine the next fetch address for predicted taken branches.
//! Next-line-set-prediction supplies a way-prediction for taken branches."
//! The way field adds `log2(N)` bits per entry for an N-way i-cache; the
//! energy overhead of those bits is charged by the experiment harness.

use wp_mem::{Addr, WayIndex};

/// One BTB entry: the predicted target of a taken branch and the i-cache way
/// the target block was last fetched from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbEntry {
    /// Predicted target address.
    pub target: Addr,
    /// Predicted i-cache way of the target, if it has been learned.
    pub way: Option<WayIndex>,
}

#[derive(Debug, Clone, Copy)]
struct TaggedEntry {
    tag: u64,
    entry: BtbEntry,
}

/// A direct-mapped (one way per set) branch target buffer with way
/// prediction.
///
/// # Example
///
/// ```
/// use wp_predictors::Btb;
///
/// let mut btb = Btb::new(512);
/// let branch_pc = 0x40_0010;
/// btb.update(branch_pc, 0x40_2000, Some(1));
/// let entry = btb.lookup(branch_pc).expect("trained entry");
/// assert_eq!(entry.target, 0x40_2000);
/// assert_eq!(entry.way, Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<Option<TaggedEntry>>,
    lookups: u64,
    hits: u64,
}

impl Btb {
    /// Creates a BTB with `entries` sets.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "BTB size must be a power of two");
        Self {
            entries: vec![None; entries],
            lookups: 0,
            hits: 0,
        }
    }

    /// Number of BTB entries.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    fn index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & (self.entries.len() - 1)
    }

    fn tag(&self, pc: Addr) -> u64 {
        (pc >> 2) / self.entries.len() as u64
    }

    /// Looks up the branch at `pc`, returning its target and way prediction
    /// if the entry is present (a BTB miss means the fetch defaults to a
    /// parallel i-cache access).
    pub fn lookup(&mut self, pc: Addr) -> Option<BtbEntry> {
        self.lookups += 1;
        let idx = self.index(pc);
        let tag = self.tag(pc);
        let hit = self.entries[idx].filter(|e| e.tag == tag).map(|e| e.entry);
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Installs or updates the entry for the taken branch at `pc`.
    pub fn update(&mut self, pc: Addr, target: Addr, way: Option<WayIndex>) {
        let idx = self.index(pc);
        let tag = self.tag(pc);
        self.entries[idx] = Some(TaggedEntry {
            tag,
            entry: BtbEntry { target, way },
        });
    }

    /// Updates only the way field of an existing entry (used when the target
    /// block moves within the i-cache).
    pub fn update_way(&mut self, pc: Addr, way: WayIndex) {
        let idx = self.index(pc);
        let tag = self.tag(pc);
        if let Some(e) = self.entries[idx].as_mut() {
            if e.tag == tag {
                e.entry.way = Some(way);
            }
        }
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that found a matching entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_after_update() {
        let mut btb = Btb::new(64);
        assert!(btb.lookup(0x100).is_none());
        btb.update(0x100, 0x4000, Some(2));
        let e = btb.lookup(0x100).expect("entry present");
        assert_eq!(e.target, 0x4000);
        assert_eq!(e.way, Some(2));
        assert_eq!(btb.lookups(), 2);
        assert_eq!(btb.hits(), 1);
    }

    #[test]
    fn aliasing_pcs_evict_each_other() {
        let mut btb = Btb::new(16);
        let a = 0x100;
        let b = a + 16 * 4; // same index, different tag
        btb.update(a, 0x1000, None);
        btb.update(b, 0x2000, None);
        assert!(btb.lookup(a).is_none(), "displaced by aliasing branch");
        assert_eq!(btb.lookup(b).map(|e| e.target), Some(0x2000));
    }

    #[test]
    fn update_way_only_touches_matching_entry() {
        let mut btb = Btb::new(16);
        btb.update(0x100, 0x1000, None);
        btb.update_way(0x100, 3);
        assert_eq!(btb.lookup(0x100).and_then(|e| e.way), Some(3));
        // A non-matching PC must not be affected.
        btb.update_way(0x100 + 16 * 4, 1);
        assert_eq!(btb.lookup(0x100).and_then(|e| e.way), Some(3));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = Btb::new(100);
    }
}
