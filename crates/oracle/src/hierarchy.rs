//! The oracle's Table 1 L2 + main-memory model, over the nested-`Vec` tag
//! store.
//!
//! Mirrors [`wp_mem::MemoryHierarchy`] — same configuration type, same
//! latency arithmetic — but the L2 residency decisions come from
//! [`OracleCache`] instead of the optimized SoA store, so L1-miss traffic
//! cross-checks the optimized L2 too.

use wp_mem::{Addr, CacheGeometry, GeometryError, HierarchyConfig};

use crate::cache::{AccessKind, OracleCache, OracleGeometry};

/// The naive levels behind the L1 caches.
#[derive(Debug, Clone)]
pub struct OracleHierarchy {
    config: HierarchyConfig,
    l2: OracleCache,
    memory_accesses: u64,
}

impl OracleHierarchy {
    /// Builds the hierarchy from `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if the L2 parameters are inconsistent
    /// (the same validation the optimized hierarchy applies).
    pub fn new(config: HierarchyConfig) -> Result<Self, GeometryError> {
        let geometry = CacheGeometry::new(
            config.l2_size_bytes,
            config.l2_block_bytes,
            config.l2_associativity,
        )?;
        Ok(Self {
            config,
            l2: OracleCache::new(OracleGeometry::from_mem(&geometry)),
            memory_accesses: 0,
        })
    }

    /// Number of accesses that reached main memory.
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }

    /// Latency of transferring one L1 block from main memory.
    fn memory_transfer_latency(&self) -> u64 {
        self.config.memory_latency
            + self.config.memory_cycles_per_8_bytes
                * (self.config.transfer_block_bytes as u64).div_ceil(8)
    }

    /// Services an L1 miss for `addr`, returning the cycles beyond the L1
    /// access itself.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> u64 {
        let result = self
            .l2
            .access(addr, kind, crate::cache::Placement::SetAssociative);
        if result.hit {
            self.config.l2_latency
        } else {
            self.memory_accesses += 1;
            self.config.l2_latency + self.memory_transfer_latency()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_mem::MemoryHierarchy;

    #[test]
    fn matches_the_optimized_hierarchy() {
        let config = HierarchyConfig::default();
        let mut naive = OracleHierarchy::new(config).expect("valid");
        let mut fast = MemoryHierarchy::new(config).expect("valid");
        for i in 0..5_000u64 {
            let addr = (i % 700) * 64 + (i % 13) * 0x1_0000;
            let kind = if i % 5 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let (fast_latency, _) = fast.access(addr, kind);
            assert_eq!(naive.access(addr, kind), fast_latency, "access {i}");
        }
        assert_eq!(naive.memory_accesses(), fast.memory_accesses());
    }
}
