//! The oracle i-cache: the fetch-engine way-prediction stack of Section 2.3
//! driven by a per-fetch `match`, over the nested-`Vec` tag store.
//!
//! The BTB, SAWP, and RAS are reused from `wp-predictors` (they were never
//! optimized); the tag store and probe pricing are the oracle's naive
//! re-implementations.

use wp_cache::access::{WaySelection, WaySource};
use wp_cache::{
    FetchKind, IAccessClass, ICachePolicy, ICacheStats, L1Config, BTB_ENTRIES, RAS_DEPTH,
};
use wp_energy::{CacheEnergyModel, Energy, PredictionTableEnergy};
use wp_mem::Addr;
use wp_predictors::{Btb, ReturnAddressStack, Sawp};

use crate::cache::{AccessKind, OracleCache, OracleGeometry, Placement};
use crate::probe::{resolve_probe, ProbeOutcome};

/// The result of one oracle fetch, reduced to what the processor loop
/// consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleIAccess {
    /// True if the block was resident.
    pub hit: bool,
    /// L1 latency in cycles.
    pub latency: u64,
}

/// The naive energy-aware L1 i-cache with fetch-integrated way prediction.
#[derive(Debug, Clone)]
pub struct OracleICache {
    config: L1Config,
    policy: ICachePolicy,
    cache: OracleCache,
    energy: CacheEnergyModel,
    /// Energy of one way-field access, computed from the same `wp-energy`
    /// formula the optimized [`wp_cache::IWaySelect`] precomputes.
    way_field_energy: Energy,
    btb: Btb,
    sawp: Sawp,
    ras: ReturnAddressStack,
    stats: ICacheStats,
}

impl OracleICache {
    /// Builds the oracle i-cache for `config` under `policy`.
    ///
    /// # Errors
    ///
    /// Returns a [`wp_cache::ConfigError`] if the configuration is
    /// inconsistent.
    pub fn new(config: L1Config, policy: ICachePolicy) -> Result<Self, wp_cache::ConfigError> {
        let mem_geometry = config.geometry()?;
        let geometry = OracleGeometry::from_mem(&mem_geometry);
        Ok(Self {
            config,
            policy,
            cache: OracleCache::new(geometry),
            energy: CacheEnergyModel::new(mem_geometry),
            way_field_energy: PredictionTableEnergy::new(
                config.prediction_table_entries,
                Sawp::bits_per_entry(config.associativity),
            )
            .access_energy(),
            btb: Btb::new(BTB_ENTRIES),
            sawp: Sawp::new(config.prediction_table_entries),
            ras: ReturnAddressStack::new(RAS_DEPTH),
            stats: ICacheStats::default(),
        })
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ICacheStats {
        &self.stats
    }

    /// The BTB's predicted target for a taken branch at `branch_pc`.
    pub fn predicted_target(&mut self, branch_pc: Addr) -> Option<Addr> {
        self.btb.lookup(branch_pc).map(|e| e.target)
    }

    /// Fetches the block containing `pc`; mirrors the optimized
    /// controller's `fetch` step for step.
    pub fn fetch(&mut self, pc: Addr, kind: FetchKind) -> OracleIAccess {
        self.stats.fetches += 1;

        // ---- way selection ----
        let (choice, source) = if self.policy == ICachePolicy::Parallel {
            (WaySelection::Parallel, WaySource::None)
        } else {
            let (predicted, source) = match kind {
                FetchKind::Sequential { prev_pc } | FetchKind::NotTakenBranch { prev_pc } => {
                    (self.sawp.predict(prev_pc), WaySource::Sawp)
                }
                FetchKind::TakenBranch { branch_pc } | FetchKind::Call { branch_pc, .. } => (
                    self.btb.lookup(branch_pc).and_then(|e| e.way),
                    WaySource::Btb,
                ),
                FetchKind::Return => (self.ras.pop().and_then(|(_, way)| way), WaySource::Ras),
                FetchKind::Redirect => (None, WaySource::None),
            };
            match predicted {
                Some(way) => (WaySelection::Predicted(way), source),
                None => (WaySelection::Parallel, WaySource::None),
            }
        };

        // ---- tag store + probe pricing ----
        let access = self
            .cache
            .access(pc, AccessKind::Read, Placement::SetAssociative);
        let probe = resolve_probe(&self.energy, &self.config, choice, access.hit, access.way);

        // ---- training ----
        let way_predicting = self.policy == ICachePolicy::WayPredict;
        let mut prediction_energy = 0.0;
        if way_predicting {
            prediction_energy += self.way_field_energy;
        }
        match kind {
            FetchKind::Sequential { prev_pc } | FetchKind::NotTakenBranch { prev_pc } => {
                if way_predicting {
                    self.sawp.update(prev_pc, access.way);
                }
            }
            FetchKind::TakenBranch { branch_pc } => {
                self.btb
                    .update(branch_pc, pc, way_predicting.then_some(access.way));
            }
            FetchKind::Call {
                branch_pc,
                return_pc,
            } => {
                self.btb
                    .update(branch_pc, pc, way_predicting.then_some(access.way));
                let return_way = way_predicting
                    .then(|| self.cache.probe(return_pc))
                    .flatten();
                self.ras.push(return_pc, return_way);
            }
            FetchKind::Return | FetchKind::Redirect => {}
        }

        // ---- statistics, in the optimized controller's order ----
        if !access.hit {
            self.stats.fetch_misses += 1;
        }
        let class = match probe.outcome {
            ProbeOutcome::Mispredicted => IAccessClass::Mispredicted,
            ProbeOutcome::SingleWay => {
                if source.is_branch_structure() {
                    IAccessClass::BtbCorrect
                } else {
                    IAccessClass::SawpCorrect
                }
            }
            ProbeOutcome::Parallel | ProbeOutcome::Sequential => IAccessClass::NoPrediction,
        };
        match class {
            IAccessClass::SawpCorrect => self.stats.sawp_correct += 1,
            IAccessClass::BtbCorrect => {
                self.stats.btb_correct += 1;
                if source == WaySource::Ras {
                    self.stats.ras_correct += 1;
                }
            }
            IAccessClass::NoPrediction => self.stats.no_prediction += 1,
            IAccessClass::Mispredicted => self.stats.mispredicted += 1,
        }
        self.stats.cache_energy += probe.energy;
        self.stats.prediction_energy += prediction_energy;

        OracleIAccess {
            hit: access.hit,
            latency: probe.latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_cache::ICacheController;

    #[test]
    fn matches_the_optimized_controller_over_both_policies() {
        for policy in [ICachePolicy::Parallel, ICachePolicy::WayPredict] {
            let config = L1Config::paper_icache();
            let mut naive = OracleICache::new(config, policy).expect("valid");
            let mut fast = ICacheController::new(config, policy).expect("valid");
            let mut prev = 0x40_0000u64;
            for i in 0..4_000u64 {
                let pc = 0x40_0000 + (i % 97) * 32 + (i % 3) * 0x1000;
                let kind = match i % 6 {
                    0 => FetchKind::Redirect,
                    1 => FetchKind::TakenBranch {
                        branch_pc: prev + 4,
                    },
                    2 => FetchKind::Return,
                    3 => FetchKind::NotTakenBranch { prev_pc: prev },
                    4 => FetchKind::Call {
                        branch_pc: prev + 8,
                        return_pc: prev + 12,
                    },
                    _ => FetchKind::Sequential { prev_pc: prev },
                };
                let a = naive.fetch(pc, kind);
                let b = fast.fetch(pc, kind);
                assert_eq!((a.hit, a.latency), (b.hit, b.latency), "{policy} fetch {i}");
                assert_eq!(
                    naive.predicted_target(prev + 4),
                    fast.predicted_target(prev + 4)
                );
                prev = pc;
            }
            assert_eq!(naive.stats(), fast.stats(), "stats diverged under {policy}");
        }
    }
}
