//! The oracle d-cache: every policy decision made by a per-access `match`,
//! every cost priced by a per-access energy-model evaluation.
//!
//! The optimized stack resolves the [`wp_cache::DCachePolicy`] once per run
//! (monomorphized kernels), prices probes from a precomputed cost table,
//! and scans tags with SWAR. The oracle re-reads the policy enum on every
//! load, calls the [`wp_energy::CacheEnergyModel`] for every probe, and
//! runs the nested-`Vec` [`OracleCache`]. The prediction *tables*
//! (selective-DM counters, PC/XOR way tables) are reused from
//! `wp-predictors` — they were never optimized and serve as the shared
//! ground truth — while the victim list, whose optimized form carries
//! membership-filter fast paths, is re-implemented naively in
//! [`OracleVictimList`].

use wp_cache::access::{WaySelection, WaySource};
use wp_cache::{DAccessClass, DCachePolicy, DCacheStats, L1Config};
use wp_energy::{CacheEnergyModel, Energy, PredictionTableEnergy};
use wp_mem::Addr;
use wp_predictors::{MappingPrediction, PcWayPredictor, SelDmPredictor, XorWayPredictor};

use crate::cache::{AccessKind, OracleCache, OracleGeometry, Placement};
use crate::probe::{resolve_probe, ProbeOutcome};
use crate::victims::OracleVictimList;

/// The result of one oracle d-cache access, reduced to what the processor
/// loop consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleDAccess {
    /// True if the block was resident.
    pub hit: bool,
    /// L1 latency in cycles.
    pub latency: u64,
}

/// The naive energy-aware L1 d-cache.
#[derive(Debug, Clone)]
pub struct OracleDCache {
    config: L1Config,
    policy: DCachePolicy,
    geometry: OracleGeometry,
    cache: OracleCache,
    energy: CacheEnergyModel,
    /// Energy of one prediction-table access, computed once from the same
    /// `wp-energy` formula the optimized [`wp_cache::DWaySelect`] uses.
    table_energy: Energy,
    /// Energy of one victim-list access, likewise.
    victim_energy: Energy,
    seldm: SelDmPredictor,
    victims: OracleVictimList,
    pc_way: PcWayPredictor,
    xor_way: XorWayPredictor,
    stats: DCacheStats,
}

impl OracleDCache {
    /// Builds the oracle d-cache for `config` under `policy`.
    ///
    /// # Errors
    ///
    /// Returns a [`wp_cache::ConfigError`] if the configuration is
    /// inconsistent (the same validation the optimized controller applies).
    pub fn new(config: L1Config, policy: DCachePolicy) -> Result<Self, wp_cache::ConfigError> {
        let mem_geometry = config.geometry()?;
        let geometry = OracleGeometry::from_mem(&mem_geometry);
        let way_bits = PcWayPredictor::bits_per_entry(config.associativity);
        Ok(Self {
            config,
            policy,
            geometry,
            cache: OracleCache::new(geometry),
            energy: CacheEnergyModel::new(mem_geometry),
            table_energy: PredictionTableEnergy::new(
                config.prediction_table_entries,
                SelDmPredictor::BITS_PER_ENTRY + way_bits,
            )
            .access_energy(),
            victim_energy: PredictionTableEnergy::new(
                config.victim_list_entries.next_power_of_two().max(2),
                32,
            )
            .access_energy(),
            seldm: SelDmPredictor::new(config.prediction_table_entries),
            victims: OracleVictimList::new(config.victim_list_entries, 2),
            pc_way: PcWayPredictor::new(config.prediction_table_entries),
            xor_way: XorWayPredictor::new(config.prediction_table_entries, config.block_bytes),
            stats: DCacheStats::default(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &L1Config {
        &self.config
    }

    /// Accumulated statistics (the same [`DCacheStats`] the optimized
    /// controller fills, accumulated in the same per-access order).
    pub fn stats(&self) -> &DCacheStats {
        &self.stats
    }

    /// Fill placement for `block_addr` under the current policy: the
    /// per-access re-statement of [`wp_cache::DWaySelect`]'s placement
    /// rule.
    fn placement(&self, block_addr: u64) -> Placement {
        if !self.policy.uses_selective_dm() || self.victims.is_conflicting(block_addr) {
            Placement::SetAssociative
        } else {
            Placement::DirectMapped
        }
    }

    /// Services one load; mirrors the optimized controller's `load_impl`
    /// step for step, with the policy matched per access.
    pub fn load(&mut self, pc: Addr, addr: Addr, approx_addr: Addr) -> OracleDAccess {
        self.stats.loads += 1;
        let dm_way = self.geometry.direct_mapped_way(addr);
        let block_addr = self.geometry.block_addr(addr);
        let placement = self.placement(block_addr);
        if self.policy.uses_selective_dm() && placement == Placement::SetAssociative {
            self.stats.victim_list_hits += 1;
        }

        // ---- way selection: one `match` per access ----
        let table = self.table_energy;
        let mut last_seldm = MappingPrediction::SetAssociative;
        let (choice, source, selection_energy) = match self.policy {
            DCachePolicy::Parallel => (WaySelection::Parallel, WaySource::None, 0.0),
            DCachePolicy::Sequential => (WaySelection::Sequential, WaySource::None, 0.0),
            DCachePolicy::PerfectWayPredict => (WaySelection::Oracle, WaySource::Oracle, 0.0),
            DCachePolicy::WayPredictPc => match self.pc_way.predict(pc) {
                Some(way) => (WaySelection::Predicted(way), WaySource::WayTable, table),
                None => (WaySelection::Parallel, WaySource::WayTable, table),
            },
            DCachePolicy::WayPredictXor => match self.xor_way.predict(approx_addr) {
                Some(way) => (WaySelection::Predicted(way), WaySource::WayTable, table),
                None => (WaySelection::Parallel, WaySource::WayTable, table),
            },
            DCachePolicy::SelDmParallel
            | DCachePolicy::SelDmWayPredict
            | DCachePolicy::SelDmSequential => {
                last_seldm = self.seldm.predict(pc);
                if last_seldm == MappingPrediction::DirectMapped {
                    (
                        WaySelection::DirectMapped(dm_way),
                        WaySource::SelectiveDm,
                        table,
                    )
                } else {
                    match self.policy {
                        DCachePolicy::SelDmParallel => {
                            (WaySelection::Parallel, WaySource::None, table)
                        }
                        DCachePolicy::SelDmSequential => {
                            (WaySelection::Sequential, WaySource::None, table)
                        }
                        _ => match self.pc_way.predict(pc) {
                            // The fallback way-table lookup charges a second
                            // table access on top of the selective-DM read.
                            Some(way) => (
                                WaySelection::Predicted(way),
                                WaySource::WayTable,
                                table + table,
                            ),
                            None => (WaySelection::Parallel, WaySource::WayTable, table + table),
                        },
                    }
                }
            }
        };

        // ---- tag store + probe pricing ----
        let access = self.cache.access(addr, AccessKind::Read, placement);
        let probe = resolve_probe(&self.energy, &self.config, choice, access.hit, access.way);

        // ---- training: the same per-access `match` the optimized stack
        // folds at compile time ----
        match self.policy {
            DCachePolicy::WayPredictPc => self.pc_way.update(pc, access.way),
            DCachePolicy::WayPredictXor => self.xor_way.update(approx_addr, access.way),
            DCachePolicy::SelDmWayPredict if last_seldm == MappingPrediction::SetAssociative => {
                self.pc_way.update(pc, access.way)
            }
            _ => {}
        }
        if self.policy.uses_selective_dm() && access.hit {
            if access.in_direct_mapped_way {
                self.seldm.record_direct_mapped_hit(pc);
            } else {
                self.seldm.record_set_associative_hit(pc);
            }
        }
        let prediction_energy = selection_energy;

        // ---- statistics, in the optimized controller's accumulation
        // order (floating-point addition is order-sensitive) ----
        if !access.hit {
            self.stats.load_misses += 1;
        }
        self.note_eviction(access.evicted);
        let single_way_correct = probe.outcome == ProbeOutcome::SingleWay;
        if single_way_correct && access.hit {
            self.stats.single_way_load_hits += 1;
        }
        if self.policy.uses_selective_dm() && !matches!(choice, WaySelection::DirectMapped(_)) {
            self.stats.seldm_predicted_sa += 1;
        }
        match choice {
            WaySelection::Predicted(_) if source == WaySource::WayTable => {
                self.stats.way_predictions += 1;
                if single_way_correct && access.hit {
                    self.stats.way_predictions_correct += 1;
                }
            }
            WaySelection::DirectMapped(_) => {
                self.stats.seldm_predicted_dm += 1;
                if single_way_correct {
                    self.stats.seldm_predicted_dm_correct += 1;
                }
            }
            _ => {}
        }
        let class = match probe.outcome {
            ProbeOutcome::Parallel => DAccessClass::Parallel,
            ProbeOutcome::Sequential => DAccessClass::Sequential,
            ProbeOutcome::Mispredicted => DAccessClass::Mispredicted,
            ProbeOutcome::SingleWay => match choice {
                WaySelection::DirectMapped(_) => DAccessClass::DirectMapped,
                _ => DAccessClass::WayPredicted,
            },
        };
        match class {
            DAccessClass::DirectMapped => self.stats.direct_mapped_accesses += 1,
            DAccessClass::Parallel => self.stats.parallel_accesses += 1,
            DAccessClass::WayPredicted => self.stats.way_predicted_accesses += 1,
            DAccessClass::Sequential => self.stats.sequential_accesses += 1,
            DAccessClass::Mispredicted => self.stats.mispredicted_accesses += 1,
            DAccessClass::Write => {}
        }
        self.stats.cache_energy += probe.energy;
        self.stats.prediction_energy += prediction_energy;

        OracleDAccess {
            hit: access.hit,
            latency: probe.latency,
        }
    }

    /// Services one store: tag check first, write only the matching way, no
    /// prediction, in every policy.
    pub fn store(&mut self, _pc: Addr, addr: Addr) -> OracleDAccess {
        self.stats.stores += 1;
        let block_addr = self.geometry.block_addr(addr);
        let placement = self.placement(block_addr);
        let access = self.cache.access(addr, AccessKind::Write, placement);
        let mut energy = self.energy.write_energy();
        if !access.hit {
            energy += self.energy.data_way_write_energy();
        }
        if !access.hit {
            self.stats.store_misses += 1;
        }
        self.note_eviction(access.evicted);
        self.stats.cache_energy += energy;

        OracleDAccess {
            hit: access.hit,
            latency: self.config.base_latency,
        }
    }

    /// Eviction bookkeeping shared by loads and stores.
    fn note_eviction(&mut self, evicted: Option<(u64, bool, bool)>) {
        if let Some((block_addr, dirty, _)) = evicted {
            self.stats.evictions += 1;
            if dirty {
                self.stats.dirty_evictions += 1;
            }
            if self.policy.uses_selective_dm() {
                let flagged = self.victims.record_eviction(block_addr);
                self.stats.prediction_energy += self.victim_energy;
                if flagged {
                    self.stats.conflicting_blocks_flagged += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_cache::DCacheController;

    /// Every policy, exercised against the optimized controller over a
    /// mixed load/store address walk: the stats must agree exactly.
    #[test]
    fn matches_the_optimized_controller_over_all_policies() {
        let all = [
            DCachePolicy::Parallel,
            DCachePolicy::Sequential,
            DCachePolicy::WayPredictPc,
            DCachePolicy::WayPredictXor,
            DCachePolicy::SelDmParallel,
            DCachePolicy::SelDmWayPredict,
            DCachePolicy::SelDmSequential,
            DCachePolicy::PerfectWayPredict,
        ];
        for policy in all {
            let config = L1Config::paper_dcache();
            let mut naive = OracleDCache::new(config, policy).expect("valid");
            let mut fast = DCacheController::new(config, policy).expect("valid");
            for i in 0..4_000u64 {
                let pc = 0x400 + (i % 23) * 4;
                let addr = 0x8000 + (i % 61) * 32 + (i % 7) * 0x1000;
                let approx = if i % 5 == 0 { addr + 0x40 } else { addr };
                if i % 4 == 3 {
                    let a = naive.store(pc, addr);
                    let b = fast.store(pc, addr);
                    assert_eq!((a.hit, a.latency), (b.hit, b.latency), "{policy} store {i}");
                } else {
                    let a = naive.load(pc, addr, approx);
                    let b = fast.load(pc, addr, approx);
                    assert_eq!((a.hit, a.latency), (b.hit, b.latency), "{policy} load {i}");
                }
            }
            assert_eq!(naive.stats(), fast.stats(), "stats diverged under {policy}");
        }
    }
}
