//! The oracle's victim list: the Section 2.2.2 conflict detector with no
//! fast paths.
//!
//! The optimized [`wp_predictors::VictimList`] answers `is_conflicting`
//! through 64-bit presence/conflict membership filters and only falls back
//! to an exact scan on a filter hit. The oracle keeps the plain `Vec` and
//! scans it on every question, so the filters are cross-checked by the
//! conformance harness on every simulated load: any filter bug that changed
//! an answer would surface as a `SimResult` mismatch.

use wp_mem::BlockAddr;

#[derive(Debug, Clone, Copy)]
struct Entry {
    block: BlockAddr,
    count: u32,
    last_use: u64,
}

/// A small, fully-associative list of recently evicted block addresses with
/// per-block eviction counts; exact scans only.
#[derive(Debug, Clone)]
pub struct OracleVictimList {
    entries: Vec<Entry>,
    capacity: usize,
    conflict_threshold: u32,
    clock: u64,
}

impl OracleVictimList {
    /// A list holding `capacity` blocks; a block becomes conflicting once
    /// its eviction count *exceeds* `conflict_threshold`.
    pub fn new(capacity: usize, conflict_threshold: u32) -> Self {
        assert!(capacity > 0, "victim list capacity must be non-zero");
        Self {
            entries: Vec::new(),
            capacity,
            conflict_threshold,
            clock: 0,
        }
    }

    /// Records that `block` was just evicted; returns `true` if the block
    /// is now considered conflicting. Mirrors
    /// [`wp_predictors::VictimList::record_eviction`]: a tracked block
    /// bumps its count and recency; an untracked one allocates, displacing
    /// the least-recently-touched entry (first index on ties) when full.
    pub fn record_eviction(&mut self, block: BlockAddr) -> bool {
        self.clock += 1;
        if let Some(entry) = self.entries.iter_mut().find(|e| e.block == block) {
            entry.count += 1;
            entry.last_use = self.clock;
            return entry.count > self.conflict_threshold;
        }
        let entry = Entry {
            block,
            count: 1,
            last_use: self.clock,
        };
        if self.entries.len() == self.capacity {
            let mut stalest = 0;
            for i in 1..self.entries.len() {
                if self.entries[i].last_use < self.entries[stalest].last_use {
                    stalest = i;
                }
            }
            self.entries[stalest] = entry;
        } else {
            self.entries.push(entry);
        }
        1 > self.conflict_threshold
    }

    /// True if `block` has been evicted more than the threshold number of
    /// times while tracked.
    pub fn is_conflicting(&self, block: BlockAddr) -> bool {
        self.entries
            .iter()
            .any(|e| e.block == block && e.count > self.conflict_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_predictors::VictimList;

    #[test]
    fn matches_the_filtered_list_on_a_thrashing_sequence() {
        let mut naive = OracleVictimList::new(4, 2);
        let mut fast = VictimList::new(4, 2);
        // A sequence that exercises allocation, re-touch, displacement, and
        // conflict flagging across more distinct blocks than the capacity.
        let blocks: Vec<BlockAddr> = (0..64u64).map(|i| ((i * 7) % 9) * 0x1000).collect();
        for &block in &blocks {
            assert_eq!(
                naive.record_eviction(block),
                fast.record_eviction(block),
                "record_eviction({block:#x})"
            );
            for probe in [0x0, 0x1000, 0x5000, 0x8000] {
                assert_eq!(
                    naive.is_conflicting(probe),
                    fast.is_conflicting(probe),
                    "is_conflicting({probe:#x})"
                );
            }
        }
    }

    #[test]
    fn threshold_semantics() {
        let mut list = OracleVictimList::new(4, 2);
        assert!(!list.record_eviction(0x1000));
        assert!(!list.record_eviction(0x1000));
        assert!(list.record_eviction(0x1000));
        assert!(list.is_conflicting(0x1000));
        assert!(!list.is_conflicting(0x2000));
    }
}
