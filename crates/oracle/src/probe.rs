//! Per-access probe pricing: the Sections 2.1–2.3 / Table 3 rules,
//! evaluated against the [`wp_energy::CacheEnergyModel`] on every access.
//!
//! The optimized [`wp_cache::AccessCore`] precomputes these costs into a
//! lookup table once per controller; the oracle re-derives each one from
//! the model at the moment it is charged. The model functions are pure, so
//! the two must produce bit-identical energies — exactly what the
//! conformance harness asserts.

use wp_cache::access::WaySelection;
use wp_cache::L1Config;
use wp_energy::{CacheEnergyModel, Energy};
use wp_mem::WayIndex;

/// How a probe played out (the oracle's mirror of
/// [`wp_cache::access::ProbeOutcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// All ways probed in parallel.
    Parallel,
    /// A single-way probe that was right (or a clean miss through it).
    SingleWay,
    /// A wrong single-way probe needing a corrective second probe.
    Mispredicted,
    /// A serialized tag-then-data access.
    Sequential,
}

/// The resolved cost of one read probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleProbe {
    /// What happened.
    pub outcome: ProbeOutcome,
    /// Data ways touched.
    pub ways_probed: usize,
    /// L1 latency in cycles.
    pub latency: u64,
    /// Energy dissipated in the cache arrays, refill write included.
    pub energy: Energy,
}

/// Prices one read probe from first principles.
pub fn resolve_probe(
    energy: &CacheEnergyModel,
    config: &L1Config,
    choice: WaySelection,
    hit: bool,
    hit_way: WayIndex,
) -> OracleProbe {
    let (outcome, ways_probed, latency) = match choice {
        WaySelection::Parallel => (
            ProbeOutcome::Parallel,
            config.associativity,
            config.base_latency,
        ),
        WaySelection::Sequential => (
            ProbeOutcome::Sequential,
            usize::from(hit),
            config.sequential_latency(),
        ),
        WaySelection::Oracle => (
            ProbeOutcome::SingleWay,
            usize::from(hit),
            config.base_latency,
        ),
        WaySelection::Predicted(way) | WaySelection::DirectMapped(way) => {
            if hit && hit_way != way {
                (ProbeOutcome::Mispredicted, 2, config.mispredict_latency())
            } else {
                (ProbeOutcome::SingleWay, 1, config.base_latency)
            }
        }
    };
    let mut cost = match outcome {
        ProbeOutcome::Parallel => energy.parallel_read_energy(),
        _ => energy.n_way_read_energy(ways_probed),
    };
    if !hit {
        // Refill write into the selected way; identical in every policy.
        cost += energy.data_way_write_energy();
    }
    OracleProbe {
        outcome,
        ways_probed,
        latency,
        energy: cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pricing_matches_the_precomputed_access_core_costs() {
        let config = L1Config::paper_dcache();
        let model = CacheEnergyModel::new(config.geometry().expect("valid"));
        // Parallel hit: all ways, base latency, parallel energy.
        let p = resolve_probe(&model, &config, WaySelection::Parallel, true, 0);
        assert_eq!(p.ways_probed, 4);
        assert_eq!(p.latency, 1);
        assert_eq!(p.energy.to_bits(), model.parallel_read_energy().to_bits());
        // Sequential miss: zero ways probed, refill still charged.
        let s = resolve_probe(&model, &config, WaySelection::Sequential, false, 0);
        assert_eq!(s.ways_probed, 0);
        assert_eq!(s.latency, 2);
        assert_eq!(
            s.energy.to_bits(),
            (model.n_way_read_energy(0) + model.data_way_write_energy()).to_bits()
        );
        // Wrong predicted way on a hit: the corrective second probe.
        let m = resolve_probe(&model, &config, WaySelection::Predicted(1), true, 2);
        assert_eq!(m.outcome, ProbeOutcome::Mispredicted);
        assert_eq!(m.ways_probed, 2);
        assert_eq!(m.latency, 2);
        assert_eq!(m.energy.to_bits(), model.n_way_read_energy(2).to_bits());
    }
}
