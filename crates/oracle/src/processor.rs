//! The oracle's scheduling loop: one micro-op at a time, straight off the
//! iterator, no block buffers, no monomorphized kernels, no custom hashers.
//!
//! This is the model `wp_cpu::Processor::run_blocks` implements after four
//! rounds of optimization. The oracle walks the same committed-path trace
//! with the same rules — ROB/LSQ gating, fetch bandwidth and i-cache
//! behaviour, dependence-limited issue, branch redirects, in-order commit —
//! written in the most direct form available: `SipHash`-hashed `HashMap`s
//! for the bandwidth reservations (the optimized loop's cheap `CycleHasher`
//! changes only bucket placement, never lookup answers) and *no* periodic
//! map cleanup (the optimized loop's `retain` only ever drops cycles that
//! can no longer be probed, so skipping it is observationally identical —
//! the conformance harness proves that on every run).

use std::collections::{HashMap, VecDeque};

use wp_cache::{ConfigError, DCachePolicy, FetchKind, ICachePolicy, L1Config};
use wp_cpu::{CpuConfig, SimResult};
use wp_energy::ActivityCounts;
use wp_mem::HierarchyConfig;
use wp_predictors::{BranchOutcome, HybridBranchPredictor};
use wp_workloads::{BranchClass, MicroOp, OpKind};

use crate::cache::AccessKind;
use crate::dcache::OracleDCache;
use crate::hierarchy::OracleHierarchy;
use crate::icache::OracleICache;

/// Maximum register-dependence distance honoured by the scheduler (matches
/// `wp_cpu`'s limit and the trace generator's).
const MAX_DEP_WINDOW: usize = 64;

/// The reference processor: the same parts as [`wp_cpu::Processor`], every
/// one in its naive form.
#[derive(Debug)]
pub struct OracleProcessor {
    config: CpuConfig,
    dcache: OracleDCache,
    icache: OracleICache,
    hierarchy: OracleHierarchy,
    branch_predictor: HybridBranchPredictor,
}

impl OracleProcessor {
    /// Builds the oracle over the same `(configuration, policy)` surface as
    /// [`wp_cpu::Processor::with_l1`], with the Table 1 memory hierarchy
    /// and branch predictor behind the L1s.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if either cache configuration is
    /// inconsistent.
    pub fn with_l1(
        config: CpuConfig,
        l1d: L1Config,
        dpolicy: DCachePolicy,
        l1i: L1Config,
        ipolicy: ICachePolicy,
    ) -> Result<Self, ConfigError> {
        Ok(Self {
            config,
            dcache: OracleDCache::new(l1d, dpolicy)?,
            icache: OracleICache::new(l1i, ipolicy)?,
            hierarchy: OracleHierarchy::new(HierarchyConfig::default())
                .expect("the Table 1 hierarchy configuration is valid"),
            branch_predictor: HybridBranchPredictor::default(),
        })
    }

    /// Runs the trace to completion, op by op, and returns the same
    /// [`SimResult`] the optimized processor produces for the same stream.
    pub fn run(&mut self, trace: impl IntoIterator<Item = MicroOp>) -> SimResult {
        let block_bytes = self.dcache.config().block_bytes as u64;

        let mut activity = ActivityCounts::default();
        let mut issue_used: HashMap<u64, u32> = HashMap::new();
        let mut commit_used: HashMap<u64, u32> = HashMap::new();
        let mut completes: VecDeque<u64> = VecDeque::new();
        let mut rob: VecDeque<u64> = VecDeque::new();
        let mut lsq: VecDeque<u64> = VecDeque::new();

        let mut fetch_cycle: u64 = 0;
        let mut slots_left: usize = 0;
        let mut cur_block: Option<u64> = None;
        let mut next_kind = FetchKind::Redirect;
        let mut pending_resume: Option<u64> = None;
        let mut prev_commit: u64 = 0;
        let mut last_commit: u64 = 0;

        for op in trace {
            // ---- structural gating: ROB and LSQ occupancy ----
            if rob.len() == self.config.rob_entries {
                let oldest = rob.pop_front().unwrap_or(0);
                if oldest > fetch_cycle {
                    fetch_cycle = oldest;
                    cur_block = None;
                }
            }
            let is_mem = op.kind.is_mem();
            if is_mem && lsq.len() == self.config.lsq_entries {
                let oldest = lsq.pop_front().unwrap_or(0);
                if oldest > fetch_cycle {
                    fetch_cycle = oldest;
                    cur_block = None;
                }
            }

            // ---- fetch (the fetch block is the d-cache's block size, as
            // in the optimized loop) ----
            let block = op.pc - op.pc % block_bytes;
            if cur_block != Some(block) {
                fetch_cycle += 1;
                if let Some(resume) = pending_resume.take() {
                    fetch_cycle = fetch_cycle.max(resume);
                }
                let outcome = self.icache.fetch(op.pc, next_kind);
                let mut stall = outcome.latency.saturating_sub(1);
                if !outcome.hit {
                    stall += self.hierarchy.access(op.pc, AccessKind::Read);
                    activity.l2_accesses += 1;
                }
                fetch_cycle += stall;
                slots_left = self.config.fetch_width;
                cur_block = Some(block);
                next_kind = FetchKind::Sequential { prev_pc: op.pc };
            } else if slots_left == 0 {
                fetch_cycle += 1;
                slots_left = self.config.fetch_width;
            }
            slots_left -= 1;
            let fetched_at = fetch_cycle;

            // ---- ready / issue ----
            let mut ready = fetched_at + self.config.dispatch_latency;
            for dep in op.src_deps {
                let dep = dep as usize;
                if dep > 0 && dep <= completes.len() {
                    ready = ready.max(completes[completes.len() - dep]);
                }
            }
            let issue = reserve_slot(&mut issue_used, ready, self.config.issue_width as u32);

            // ---- execute ----
            let latency = match op.kind {
                OpKind::IntAlu => {
                    activity.int_ops += 1;
                    self.config.int_latency
                }
                OpKind::FpAlu => {
                    activity.fp_ops += 1;
                    self.config.fp_latency
                }
                OpKind::Load { addr, approx_addr } => {
                    activity.loads += 1;
                    let out = self.dcache.load(op.pc, addr, approx_addr);
                    let mut lat = out.latency;
                    if !out.hit {
                        lat += self.hierarchy.access(addr, AccessKind::Read);
                        activity.l2_accesses += 1;
                    }
                    lat
                }
                OpKind::Store { addr } => {
                    activity.stores += 1;
                    let out = self.dcache.store(op.pc, addr);
                    if !out.hit {
                        // The refill is off the critical path but still
                        // consumes L2 bandwidth/energy.
                        let _ = self.hierarchy.access(addr, AccessKind::Write);
                        activity.l2_accesses += 1;
                    }
                    out.latency
                }
                OpKind::Branch { .. } => {
                    activity.branches += 1;
                    self.config.int_latency
                }
            };
            let complete = issue + latency;
            completes.push_back(complete);
            if completes.len() > MAX_DEP_WINDOW {
                completes.pop_front();
            }

            // ---- branch resolution and next-fetch steering ----
            if let OpKind::Branch {
                taken,
                target,
                class,
            } = op.kind
            {
                let predicted = self
                    .branch_predictor
                    .update(op.pc, BranchOutcome::from_taken(taken));
                let direction_mispredicted = match class {
                    BranchClass::Conditional => predicted.is_taken() != taken,
                    BranchClass::Call | BranchClass::Return | BranchClass::Jump => false,
                };
                if direction_mispredicted {
                    pending_resume = Some(complete + 1 + self.config.mispredict_extra_penalty);
                    cur_block = None;
                    next_kind = FetchKind::Redirect;
                } else if taken {
                    cur_block = None;
                    next_kind = match class {
                        BranchClass::Call => FetchKind::Call {
                            branch_pc: op.pc,
                            return_pc: op.pc + 4,
                        },
                        BranchClass::Return => FetchKind::Return,
                        _ => FetchKind::TakenBranch { branch_pc: op.pc },
                    };
                    if class != BranchClass::Return
                        && self.icache.predicted_target(op.pc) != Some(target)
                    {
                        pending_resume = Some(fetched_at + 1 + self.config.btb_miss_penalty);
                    }
                } else {
                    next_kind = FetchKind::NotTakenBranch { prev_pc: op.pc };
                }
            }

            // ---- commit ----
            let commit_ready = complete.max(prev_commit);
            let commit = reserve_slot(
                &mut commit_used,
                commit_ready,
                self.config.commit_width as u32,
            );
            prev_commit = commit;
            last_commit = last_commit.max(commit);
            rob.push_back(commit);
            if is_mem {
                lsq.push_back(commit);
            }
            activity.instructions += 1;
        }

        activity.cycles = last_commit.max(1);
        SimResult {
            cycles: activity.cycles,
            activity,
            dcache: *self.dcache.stats(),
            icache: *self.icache.stats(),
            memory_accesses: self.hierarchy.memory_accesses(),
            branch_accuracy: self.branch_predictor.accuracy(),
        }
    }
}

/// Finds the first cycle at or after `start` with a free slot and reserves
/// it — identical rules to the optimized loop's `reserve_slot`, over a
/// default-hashed map.
fn reserve_slot(used: &mut HashMap<u64, u32>, start: u64, width: u32) -> u64 {
    let mut cycle = start;
    loop {
        let entry = used.entry(cycle).or_insert(0);
        if *entry < width {
            *entry += 1;
            return cycle;
        }
        cycle += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_cpu::Processor;
    use wp_workloads::{Benchmark, TraceConfig, TraceGenerator};

    fn trace(benchmark: Benchmark, ops: usize) -> TraceGenerator {
        TraceGenerator::new(TraceConfig::new(benchmark).with_ops(ops).with_seed(42))
    }

    #[test]
    fn empty_trace_produces_the_optimized_empty_result() {
        let mut oracle = OracleProcessor::with_l1(
            CpuConfig::default(),
            L1Config::paper_dcache(),
            DCachePolicy::Parallel,
            L1Config::paper_icache(),
            ICachePolicy::Parallel,
        )
        .expect("valid");
        let result = oracle.run(Vec::new());
        assert_eq!(result.activity.instructions, 0);
        assert_eq!(result.cycles, 1);
    }

    #[test]
    fn matches_the_optimized_processor_bit_for_bit() {
        for (benchmark, dpolicy, ipolicy) in [
            (
                Benchmark::Gcc,
                DCachePolicy::Parallel,
                ICachePolicy::Parallel,
            ),
            (
                Benchmark::Swim,
                DCachePolicy::SelDmWayPredict,
                ICachePolicy::WayPredict,
            ),
            (
                Benchmark::Li,
                DCachePolicy::Sequential,
                ICachePolicy::WayPredict,
            ),
            (
                Benchmark::Fpppp,
                DCachePolicy::WayPredictXor,
                ICachePolicy::WayPredict,
            ),
        ] {
            let mut oracle = OracleProcessor::with_l1(
                CpuConfig::default(),
                L1Config::paper_dcache(),
                dpolicy,
                L1Config::paper_icache(),
                ipolicy,
            )
            .expect("valid");
            let mut fast = Processor::with_l1(
                CpuConfig::default(),
                L1Config::paper_dcache(),
                dpolicy,
                L1Config::paper_icache(),
                ipolicy,
            )
            .expect("valid");
            let naive = oracle.run(trace(benchmark, 20_000));
            let optimized = fast.run(trace(benchmark, 20_000));
            assert!(
                naive.exact_eq(&optimized),
                "{benchmark:?}/{dpolicy}/{ipolicy}: {:?}",
                naive.diff(&optimized)
            );
        }
    }
}
