//! The oracle's tag store: one `Option<Line>` per way, nested `Vec`s, and
//! plain division/remainder address arithmetic.
//!
//! This is the model `wp_mem::SetAssocCache` is *supposed* to implement.
//! Where the optimized store keeps structure-of-arrays tag lanes, packed
//! flag bytes, a valid bitset, and a SWAR scan, the oracle keeps a
//! `Vec<Vec<Option<Line>>>` holding whole block addresses, scans sets one
//! way at a time, and derives set/tag/way by `/` and `%` instead of
//! precomputed shifts and masks. Every observable decision — hit way,
//! victim way, LRU ordering, direct-mapped placement, eviction reporting —
//! must agree with the optimized store exactly; the conformance harness in
//! `wp-experiments` asserts that end to end.

use wp_mem::{Addr, BlockAddr, WayIndex};

pub use wp_mem::{AccessKind, Placement};

/// Naive address arithmetic for a set-associative cache, computed with
/// division and remainder on every call (the optimized
/// [`wp_mem::CacheGeometry`] precomputes shift/mask equivalents).
///
/// All parameters are powers of two — validated by the caller through
/// [`wp_cache::L1Config::geometry`] — so the two formulations agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleGeometry {
    /// Block (line) size in bytes.
    pub block_bytes: u64,
    /// Number of sets.
    pub num_sets: u64,
    /// Ways per set.
    pub associativity: u64,
}

impl OracleGeometry {
    /// Derives the naive geometry from a validated optimized geometry.
    pub fn from_mem(geometry: &wp_mem::CacheGeometry) -> Self {
        Self {
            block_bytes: geometry.block_bytes() as u64,
            num_sets: geometry.num_sets() as u64,
            associativity: geometry.associativity() as u64,
        }
    }

    /// The block-aligned address of `addr`.
    pub fn block_addr(&self, addr: Addr) -> BlockAddr {
        addr - addr % self.block_bytes
    }

    /// The set `addr` maps to.
    pub fn set_index(&self, addr: Addr) -> usize {
        ((addr / self.block_bytes) % self.num_sets) as usize
    }

    /// The tag of `addr`: everything above the set-index bits.
    pub fn tag(&self, addr: Addr) -> u64 {
        addr / (self.block_bytes * self.num_sets)
    }

    /// The direct-mapping way of `addr` (Section 2.1: the index bits
    /// extended with `log2(associativity)` bits borrowed from the tag).
    pub fn direct_mapped_way(&self, addr: Addr) -> WayIndex {
        (self.tag(addr) % self.associativity) as WayIndex
    }
}

/// A resident block: the full block address (the optimized store
/// reconstructs it from `(set, tag)`), its flags, and its LRU stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Block-aligned address of the resident block.
    pub block_addr: BlockAddr,
    /// True if the block has been written since it was filled.
    pub dirty: bool,
    /// True if the block was placed in its direct-mapping way.
    pub direct_mapped: bool,
    /// LRU stamp; larger is more recently used.
    stamp: u64,
}

/// What one access observed — mirrors [`wp_mem::AccessResult`] field for
/// field, with the evicted line reported as `(block_addr, dirty,
/// direct_mapped)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleAccess {
    /// True if the block was resident.
    pub hit: bool,
    /// The way that hit, or the way that was filled.
    pub way: WayIndex,
    /// True if the block sits in its direct-mapping way after the access.
    pub in_direct_mapped_way: bool,
    /// The block evicted to make room, if any.
    pub evicted: Option<(BlockAddr, bool, bool)>,
}

/// The nested-`Vec` LRU tag store.
#[derive(Debug, Clone)]
pub struct OracleCache {
    geometry: OracleGeometry,
    /// `sets[set][way]` — `None` marks an invalid way.
    sets: Vec<Vec<Option<Line>>>,
    clock: u64,
}

impl OracleCache {
    /// An empty cache with the given naive geometry.
    pub fn new(geometry: OracleGeometry) -> Self {
        let sets = (0..geometry.num_sets)
            .map(|_| vec![None; geometry.associativity as usize])
            .collect();
        Self {
            geometry,
            sets,
            clock: 0,
        }
    }

    /// The naive geometry in use.
    pub fn geometry(&self) -> &OracleGeometry {
        &self.geometry
    }

    /// Looks up `addr` without touching LRU state — the pure tag-array
    /// probe the i-cache's call bookkeeping uses to learn a return block's
    /// way.
    pub fn probe(&self, addr: Addr) -> Option<WayIndex> {
        let set = &self.sets[self.geometry.set_index(addr)];
        let block_addr = self.geometry.block_addr(addr);
        set.iter()
            .position(|way| matches!(way, Some(line) if line.block_addr == block_addr))
    }

    /// One full access: look up, fill on a miss under the requested
    /// placement, refresh LRU state. The rules mirror
    /// [`wp_mem::SetAssocCache::access`] one decision at a time:
    ///
    /// * a hit refreshes the hit way's stamp (and dirties it on a write);
    /// * a set-associative fill victimises the first invalid way, else the
    ///   first way holding the minimum stamp;
    /// * a direct-mapped fill victimises the address's direct-mapping way
    ///   regardless of recency;
    /// * the filled line is flagged direct-mapped exactly when it landed in
    ///   its direct-mapping way, whichever placement was requested.
    pub fn access(&mut self, addr: Addr, kind: AccessKind, placement: Placement) -> OracleAccess {
        self.clock += 1;
        let geometry = self.geometry;
        let set_index = geometry.set_index(addr);
        let block_addr = geometry.block_addr(addr);
        let dm_way = geometry.direct_mapped_way(addr);
        let set = &mut self.sets[set_index];

        // Hit path: scan the ways lowest-first; tags are unique per set, so
        // the first match is the only match.
        for (way, slot) in set.iter_mut().enumerate() {
            if let Some(line) = slot {
                if line.block_addr == block_addr {
                    line.stamp = self.clock;
                    if kind == AccessKind::Write {
                        line.dirty = true;
                    }
                    return OracleAccess {
                        hit: true,
                        way,
                        in_direct_mapped_way: way == dm_way,
                        evicted: None,
                    };
                }
            }
        }

        // Miss path: choose the victim the placement asks for.
        let victim_way = match placement {
            Placement::DirectMapped => dm_way,
            Placement::SetAssociative => {
                match set.iter().position(Option::is_none) {
                    Some(invalid) => invalid,
                    None => {
                        // All ways valid: first way with the minimum stamp.
                        let mut lru_way = 0;
                        for way in 1..set.len() {
                            let stamp = |w: usize| set[w].as_ref().map(|l| l.stamp);
                            if stamp(way) < stamp(lru_way) {
                                lru_way = way;
                            }
                        }
                        lru_way
                    }
                }
            }
        };
        let evicted = set[victim_way]
            .as_ref()
            .map(|line| (line.block_addr, line.dirty, line.direct_mapped));
        set[victim_way] = Some(Line {
            block_addr,
            dirty: kind == AccessKind::Write,
            direct_mapped: victim_way == dm_way,
            stamp: self.clock,
        });
        OracleAccess {
            hit: false,
            way: victim_way,
            in_direct_mapped_way: victim_way == dm_way,
            evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_mem::CacheGeometry;

    fn geometry(assoc: usize) -> OracleGeometry {
        OracleGeometry::from_mem(&CacheGeometry::new(4 * assoc * 32, 32, assoc).expect("valid"))
    }

    /// Addresses that land in set 0 with distinct tags.
    fn set0_addr(g: &OracleGeometry, i: u64) -> Addr {
        i * g.num_sets * g.block_bytes
    }

    #[test]
    fn naive_arithmetic_matches_the_optimized_geometry() {
        for (size, block, assoc) in [(16 * 1024, 32, 4), (8 * 1024, 64, 2), (4 * 1024, 16, 8)] {
            let fast = CacheGeometry::new(size, block, assoc).expect("valid");
            let slow = OracleGeometry::from_mem(&fast);
            for addr in [0u64, 0x33, 0x1234_5678, 0xdead_beef, u64::MAX / 2] {
                assert_eq!(slow.block_addr(addr), fast.block_addr(addr));
                assert_eq!(slow.set_index(addr), fast.set_index(addr));
                assert_eq!(slow.tag(addr), fast.tag(addr));
                assert_eq!(slow.direct_mapped_way(addr), fast.direct_mapped_way(addr));
            }
        }
    }

    #[test]
    fn miss_then_hit_and_lru_eviction() {
        let g = geometry(2);
        let mut c = OracleCache::new(g);
        let a = set0_addr(&g, 0);
        let b = set0_addr(&g, 1);
        let d = set0_addr(&g, 2);
        assert!(!c.access(a, AccessKind::Read, Placement::SetAssociative).hit);
        assert!(!c.access(b, AccessKind::Read, Placement::SetAssociative).hit);
        assert!(c.access(a, AccessKind::Read, Placement::SetAssociative).hit);
        // `b` is now LRU and must be the victim. (It was flagged
        // direct-mapped: the set-associative fill happened to land in its
        // direct-mapping way, which is all the flag records — the same rule
        // the optimized store applies.)
        let res = c.access(d, AccessKind::Read, Placement::SetAssociative);
        assert!(!res.hit);
        assert_eq!(res.evicted, Some((g.block_addr(b), false, true)));
        assert!(c.access(a, AccessKind::Read, Placement::SetAssociative).hit);
    }

    #[test]
    fn direct_mapped_placement_targets_the_dm_way() {
        let g = geometry(4);
        let mut c = OracleCache::new(g);
        for i in 0..4u64 {
            let addr = set0_addr(&g, i);
            let res = c.access(addr, AccessKind::Read, Placement::DirectMapped);
            assert!(!res.hit);
            assert_eq!(res.way, g.direct_mapped_way(addr));
            assert!(res.in_direct_mapped_way);
        }
        for i in 0..4u64 {
            assert!(
                c.access(set0_addr(&g, i), AccessKind::Read, Placement::DirectMapped)
                    .hit
            );
        }
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let g = geometry(2);
        let mut c = OracleCache::new(g);
        let a = set0_addr(&g, 0);
        let b = set0_addr(&g, 1);
        c.access(a, AccessKind::Read, Placement::SetAssociative);
        c.access(b, AccessKind::Read, Placement::SetAssociative);
        assert!(c.probe(a).is_some());
        let res = c.access(
            set0_addr(&g, 2),
            AccessKind::Read,
            Placement::SetAssociative,
        );
        assert_eq!(res.evicted.map(|(addr, _, _)| addr), Some(g.block_addr(a)));
    }

    #[test]
    fn writes_mark_dirty_and_evictions_report_it() {
        let g = geometry(1);
        let mut c = OracleCache::new(g);
        let a = set0_addr(&g, 0);
        c.access(a, AccessKind::Write, Placement::SetAssociative);
        let res = c.access(
            set0_addr(&g, 1),
            AccessKind::Read,
            Placement::SetAssociative,
        );
        assert_eq!(res.evicted, Some((g.block_addr(a), true, true)));
    }
}
