//! `wp-oracle` — the transparent reference simulator the optimized wpsdm
//! stack is pinned to.
//!
//! Four PRs of aggressive optimization (structure-of-arrays tag stores,
//! SWAR tag matching, monomorphized per-policy kernels, gang-scheduled
//! shared streams, a persistent result cache) left the simulator fast but
//! its correctness pinned only to scattered internal reference tests. This
//! crate is the end-to-end answer: a deliberately naive, allocation-happy,
//! per-access re-implementation of the whole model that a reviewer can
//! check against the paper (Powell et al., MICRO 2001) line by line —
//!
//! * [`OracleCache`] — nested-`Vec` LRU sets, whole block addresses stored
//!   per line, division/remainder address arithmetic ([`OracleGeometry`]);
//! * [`OracleDCache`] / [`OracleICache`] — every policy decision a
//!   per-access `match`, every probe priced by evaluating the
//!   [`wp_energy::CacheEnergyModel`] at the moment it is charged;
//! * [`OracleVictimList`] — the Section 2.2.2 conflict detector with exact
//!   scans instead of membership-filter fast paths;
//! * [`OracleHierarchy`] — the Table 1 L2/memory model over the naive
//!   store;
//! * [`OracleProcessor`] — the out-of-order scheduling loop walked one
//!   micro-op at a time, no block batching, no custom hashers.
//!
//! The oracle consumes the same workload streams
//! ([`wp_workloads::WorkloadSpec`] / [`wp_workloads::SharedStream`]) and
//! emits the same [`wp_cpu::SimResult`] as the optimized stack, and the
//! contract is *bit-identity*: [`wp_cpu::SimResult::exact_eq`] over every
//! counter and every IEEE-754 energy bit pattern. The differential
//! conformance harness in `wp-experiments` (module `conformance`, binary
//! `conformance`) drives the two stacks over the full `run_all` sweep,
//! randomized configuration/workload matrices, and recorded traces; see
//! `docs/VALIDATION.md`.
//!
//! Prediction *tables* (selective-DM counters, PC/XOR way tables, BTB,
//! SAWP, RAS, the hybrid branch predictor) are reused from
//! `wp-predictors`: they were never optimized, and sharing them keeps the
//! differential surface focused on the four optimized subsystems.
//!
//! # Example
//!
//! ```
//! use wp_cache::{DCachePolicy, ICachePolicy, L1Config};
//! use wp_cpu::{CpuConfig, Processor};
//! use wp_oracle::OracleProcessor;
//! use wp_workloads::{Benchmark, TraceConfig, TraceGenerator};
//!
//! # fn main() -> Result<(), wp_cache::ConfigError> {
//! let trace = || TraceGenerator::new(TraceConfig::new(Benchmark::Li).with_ops(5_000));
//! let args = (
//!     CpuConfig::default(),
//!     L1Config::paper_dcache(),
//!     DCachePolicy::SelDmWayPredict,
//!     L1Config::paper_icache(),
//!     ICachePolicy::WayPredict,
//! );
//! let naive = OracleProcessor::with_l1(args.0, args.1, args.2, args.3, args.4)?.run(trace());
//! let fast = Processor::with_l1(args.0, args.1, args.2, args.3, args.4)?.run(trace());
//! assert!(naive.exact_eq(&fast));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dcache;
pub mod hierarchy;
pub mod icache;
pub mod probe;
pub mod processor;
pub mod victims;

pub use cache::{OracleAccess, OracleCache, OracleGeometry};
pub use dcache::OracleDCache;
pub use hierarchy::OracleHierarchy;
pub use icache::OracleICache;
pub use probe::{resolve_probe, OracleProbe};
pub use processor::OracleProcessor;
pub use victims::OracleVictimList;
