//! Config-parallel lane simulation: N machine configurations, one pass over
//! the op stream.
//!
//! Gang scheduling (`wp-experiments`) already materializes each workload
//! stream once and replays it to every configuration in the gang — but each
//! replay still walks the stream separately. The lane runner goes one step
//! further for configurations that share a d-cache policy and tag geometry:
//! it drives up to [`wp_mem::MAX_LANES`] of them through **one** walk,
//! splitting each op into
//!
//! 1. a *shared pass*: one branch-predictor update (the predictor's state
//!    depends only on the op stream, so every lane sees the same direction
//!    sequence) and one config-parallel d-cache access through the SoA
//!    [`wp_cache::LaneDCache`], whose per-lane outcomes are buffered
//!    lane-major; then
//! 2. a *per-lane pass*: each lane's [`crate::pipeline`] scheduling state
//!    steps through the block with its precomputed d-outcomes handed back
//!    via `ReadyDSide`.
//!
//! Everything timing-dependent stays per lane: the i-cache (its fetch
//! sequence depends on the lane's scheduling), the memory hierarchy, and
//! the scheduler itself. Because the d-cache state depends only on the
//! `(address, kind)` program order — never on timing — and the precomputed
//! outcomes do not touch the hierarchy (the miss's L2 access happens inside
//! `step_op`, in per-lane program order, exactly as on the scalar path),
//! every lane's result is bit-identical to a scalar [`crate::Processor`]
//! run of the same configuration. `tests/lanes.rs` and the conformance
//! harness hold the engine to that.
//!
//! Lanes may differ in anything outside the batch key (d-policy plus
//! d-geometry): probe latencies, prediction-table sizes, the entire i-side,
//! and the core configuration. Figure 10's six i-cache variants, for
//! example, batch into a single lane group.

use wp_cache::{
    ConfigError, DAccessOutcome, DCachePolicy, ICacheController, ICachePolicy, L1Config, LaneDCache,
};
use wp_mem::{HierarchyConfig, MemoryHierarchy, MAX_LANES};
use wp_predictors::{BranchOutcome, HybridBranchPredictor};
use wp_workloads::{OpBlockSource, OpBuffer, OpKind};

use crate::pipeline::{CpuConfig, DServiced, ReadyDSide, SchedState};
use crate::result::SimResult;

/// One lane of a batch: everything that may vary per configuration when the
/// d-cache policy and tag geometry are shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneMember {
    /// Core parameters.
    pub cpu: CpuConfig,
    /// L1 d-cache configuration. Must agree with every other member on
    /// size, block size, and associativity; latencies and prediction-table
    /// sizes are free.
    pub l1d: L1Config,
    /// L1 i-cache configuration (fully per-lane).
    pub l1i: L1Config,
    /// I-cache access policy (fully per-lane).
    pub ipolicy: ICachePolicy,
}

/// Runs every member of the batch over one shared walk of `source`,
/// returning one [`SimResult`] per member, in member order — each
/// bit-identical to a scalar [`crate::Processor`] run of that
/// configuration over the same op sequence.
///
/// # Errors
///
/// Returns a [`ConfigError`] if any member's cache configuration is
/// inconsistent.
///
/// # Panics
///
/// Panics if `members` is empty, wider than [`MAX_LANES`], or the members
/// disagree on d-cache geometry — batch construction (`wp-experiments`)
/// groups by `(policy, geometry)` before calling this.
pub fn run_lane_batch(
    dpolicy: DCachePolicy,
    members: &[LaneMember],
    source: &mut impl OpBlockSource,
) -> Result<Vec<SimResult>, ConfigError> {
    wp_cache::with_dpolicy_kernel!(dpolicy, K => {
        run_lane_batch_kernel::<K>(dpolicy, members, source)
    })
}

/// [`run_lane_batch`] monomorphized for one d-cache policy.
fn run_lane_batch_kernel<K: wp_cache::DPolicyKernel>(
    dpolicy: DCachePolicy,
    members: &[LaneMember],
    source: &mut impl OpBlockSource,
) -> Result<Vec<SimResult>, ConfigError> {
    let lanes = members.len();
    assert!(
        lanes > 0 && lanes <= MAX_LANES,
        "lane batch width {lanes} out of range 1..={MAX_LANES}"
    );
    // Deduplicate identical d-configurations: the d-cache is driven by the
    // shared `(address, kind)` program order alone, so lanes whose *full*
    // l1d config matches (not just the geometry) see bit-identical outcome
    // and statistics streams — one tag column serves them all. Sweeps that
    // vary the i-side or the core (Figure 10, issue-width studies) collapse
    // to a single d-row this way.
    let mut d_rows: Vec<L1Config> = Vec::with_capacity(lanes);
    let mut d_map: Vec<usize> = Vec::with_capacity(lanes);
    for member in members {
        let row = d_rows
            .iter()
            .position(|c| c == &member.l1d)
            .unwrap_or_else(|| {
                d_rows.push(member.l1d);
                d_rows.len() - 1
            });
        d_map.push(row);
    }
    let rows = d_rows.len();
    let mut dcache = LaneDCache::new(&d_rows, dpolicy)?;
    let mut icaches = members
        .iter()
        .map(|m| ICacheController::new(m.l1i, m.ipolicy))
        .collect::<Result<Vec<_>, _>>()?;
    let mut hierarchies: Vec<MemoryHierarchy> = (0..lanes)
        .map(|_| {
            MemoryHierarchy::new(HierarchyConfig::default())
                .expect("the Table 1 hierarchy configuration is valid")
        })
        .collect();
    let mut predictor = HybridBranchPredictor::default();
    let mut scheds: Vec<SchedState> = members.iter().map(|m| SchedState::new(&m.cpu)).collect();
    // Geometry is uniform across the batch (asserted by LaneDCache), so the
    // fetch-block mask is shared.
    let block_mask = !(members[0].l1d.block_bytes as u64 - 1);

    let mut buf = OpBuffer::new();
    let mut predictions: Vec<bool> = Vec::new();
    // Per-block d-outcomes, row-major and compacted to memory ops: distinct
    // d-config `r`'s outcome for the block's `j`-th load/store sits at
    // `r * stride + j`. Every lane sees the same op stream, so the memory
    // ops land at the same ordinals in every row and the per-lane pass
    // consumes its row (`d_map[l]`) with a plain cursor. The buffer is
    // allocated once — a block only overwrites (and reads back) the slots
    // its memory ops touch, so there is no per-block clear or default-fill.
    let stride = buf.capacity();
    let mut outcomes: Vec<DServiced> = vec![DServiced::default(); rows * stride];
    let mut scratch = [DAccessOutcome::default(); MAX_LANES];
    while source.fill(&mut buf) > 0 {
        let ops = buf.ops();
        predictions.clear();

        // ---- shared pass: predictor directions and d-cache outcomes ----
        let mut mem_ops = 0usize;
        for op in ops {
            predictions.push(if let OpKind::Branch { taken, .. } = op.kind {
                predictor
                    .update(op.pc, BranchOutcome::from_taken(taken))
                    .is_taken()
            } else {
                false
            });
            match op.kind {
                OpKind::Load { addr, approx_addr } => {
                    dcache.load_kernel::<K>(op.pc, addr, approx_addr, &mut scratch[..rows]);
                }
                OpKind::Store { addr } => {
                    dcache.store(op.pc, addr, &mut scratch[..rows]);
                }
                _ => continue,
            }
            for (r, &out) in scratch[..rows].iter().enumerate() {
                outcomes[r * stride + mem_ops] = out.into();
            }
            mem_ops += 1;
        }

        // ---- per-lane pass: scheduling with precomputed d-outcomes ----
        for (l, sched) in scheds.iter_mut().enumerate() {
            let row = d_map[l];
            let mut dside = ReadyDSide {
                outcomes: &outcomes[row * stride..row * stride + mem_ops],
                cursor: 0,
            };
            let icache = &mut icaches[l];
            let hierarchy = &mut hierarchies[l];
            let cpu = &members[l].cpu;
            for (op, &predicted) in ops.iter().zip(&predictions) {
                sched.step_op(
                    cpu, block_mask, op, predicted, &mut dside, icache, hierarchy,
                );
            }
        }
    }

    Ok(scheds
        .into_iter()
        .enumerate()
        .map(|(l, sched)| {
            let activity = sched.finish();
            SimResult {
                cycles: activity.cycles,
                activity,
                dcache: *dcache.stats(d_map[l]),
                icache: *icaches[l].stats(),
                memory_accesses: hierarchies[l].memory_accesses(),
                branch_accuracy: predictor.accuracy(),
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Processor;
    use wp_workloads::{Benchmark, IterBlockSource, TraceConfig, TraceGenerator};

    /// A heterogeneous fig10-shaped batch: one d-side, varied i-sides and
    /// core/latency parameters.
    fn members() -> Vec<LaneMember> {
        let base = LaneMember {
            cpu: CpuConfig::default(),
            l1d: L1Config::paper_dcache(),
            l1i: L1Config::paper_icache(),
            ipolicy: ICachePolicy::Parallel,
        };
        vec![
            base,
            LaneMember {
                ipolicy: ICachePolicy::WayPredict,
                ..base
            },
            LaneMember {
                l1i: L1Config::paper_icache().with_associativity(2),
                ipolicy: ICachePolicy::WayPredict,
                ..base
            },
            LaneMember {
                l1d: L1Config::paper_dcache().with_base_latency(2),
                ..base
            },
            LaneMember {
                cpu: CpuConfig {
                    issue_width: 4,
                    ..CpuConfig::default()
                },
                ..base
            },
        ]
    }

    #[test]
    fn lane_batch_matches_scalar_runs_bit_for_bit() {
        let config = TraceConfig::new(Benchmark::Gcc).with_ops(20_000);
        for dpolicy in [
            DCachePolicy::Parallel,
            DCachePolicy::SelDmWayPredict,
            DCachePolicy::WayPredictPc,
        ] {
            let members = members();
            let batched = run_lane_batch(
                dpolicy,
                &members,
                &mut IterBlockSource(TraceGenerator::new(config)),
            )
            .expect("valid batch");
            assert_eq!(batched.len(), members.len());
            for (l, member) in members.iter().enumerate() {
                let scalar =
                    Processor::with_l1(member.cpu, member.l1d, dpolicy, member.l1i, member.ipolicy)
                        .expect("valid config")
                        .run(TraceGenerator::new(config));
                assert!(
                    batched[l].exact_eq(&scalar),
                    "{dpolicy:?} lane {l} diverged: {:?}",
                    batched[l].diff(&scalar)
                );
            }
        }
    }

    #[test]
    fn width_one_batch_is_legal() {
        let config = TraceConfig::new(Benchmark::Li).with_ops(5_000);
        let member = members()[0];
        let batched = run_lane_batch(
            DCachePolicy::Sequential,
            &[member],
            &mut IterBlockSource(TraceGenerator::new(config)),
        )
        .expect("valid batch");
        let scalar = Processor::with_l1(
            member.cpu,
            member.l1d,
            DCachePolicy::Sequential,
            member.l1i,
            member.ipolicy,
        )
        .expect("valid config")
        .run(TraceGenerator::new(config));
        assert!(batched[0].exact_eq(&scalar));
    }

    #[test]
    fn invalid_member_config_is_an_error() {
        let mut bad = members()[0];
        bad.l1i = bad.l1i.with_associativity(3);
        assert!(run_lane_batch(
            DCachePolicy::Parallel,
            &[bad],
            &mut IterBlockSource(std::iter::empty())
        )
        .is_err());
    }
}
