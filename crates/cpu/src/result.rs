//! The output of one processor run: cycles, activity counts, cache
//! statistics, and helpers for computing the paper's relative metrics.

use wp_cache::{DCacheController, DCacheStats, ICacheController, ICacheStats};
use wp_energy::{ActivityCounts, Energy, EnergyDelay, ProcessorEnergyModel, RelativeMetrics};
use wp_mem::MemoryHierarchy;
use wp_predictors::HybridBranchPredictor;

/// Everything measured by one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Execution time in cycles.
    pub cycles: u64,
    /// Per-unit activity counts (for the Wattch-style processor model).
    pub activity: ActivityCounts,
    /// Final d-cache statistics (access breakdown, accuracies, energy).
    pub dcache: DCacheStats,
    /// Final i-cache statistics.
    pub icache: ICacheStats,
    /// Number of L1 misses that also missed in the L2 and went to memory.
    pub memory_accesses: u64,
    /// Branch-direction prediction accuracy over the run.
    pub branch_accuracy: f64,
}

impl SimResult {
    /// Assembles the result from the processor's components after a run.
    pub(crate) fn collect(
        activity: ActivityCounts,
        dcache: &DCacheController,
        icache: &ICacheController,
        hierarchy: &MemoryHierarchy,
        branch_predictor: &HybridBranchPredictor,
    ) -> Self {
        Self {
            cycles: activity.cycles,
            activity,
            dcache: *dcache.stats(),
            icache: *icache.stats(),
            memory_accesses: hierarchy.memory_accesses(),
            branch_accuracy: branch_predictor.accuracy(),
        }
    }

    /// Total L1 d-cache energy (arrays plus prediction structures).
    pub fn dcache_energy(&self) -> Energy {
        self.dcache.total_energy()
    }

    /// Total L1 i-cache energy (arrays plus way-field overhead).
    pub fn icache_energy(&self) -> Energy {
        self.icache.total_energy()
    }

    /// The d-cache energy-delay point of this run (the quantity Figures 4–9
    /// normalise between configurations).
    pub fn dcache_energy_delay(&self) -> EnergyDelay {
        EnergyDelay::new(self.dcache_energy(), self.cycles)
    }

    /// The i-cache energy-delay point (Figure 10).
    pub fn icache_energy_delay(&self) -> EnergyDelay {
        EnergyDelay::new(self.icache_energy(), self.cycles)
    }

    /// Overall processor energy under a Wattch-style model (Figure 11).
    pub fn processor_energy(&self, model: &ProcessorEnergyModel) -> Energy {
        model.total_energy(&self.activity, self.icache_energy(), self.dcache_energy())
    }

    /// Overall processor energy-delay point (Figure 11).
    pub fn processor_energy_delay(&self, model: &ProcessorEnergyModel) -> EnergyDelay {
        EnergyDelay::new(self.processor_energy(model), self.cycles)
    }

    /// Fraction of overall processor energy dissipated in the two L1 caches
    /// (the paper reports 10–16 %).
    pub fn l1_energy_fraction(&self, model: &ProcessorEnergyModel) -> f64 {
        model
            .breakdown(&self.activity, self.icache_energy(), self.dcache_energy())
            .l1_fraction()
    }

    /// D-cache relative metrics against a baseline run (typically the
    /// 1-cycle parallel-access configuration).
    pub fn dcache_relative_to(&self, baseline: &SimResult) -> RelativeMetrics {
        self.dcache_energy_delay()
            .relative_to(&baseline.dcache_energy_delay())
    }

    /// I-cache relative metrics against a baseline run.
    pub fn icache_relative_to(&self, baseline: &SimResult) -> RelativeMetrics {
        self.icache_energy_delay()
            .relative_to(&baseline.icache_energy_delay())
    }

    /// Overall processor relative metrics against a baseline run.
    pub fn processor_relative_to(
        &self,
        baseline: &SimResult,
        model: &ProcessorEnergyModel,
    ) -> RelativeMetrics {
        self.processor_energy_delay(model)
            .relative_to(&baseline.processor_energy_delay(model))
    }

    /// Performance degradation relative to a baseline run (positive means
    /// slower), as a fraction.
    pub fn performance_degradation_vs(&self, baseline: &SimResult) -> f64 {
        self.cycles as f64 / baseline.cycles as f64 - 1.0
    }

    /// The result as `(name, value-bits)` pairs: every counter as itself
    /// and every energy/accuracy as its IEEE-754 bit pattern. This is the
    /// *exact-equality contract* the differential conformance subsystem is
    /// built on (see `docs/VALIDATION.md`) — two results are the same
    /// result exactly when every pair matches bit for bit — and the
    /// canonical field enumeration serializers (the experiment matrix
    /// cache) iterate, so a new field added here reaches them without a
    /// second hand-maintained list.
    pub fn fields(&self) -> [(&'static str, u64); 41] {
        let a = &self.activity;
        let d = &self.dcache;
        let i = &self.icache;
        [
            ("cycles", self.cycles),
            ("activity.cycles", a.cycles),
            ("activity.instructions", a.instructions),
            ("activity.int_ops", a.int_ops),
            ("activity.fp_ops", a.fp_ops),
            ("activity.loads", a.loads),
            ("activity.stores", a.stores),
            ("activity.branches", a.branches),
            ("activity.l2_accesses", a.l2_accesses),
            ("dcache.loads", d.loads),
            ("dcache.load_misses", d.load_misses),
            ("dcache.stores", d.stores),
            ("dcache.store_misses", d.store_misses),
            ("dcache.evictions", d.evictions),
            ("dcache.direct_mapped_accesses", d.direct_mapped_accesses),
            ("dcache.parallel_accesses", d.parallel_accesses),
            ("dcache.way_predicted_accesses", d.way_predicted_accesses),
            ("dcache.sequential_accesses", d.sequential_accesses),
            ("dcache.mispredicted_accesses", d.mispredicted_accesses),
            ("dcache.way_predictions", d.way_predictions),
            ("dcache.way_predictions_correct", d.way_predictions_correct),
            ("dcache.seldm_predicted_dm", d.seldm_predicted_dm),
            (
                "dcache.seldm_predicted_dm_correct",
                d.seldm_predicted_dm_correct,
            ),
            (
                "dcache.conflicting_blocks_flagged",
                d.conflicting_blocks_flagged,
            ),
            ("dcache.single_way_load_hits", d.single_way_load_hits),
            ("dcache.seldm_predicted_sa", d.seldm_predicted_sa),
            ("dcache.victim_list_hits", d.victim_list_hits),
            ("dcache.dirty_evictions", d.dirty_evictions),
            ("dcache.cache_energy", d.cache_energy.to_bits()),
            ("dcache.prediction_energy", d.prediction_energy.to_bits()),
            ("icache.fetches", i.fetches),
            ("icache.fetch_misses", i.fetch_misses),
            ("icache.sawp_correct", i.sawp_correct),
            ("icache.btb_correct", i.btb_correct),
            ("icache.ras_correct", i.ras_correct),
            ("icache.no_prediction", i.no_prediction),
            ("icache.mispredicted", i.mispredicted),
            ("icache.cache_energy", i.cache_energy.to_bits()),
            ("icache.prediction_energy", i.prediction_energy.to_bits()),
            ("memory_accesses", self.memory_accesses),
            ("branch_accuracy", self.branch_accuracy.to_bits()),
        ]
    }

    /// True if every field of the two results matches *bit for bit*,
    /// floating-point fields included. Stricter than `==` (which uses `f64`
    /// semantic equality): `exact_eq` distinguishes `0.0` from `-0.0` and
    /// never equates `NaN`-free results that differ only in rounding. This
    /// is the equality the conformance harness holds the optimized stack
    /// to — an optimization is only admissible if the bits do not move.
    pub fn exact_eq(&self, other: &SimResult) -> bool {
        self.fields()
            .iter()
            .zip(other.fields().iter())
            .all(|(a, b)| a.1 == b.1)
    }

    /// True if every counter matches exactly and every floating-point
    /// field agrees within relative tolerance `tolerance` — the loose
    /// comparison for experiments that *intend* to change energy
    /// accounting and want to bound the drift.
    pub fn approx_eq(&self, other: &SimResult, tolerance: f64) -> bool {
        let close = |x: f64, y: f64| {
            let scale = x.abs().max(y.abs());
            (x - y).abs() <= tolerance * scale.max(1.0)
        };
        self.cycles == other.cycles
            && self.activity == other.activity
            && self.memory_accesses == other.memory_accesses
            && close(self.branch_accuracy, other.branch_accuracy)
            && {
                let (mut a, mut b) = (self.dcache, other.dcache);
                let energies_close = close(a.cache_energy, b.cache_energy)
                    && close(a.prediction_energy, b.prediction_energy);
                a.cache_energy = 0.0;
                a.prediction_energy = 0.0;
                b.cache_energy = 0.0;
                b.prediction_energy = 0.0;
                energies_close && a == b
            }
            && {
                let (mut a, mut b) = (self.icache, other.icache);
                let energies_close = close(a.cache_energy, b.cache_energy)
                    && close(a.prediction_energy, b.prediction_energy);
                a.cache_energy = 0.0;
                a.prediction_energy = 0.0;
                b.cache_energy = 0.0;
                b.prediction_energy = 0.0;
                energies_close && a == b
            }
    }

    /// The names of every field whose bits differ between the two results,
    /// in declaration order — the diagnostic the conformance report prints
    /// for a mismatching point.
    pub fn diff(&self, other: &SimResult) -> Vec<&'static str> {
        self.fields()
            .iter()
            .zip(other.fields().iter())
            .filter(|(a, b)| a.1 != b.1)
            .map(|(a, _)| a.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(cycles: u64, dcache_energy: f64) -> SimResult {
        SimResult {
            cycles,
            activity: ActivityCounts {
                cycles,
                instructions: 1000,
                int_ops: 500,
                fp_ops: 50,
                loads: 250,
                stores: 100,
                branches: 100,
                l2_accesses: 10,
            },
            dcache: DCacheStats {
                loads: 250,
                stores: 100,
                cache_energy: dcache_energy,
                prediction_energy: 1.0,
                ..DCacheStats::default()
            },
            icache: ICacheStats {
                fetches: 200,
                cache_energy: 50_000.0,
                ..ICacheStats::default()
            },
            memory_accesses: 2,
            branch_accuracy: 0.95,
        }
    }

    #[test]
    fn energy_helpers_add_prediction_overhead() {
        let r = synthetic(500, 100.0);
        assert_eq!(r.dcache_energy(), 101.0);
        assert_eq!(r.icache_energy(), 50_000.0);
    }

    #[test]
    fn relative_metrics_compare_energy_delay() {
        let baseline = synthetic(500, 100_000.0);
        let technique = synthetic(510, 30_000.0);
        let m = technique.dcache_relative_to(&baseline);
        assert!(m.energy_delay_savings() > 0.6);
        assert!(m.performance_degradation() > 0.0 && m.performance_degradation() < 0.03);
        assert!((technique.performance_degradation_vs(&baseline) - 0.02).abs() < 1e-9);
    }

    #[test]
    fn exact_eq_is_bitwise_and_diff_names_the_moved_fields() {
        let a = synthetic(500, 100.0);
        let mut b = a.clone();
        assert!(a.exact_eq(&b));
        assert!(a.diff(&b).is_empty());
        // A semantic-equal-but-bitwise-different float fails exact_eq...
        b.dcache.cache_energy = -0.0 + 100.0; // same value, same bits — control
        assert!(a.exact_eq(&b));
        b.dcache.cache_energy = f64::from_bits(a.dcache.cache_energy.to_bits() + 1);
        assert!(!a.exact_eq(&b));
        assert_eq!(a.diff(&b), vec!["dcache.cache_energy"]);
        // ...and a counter change names its field.
        let mut c = a.clone();
        c.activity.loads += 1;
        assert_eq!(a.diff(&c), vec!["activity.loads"]);
    }

    #[test]
    fn approx_eq_bounds_float_drift_but_never_counter_drift() {
        let a = synthetic(500, 100.0);
        // Identity.
        assert!(a.approx_eq(&a, 0.0));
        // A 0.5 % energy drift passes at 1 % tolerance and fails at 0.1 %.
        let mut drifted = a.clone();
        drifted.dcache.cache_energy *= 1.005;
        drifted.icache.cache_energy *= 0.995;
        assert!(a.approx_eq(&drifted, 0.01));
        assert!(!a.approx_eq(&drifted, 0.001));
        // Counters are never tolerated, whatever the tolerance.
        let mut counted = a.clone();
        counted.dcache.load_misses += 1;
        assert!(!a.approx_eq(&counted, 1.0));
        let mut cycles = a.clone();
        cycles.cycles += 1;
        cycles.activity.cycles += 1;
        assert!(!a.approx_eq(&cycles, 1.0));
        // Near-zero fields compare against the absolute floor, so a tiny
        // prediction-energy difference passes a loose tolerance.
        let mut tiny = a.clone();
        tiny.dcache.prediction_energy += 1e-6;
        assert!(a.approx_eq(&tiny, 1e-3));
    }

    #[test]
    fn processor_energy_includes_l1_contributions() {
        let model = ProcessorEnergyModel::default();
        let small = synthetic(500, 10_000.0);
        let large = synthetic(500, 300_000.0);
        assert!(large.processor_energy(&model) > small.processor_energy(&model));
        assert!(large.l1_energy_fraction(&model) > small.l1_energy_fraction(&model));
    }
}
