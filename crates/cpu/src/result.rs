//! The output of one processor run: cycles, activity counts, cache
//! statistics, and helpers for computing the paper's relative metrics.

use wp_cache::{DCacheController, DCacheStats, ICacheController, ICacheStats};
use wp_energy::{ActivityCounts, Energy, EnergyDelay, ProcessorEnergyModel, RelativeMetrics};
use wp_mem::MemoryHierarchy;
use wp_predictors::HybridBranchPredictor;

/// Everything measured by one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Execution time in cycles.
    pub cycles: u64,
    /// Per-unit activity counts (for the Wattch-style processor model).
    pub activity: ActivityCounts,
    /// Final d-cache statistics (access breakdown, accuracies, energy).
    pub dcache: DCacheStats,
    /// Final i-cache statistics.
    pub icache: ICacheStats,
    /// Number of L1 misses that also missed in the L2 and went to memory.
    pub memory_accesses: u64,
    /// Branch-direction prediction accuracy over the run.
    pub branch_accuracy: f64,
}

impl SimResult {
    /// Assembles the result from the processor's components after a run.
    pub(crate) fn collect(
        activity: ActivityCounts,
        dcache: &DCacheController,
        icache: &ICacheController,
        hierarchy: &MemoryHierarchy,
        branch_predictor: &HybridBranchPredictor,
    ) -> Self {
        Self {
            cycles: activity.cycles,
            activity,
            dcache: *dcache.stats(),
            icache: *icache.stats(),
            memory_accesses: hierarchy.memory_accesses(),
            branch_accuracy: branch_predictor.accuracy(),
        }
    }

    /// Total L1 d-cache energy (arrays plus prediction structures).
    pub fn dcache_energy(&self) -> Energy {
        self.dcache.total_energy()
    }

    /// Total L1 i-cache energy (arrays plus way-field overhead).
    pub fn icache_energy(&self) -> Energy {
        self.icache.total_energy()
    }

    /// The d-cache energy-delay point of this run (the quantity Figures 4–9
    /// normalise between configurations).
    pub fn dcache_energy_delay(&self) -> EnergyDelay {
        EnergyDelay::new(self.dcache_energy(), self.cycles)
    }

    /// The i-cache energy-delay point (Figure 10).
    pub fn icache_energy_delay(&self) -> EnergyDelay {
        EnergyDelay::new(self.icache_energy(), self.cycles)
    }

    /// Overall processor energy under a Wattch-style model (Figure 11).
    pub fn processor_energy(&self, model: &ProcessorEnergyModel) -> Energy {
        model.total_energy(&self.activity, self.icache_energy(), self.dcache_energy())
    }

    /// Overall processor energy-delay point (Figure 11).
    pub fn processor_energy_delay(&self, model: &ProcessorEnergyModel) -> EnergyDelay {
        EnergyDelay::new(self.processor_energy(model), self.cycles)
    }

    /// Fraction of overall processor energy dissipated in the two L1 caches
    /// (the paper reports 10–16 %).
    pub fn l1_energy_fraction(&self, model: &ProcessorEnergyModel) -> f64 {
        model
            .breakdown(&self.activity, self.icache_energy(), self.dcache_energy())
            .l1_fraction()
    }

    /// D-cache relative metrics against a baseline run (typically the
    /// 1-cycle parallel-access configuration).
    pub fn dcache_relative_to(&self, baseline: &SimResult) -> RelativeMetrics {
        self.dcache_energy_delay()
            .relative_to(&baseline.dcache_energy_delay())
    }

    /// I-cache relative metrics against a baseline run.
    pub fn icache_relative_to(&self, baseline: &SimResult) -> RelativeMetrics {
        self.icache_energy_delay()
            .relative_to(&baseline.icache_energy_delay())
    }

    /// Overall processor relative metrics against a baseline run.
    pub fn processor_relative_to(
        &self,
        baseline: &SimResult,
        model: &ProcessorEnergyModel,
    ) -> RelativeMetrics {
        self.processor_energy_delay(model)
            .relative_to(&baseline.processor_energy_delay(model))
    }

    /// Performance degradation relative to a baseline run (positive means
    /// slower), as a fraction.
    pub fn performance_degradation_vs(&self, baseline: &SimResult) -> f64 {
        self.cycles as f64 / baseline.cycles as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(cycles: u64, dcache_energy: f64) -> SimResult {
        SimResult {
            cycles,
            activity: ActivityCounts {
                cycles,
                instructions: 1000,
                int_ops: 500,
                fp_ops: 50,
                loads: 250,
                stores: 100,
                branches: 100,
                l2_accesses: 10,
            },
            dcache: DCacheStats {
                loads: 250,
                stores: 100,
                cache_energy: dcache_energy,
                prediction_energy: 1.0,
                ..DCacheStats::default()
            },
            icache: ICacheStats {
                fetches: 200,
                cache_energy: 50_000.0,
                ..ICacheStats::default()
            },
            memory_accesses: 2,
            branch_accuracy: 0.95,
        }
    }

    #[test]
    fn energy_helpers_add_prediction_overhead() {
        let r = synthetic(500, 100.0);
        assert_eq!(r.dcache_energy(), 101.0);
        assert_eq!(r.icache_energy(), 50_000.0);
    }

    #[test]
    fn relative_metrics_compare_energy_delay() {
        let baseline = synthetic(500, 100_000.0);
        let technique = synthetic(510, 30_000.0);
        let m = technique.dcache_relative_to(&baseline);
        assert!(m.energy_delay_savings() > 0.6);
        assert!(m.performance_degradation() > 0.0 && m.performance_degradation() < 0.03);
        assert!((technique.performance_degradation_vs(&baseline) - 0.02).abs() < 1e-9);
    }

    #[test]
    fn processor_energy_includes_l1_contributions() {
        let model = ProcessorEnergyModel::default();
        let small = synthetic(500, 10_000.0);
        let large = synthetic(500, 300_000.0);
        assert!(large.processor_energy(&model) > small.processor_energy(&model));
        assert!(large.l1_energy_fraction(&model) > small.l1_energy_fraction(&model));
    }
}
