//! The trace-driven out-of-order scheduling model.
//!
//! [`Processor::run`] walks the committed-path micro-op trace once, in
//! order, and computes for every op the cycle it is fetched, issued,
//! completed, and committed, subject to:
//!
//! * fetch bandwidth (one i-cache block per cycle, `fetch_width`
//!   instructions per cycle), i-cache hit/miss latency, taken-branch fetch
//!   redirects, BTB-miss bubbles, and branch-misprediction resolution
//!   stalls;
//! * register dependences (the trace records producer distances);
//! * issue and commit bandwidth, and finite reorder-buffer and
//!   load/store-queue occupancy;
//! * d-cache access latency under the configured policy, plus L2/memory
//!   latency on misses.
//!
//! This is the standard "interval / dependence-chain" approximation of an
//! out-of-order core: it does not simulate wrong-path execution, but it
//! captures the property the paper's performance results rest on — an
//! out-of-order window absorbs an occasional extra cycle on a load, but not
//! an extra cycle on every load.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use serde::{Deserialize, Serialize};
use wp_cache::{
    ConfigError, DCacheController, DCachePolicy, FetchKind, ICacheController, ICachePolicy,
    L1Config,
};
use wp_energy::ActivityCounts;
use wp_mem::{AccessKind, MemoryHierarchy};
use wp_predictors::{BranchOutcome, HybridBranchPredictor};
use wp_workloads::{BranchClass, IterBlockSource, MicroOp, OpBlockSource, OpBuffer, OpKind};

use crate::result::SimResult;

/// Microarchitectural parameters of the modelled core (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Instructions fetched per cycle (Table 1: 8).
    pub fetch_width: usize,
    /// Instructions issued per cycle (Table 1: 8).
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries (Table 1: 64).
    pub rob_entries: usize,
    /// Load/store-queue entries (Table 1: 32).
    pub lsq_entries: usize,
    /// Cycles between fetch and earliest issue (decode/rename/dispatch
    /// depth).
    pub dispatch_latency: u64,
    /// Extra cycles, beyond waiting for the branch to execute, before fetch
    /// resumes after a mispredicted branch.
    pub mispredict_extra_penalty: u64,
    /// Fetch-bubble cycles when a predicted-taken branch misses in the BTB
    /// and the target must come from decode.
    pub btb_miss_penalty: u64,
    /// Integer ALU latency.
    pub int_latency: u64,
    /// Floating-point operation latency.
    pub fp_latency: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            fetch_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_entries: 64,
            lsq_entries: 32,
            dispatch_latency: 2,
            mispredict_extra_penalty: 2,
            btb_miss_penalty: 1,
            int_latency: 1,
            fp_latency: 3,
        }
    }
}

/// The processor: an out-of-order core timing model bound to an i-cache, a
/// d-cache, the memory hierarchy behind them, and a branch predictor.
///
/// # Example
///
/// ```
/// use wp_cache::{DCacheController, DCachePolicy, ICacheController, ICachePolicy, L1Config};
/// use wp_cpu::{CpuConfig, Processor};
/// use wp_mem::{HierarchyConfig, MemoryHierarchy};
/// use wp_predictors::HybridBranchPredictor;
/// use wp_workloads::{Benchmark, TraceConfig, TraceGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dcache = DCacheController::new(L1Config::paper_dcache(), DCachePolicy::SelDmWayPredict)?;
/// let icache = ICacheController::new(L1Config::paper_icache(), ICachePolicy::WayPredict)?;
/// let hierarchy = MemoryHierarchy::new(HierarchyConfig::default())?;
/// let mut cpu = Processor::new(
///     CpuConfig::default(),
///     dcache,
///     icache,
///     hierarchy,
///     HybridBranchPredictor::default(),
/// );
/// let trace = TraceGenerator::new(TraceConfig::new(Benchmark::Gcc).with_ops(20_000));
/// let result = cpu.run(trace);
/// assert!(result.cycles > 0);
/// assert!(result.activity.ipc() > 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Processor {
    config: CpuConfig,
    dcache: DCacheController,
    icache: ICacheController,
    hierarchy: MemoryHierarchy,
    branch_predictor: HybridBranchPredictor,
}

/// Maximum register-dependence distance honoured by the scheduler (matches
/// the trace generator's limit and the ROB size).
const MAX_DEP_WINDOW: usize = 64;

/// A single-multiply hasher for the cycle-keyed bandwidth maps. The keys
/// are dense, trusted cycle numbers, so SipHash's DoS resistance buys
/// nothing — but its cost lands on every op (two map reservations each).
/// A Fibonacci multiply spreads sequential keys across the table just as
/// well. The map's *contents* are what they always were; only the bucket
/// placement changes, which no lookup result depends on.
#[derive(Debug, Default)]
struct CycleHasher(u64);

impl Hasher for CycleHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; route stray byte writes through
        // the same multiply for completeness.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// A cycle-number → reservation-count map with the cheap hasher.
type CycleMap = HashMap<u64, u32, BuildHasherDefault<CycleHasher>>;

impl Processor {
    /// Assembles a processor from its parts.
    pub fn new(
        config: CpuConfig,
        dcache: DCacheController,
        icache: ICacheController,
        hierarchy: MemoryHierarchy,
        branch_predictor: HybridBranchPredictor,
    ) -> Self {
        Self {
            config,
            dcache,
            icache,
            hierarchy,
            branch_predictor,
        }
    }

    /// Builds a processor over the unified L1 controller API: both caches
    /// are constructed from their `(configuration, policy)` pairs on the
    /// shared [`wp_cache::AccessCore`], with the Table 1 memory hierarchy
    /// and branch predictor behind them.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if either cache configuration is
    /// inconsistent.
    pub fn with_l1(
        config: CpuConfig,
        l1d: L1Config,
        dpolicy: DCachePolicy,
        l1i: L1Config,
        ipolicy: ICachePolicy,
    ) -> Result<Self, ConfigError> {
        Ok(Self::new(
            config,
            DCacheController::new(l1d, dpolicy)?,
            ICacheController::new(l1i, ipolicy)?,
            MemoryHierarchy::new(wp_mem::HierarchyConfig::default())
                .expect("the Table 1 hierarchy configuration is valid"),
            HybridBranchPredictor::default(),
        ))
    }

    /// The core configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// The d-cache controller (for inspecting statistics after a run).
    pub fn dcache(&self) -> &DCacheController {
        &self.dcache
    }

    /// The i-cache controller.
    pub fn icache(&self) -> &ICacheController {
        &self.icache
    }

    /// The branch predictor.
    pub fn branch_predictor(&self) -> &HybridBranchPredictor {
        &self.branch_predictor
    }

    /// Runs the trace to completion and returns the timing, activity, and
    /// cache statistics.
    ///
    /// This is a convenience wrapper over [`Processor::run_blocks`]: the
    /// iterator is consumed through a block buffer, so the two entry points
    /// produce bit-identical results for the same op sequence.
    pub fn run(&mut self, trace: impl IntoIterator<Item = MicroOp>) -> SimResult {
        self.run_blocks(&mut IterBlockSource(trace.into_iter()))
    }

    /// Runs a block-producing op source to completion — the throughput
    /// entry point: the source refills a reusable [`OpBuffer`] and the
    /// scheduling loop walks plain slices, resolving the workload kind once
    /// per block instead of once per op.
    ///
    /// The d-cache policy is resolved *once per run*, not once per access:
    /// this dispatches to a monomorphized instantiation of the scheduling
    /// loop per [`DCachePolicy`], inside which every load goes through
    /// [`DCacheController::load_kernel`] with the policy as a compile-time
    /// constant.
    pub fn run_blocks(&mut self, source: &mut impl OpBlockSource) -> SimResult {
        wp_cache::with_dpolicy_kernel!(self.dcache.policy(), K => {
            self.run_blocks_kernel::<K>(source)
        })
    }

    /// The scheduling loop, monomorphized for one d-cache policy.
    fn run_blocks_kernel<K: wp_cache::DPolicyKernel>(
        &mut self,
        source: &mut impl OpBlockSource,
    ) -> SimResult {
        let block_mask = !(self.dcache.config().block_bytes as u64 - 1);

        let mut activity = ActivityCounts::default();
        let mut issue_used = CycleMap::default();
        let mut commit_used = CycleMap::default();
        let mut completes: VecDeque<u64> = VecDeque::with_capacity(MAX_DEP_WINDOW);
        let mut rob: VecDeque<u64> = VecDeque::with_capacity(self.config.rob_entries);
        let mut lsq: VecDeque<u64> = VecDeque::with_capacity(self.config.lsq_entries);

        let mut fetch_cycle: u64 = 0;
        let mut slots_left: usize = 0;
        let mut cur_block: Option<u64> = None;
        let mut next_kind = FetchKind::Redirect;
        let mut pending_resume: Option<u64> = None;
        let mut prev_commit: u64 = 0;
        let mut last_commit: u64 = 0;
        let mut ops_since_cleanup: usize = 0;

        let mut buf = OpBuffer::new();
        while source.fill(&mut buf) > 0 {
            for &op in buf.ops() {
                // ---- structural gating: ROB and LSQ occupancy ----
                if rob.len() == self.config.rob_entries {
                    let oldest = rob.pop_front().unwrap_or(0);
                    if oldest > fetch_cycle {
                        fetch_cycle = oldest;
                        cur_block = None;
                    }
                }
                let is_mem = op.kind.is_mem();
                if is_mem && lsq.len() == self.config.lsq_entries {
                    let oldest = lsq.pop_front().unwrap_or(0);
                    if oldest > fetch_cycle {
                        fetch_cycle = oldest;
                        cur_block = None;
                    }
                }

                // ---- fetch ----
                let block = op.pc & block_mask;
                if cur_block != Some(block) {
                    fetch_cycle += 1;
                    if let Some(resume) = pending_resume.take() {
                        fetch_cycle = fetch_cycle.max(resume);
                    }
                    let outcome = self.icache.fetch(op.pc, next_kind);
                    let mut stall = outcome.latency.saturating_sub(1);
                    if outcome.is_miss() {
                        let (below, _) = self.hierarchy.access(op.pc, AccessKind::Read);
                        stall += below;
                        activity.l2_accesses += 1;
                    }
                    fetch_cycle += stall;
                    slots_left = self.config.fetch_width;
                    cur_block = Some(block);
                    next_kind = FetchKind::Sequential { prev_pc: op.pc };
                } else if slots_left == 0 {
                    fetch_cycle += 1;
                    slots_left = self.config.fetch_width;
                }
                slots_left -= 1;
                let fetched_at = fetch_cycle;

                // ---- ready / issue ----
                let mut ready = fetched_at + self.config.dispatch_latency;
                for dep in op.src_deps {
                    let dep = dep as usize;
                    if dep > 0 && dep <= completes.len() {
                        ready = ready.max(completes[completes.len() - dep]);
                    }
                }
                let issue = reserve_slot(&mut issue_used, ready, self.config.issue_width as u32);

                // ---- execute ----
                let latency = match op.kind {
                    OpKind::IntAlu => {
                        activity.int_ops += 1;
                        self.config.int_latency
                    }
                    OpKind::FpAlu => {
                        activity.fp_ops += 1;
                        self.config.fp_latency
                    }
                    OpKind::Load { addr, approx_addr } => {
                        activity.loads += 1;
                        let out = self.dcache.load_kernel::<K>(op.pc, addr, approx_addr);
                        let mut lat = out.latency;
                        if out.is_miss() {
                            let (below, _) = self.hierarchy.access(addr, AccessKind::Read);
                            lat += below;
                            activity.l2_accesses += 1;
                        }
                        lat
                    }
                    OpKind::Store { addr } => {
                        activity.stores += 1;
                        let out = self.dcache.store(op.pc, addr);
                        if out.is_miss() {
                            // The store's refill proceeds off the critical path,
                            // but it still consumes L2 bandwidth/energy.
                            let _ = self.hierarchy.access(addr, AccessKind::Write);
                            activity.l2_accesses += 1;
                        }
                        out.latency
                    }
                    OpKind::Branch { .. } => {
                        activity.branches += 1;
                        self.config.int_latency
                    }
                };
                let complete = issue + latency;
                completes.push_back(complete);
                if completes.len() > MAX_DEP_WINDOW {
                    completes.pop_front();
                }

                // ---- branch resolution and next-fetch steering ----
                if let OpKind::Branch {
                    taken,
                    target,
                    class,
                } = op.kind
                {
                    let predicted = self
                        .branch_predictor
                        .update(op.pc, BranchOutcome::from_taken(taken));
                    let direction_mispredicted = match class {
                        BranchClass::Conditional => predicted.is_taken() != taken,
                        // Calls, returns and jumps are unconditionally taken.
                        BranchClass::Call | BranchClass::Return | BranchClass::Jump => false,
                    };
                    if direction_mispredicted {
                        // Fetch of the correct path waits for the branch to
                        // resolve in the pipeline.
                        pending_resume = Some(complete + 1 + self.config.mispredict_extra_penalty);
                        cur_block = None;
                        next_kind = FetchKind::Redirect;
                    } else if taken {
                        cur_block = None;
                        next_kind = match class {
                            BranchClass::Call => FetchKind::Call {
                                branch_pc: op.pc,
                                return_pc: op.pc + 4,
                            },
                            BranchClass::Return => FetchKind::Return,
                            _ => FetchKind::TakenBranch { branch_pc: op.pc },
                        };
                        // A predicted-taken branch whose target is not in the BTB
                        // costs a short fetch bubble while decode produces it.
                        if class != BranchClass::Return
                            && self.icache.predicted_target(op.pc) != Some(target)
                        {
                            pending_resume = Some(fetched_at + 1 + self.config.btb_miss_penalty);
                        }
                    } else {
                        next_kind = FetchKind::NotTakenBranch { prev_pc: op.pc };
                    }
                }

                // ---- commit ----
                let commit_ready = complete.max(prev_commit);
                let commit = reserve_slot(
                    &mut commit_used,
                    commit_ready,
                    self.config.commit_width as u32,
                );
                prev_commit = commit;
                last_commit = last_commit.max(commit);
                rob.push_back(commit);
                if is_mem {
                    lsq.push_back(commit);
                }
                activity.instructions += 1;

                // ---- keep the bandwidth maps bounded ----
                ops_since_cleanup += 1;
                if ops_since_cleanup >= 1 << 16 {
                    ops_since_cleanup = 0;
                    let floor = fetched_at.saturating_sub(4 * self.config.rob_entries as u64);
                    issue_used.retain(|&c, _| c >= floor);
                    commit_used.retain(|&c, _| c >= floor);
                }
            }
        }

        activity.cycles = last_commit.max(1);
        SimResult::collect(
            activity,
            &self.dcache,
            &self.icache,
            &self.hierarchy,
            &self.branch_predictor,
        )
    }
}

/// Finds the first cycle at or after `start` with a free slot (fewer than
/// `width` reservations) and reserves it.
fn reserve_slot(used: &mut CycleMap, start: u64, width: u32) -> u64 {
    let mut cycle = start;
    loop {
        let entry = used.entry(cycle).or_insert(0);
        if *entry < width {
            *entry += 1;
            return cycle;
        }
        cycle += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_cache::{DCachePolicy, ICachePolicy, L1Config};
    use wp_mem::HierarchyConfig;
    use wp_workloads::{Benchmark, TraceConfig, TraceGenerator};

    fn processor(dpolicy: DCachePolicy, ipolicy: ICachePolicy) -> Processor {
        Processor::new(
            CpuConfig::default(),
            DCacheController::new(L1Config::paper_dcache(), dpolicy).expect("valid"),
            ICacheController::new(L1Config::paper_icache(), ipolicy).expect("valid"),
            MemoryHierarchy::new(HierarchyConfig::default()).expect("valid"),
            HybridBranchPredictor::default(),
        )
    }

    fn run(benchmark: Benchmark, dpolicy: DCachePolicy, ops: usize) -> SimResult {
        let mut cpu = processor(dpolicy, ICachePolicy::WayPredict);
        cpu.run(TraceGenerator::new(
            TraceConfig::new(benchmark).with_ops(ops),
        ))
    }

    #[test]
    fn reserve_slot_respects_bandwidth() {
        let mut used = CycleMap::default();
        assert_eq!(reserve_slot(&mut used, 10, 2), 10);
        assert_eq!(reserve_slot(&mut used, 10, 2), 10);
        assert_eq!(reserve_slot(&mut used, 10, 2), 11);
        assert_eq!(reserve_slot(&mut used, 5, 2), 5);
    }

    #[test]
    fn empty_trace_produces_empty_result() {
        let mut cpu = processor(DCachePolicy::Parallel, ICachePolicy::Parallel);
        let result = cpu.run(Vec::new());
        assert_eq!(result.activity.instructions, 0);
        assert_eq!(result.cycles, 1);
    }

    #[test]
    fn ipc_is_plausible_for_an_8_wide_core() {
        let result = run(Benchmark::Gcc, DCachePolicy::Parallel, 60_000);
        let ipc = result.activity.ipc();
        assert!(ipc > 0.5 && ipc < 8.0, "ipc {ipc}");
    }

    #[test]
    fn instruction_counts_match_trace_length() {
        let result = run(Benchmark::Perl, DCachePolicy::Parallel, 30_000);
        assert_eq!(result.activity.instructions, 30_000);
        let a = &result.activity;
        assert_eq!(
            a.int_ops + a.fp_ops + a.loads + a.stores + a.branches,
            a.instructions
        );
    }

    #[test]
    fn sequential_dcache_is_slower_than_parallel() {
        // Figure 4: a 2-cycle sequential d-cache costs real performance.
        let parallel = run(Benchmark::Gcc, DCachePolicy::Parallel, 60_000);
        let sequential = run(Benchmark::Gcc, DCachePolicy::Sequential, 60_000);
        assert!(
            sequential.cycles > parallel.cycles,
            "sequential {} vs parallel {}",
            sequential.cycles,
            parallel.cycles
        );
    }

    #[test]
    fn seldm_waypredict_is_close_to_parallel_performance() {
        // The headline performance claim: < 3 % degradation for the
        // combined technique (checked loosely here on a short trace).
        let parallel = run(Benchmark::Gcc, DCachePolicy::Parallel, 60_000);
        let seldm = run(Benchmark::Gcc, DCachePolicy::SelDmWayPredict, 60_000);
        let degradation = seldm.cycles as f64 / parallel.cycles as f64 - 1.0;
        assert!(
            degradation < 0.08,
            "selective-DM + way-prediction degraded {degradation}"
        );
        // And it must not be faster than the 1-cycle parallel baseline by
        // more than noise.
        assert!(degradation > -0.02);
    }

    #[test]
    fn memory_bound_benchmark_has_lower_ipc() {
        let swim = run(Benchmark::Swim, DCachePolicy::Parallel, 40_000);
        let troff = run(Benchmark::Troff, DCachePolicy::Parallel, 40_000);
        assert!(
            swim.activity.ipc() < troff.activity.ipc(),
            "swim {} vs troff {}",
            swim.activity.ipc(),
            troff.activity.ipc()
        );
    }

    #[test]
    fn branch_predictor_reaches_reasonable_accuracy() {
        let result = run(Benchmark::M88ksim, DCachePolicy::Parallel, 60_000);
        assert!(
            result.branch_accuracy > 0.80,
            "branch accuracy {}",
            result.branch_accuracy
        );
    }

    #[test]
    fn dcache_sees_loads_and_stores() {
        let result = run(Benchmark::Vortex, DCachePolicy::SelDmWayPredict, 40_000);
        assert_eq!(result.dcache.loads, result.activity.loads);
        assert_eq!(result.dcache.stores, result.activity.stores);
        assert!(result.dcache.total_energy() > 0.0);
        assert!(result.icache.total_energy() > 0.0);
    }

    #[test]
    fn l2_accesses_are_counted_for_both_caches() {
        let result = run(Benchmark::Swim, DCachePolicy::Parallel, 40_000);
        assert!(result.activity.l2_accesses > 0);
        assert!(
            result.activity.l2_accesses >= result.dcache.misses().min(result.activity.instructions)
        );
    }
}
