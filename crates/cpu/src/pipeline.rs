//! The trace-driven out-of-order scheduling model.
//!
//! [`Processor::run`] walks the committed-path micro-op trace once, in
//! order, and computes for every op the cycle it is fetched, issued,
//! completed, and committed, subject to:
//!
//! * fetch bandwidth (one i-cache block per cycle, `fetch_width`
//!   instructions per cycle), i-cache hit/miss latency, taken-branch fetch
//!   redirects, BTB-miss bubbles, and branch-misprediction resolution
//!   stalls;
//! * register dependences (the trace records producer distances);
//! * issue and commit bandwidth, and finite reorder-buffer and
//!   load/store-queue occupancy;
//! * d-cache access latency under the configured policy, plus L2/memory
//!   latency on misses.
//!
//! This is the standard "interval / dependence-chain" approximation of an
//! out-of-order core: it does not simulate wrong-path execution, but it
//! captures the property the paper's performance results rest on — an
//! out-of-order window absorbs an occasional extra cycle on a load, but not
//! an extra cycle on every load.
//!
//! The per-op scheduling step lives in [`SchedState::step_op`], shared
//! between the scalar path (one config per pass over the stream) and the
//! config-parallel lane path ([`crate::lanes`], N configs per pass). The
//! d-side access is abstracted behind the [`DSide`] trait so both paths run
//! the *same* step code: the scalar side computes the outcome on demand
//! through the monomorphized kernel, the lane side hands in the outcome the
//! vectorized lane d-cache precomputed for the block.

use std::marker::PhantomData;

use serde::{Deserialize, Serialize};
use wp_cache::{
    ConfigError, DAccessOutcome, DCacheController, DCachePolicy, FetchKind, ICacheController,
    ICachePolicy, L1Config,
};
use wp_energy::ActivityCounts;
use wp_mem::{AccessKind, Addr, MemoryHierarchy};
use wp_predictors::{BranchOutcome, HybridBranchPredictor};
use wp_workloads::{BranchClass, IterBlockSource, MicroOp, OpBlockSource, OpBuffer, OpKind};

use crate::result::SimResult;

/// Microarchitectural parameters of the modelled core (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Instructions fetched per cycle (Table 1: 8).
    pub fetch_width: usize,
    /// Instructions issued per cycle (Table 1: 8).
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries (Table 1: 64).
    pub rob_entries: usize,
    /// Load/store-queue entries (Table 1: 32).
    pub lsq_entries: usize,
    /// Cycles between fetch and earliest issue (decode/rename/dispatch
    /// depth).
    pub dispatch_latency: u64,
    /// Extra cycles, beyond waiting for the branch to execute, before fetch
    /// resumes after a mispredicted branch.
    pub mispredict_extra_penalty: u64,
    /// Fetch-bubble cycles when a predicted-taken branch misses in the BTB
    /// and the target must come from decode.
    pub btb_miss_penalty: u64,
    /// Integer ALU latency.
    pub int_latency: u64,
    /// Floating-point operation latency.
    pub fp_latency: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            fetch_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_entries: 64,
            lsq_entries: 32,
            dispatch_latency: 2,
            mispredict_extra_penalty: 2,
            btb_miss_penalty: 1,
            int_latency: 1,
            fp_latency: 3,
        }
    }
}

/// The processor: an out-of-order core timing model bound to an i-cache, a
/// d-cache, the memory hierarchy behind them, and a branch predictor.
///
/// # Example
///
/// ```
/// use wp_cache::{DCacheController, DCachePolicy, ICacheController, ICachePolicy, L1Config};
/// use wp_cpu::{CpuConfig, Processor};
/// use wp_mem::{HierarchyConfig, MemoryHierarchy};
/// use wp_predictors::HybridBranchPredictor;
/// use wp_workloads::{Benchmark, TraceConfig, TraceGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dcache = DCacheController::new(L1Config::paper_dcache(), DCachePolicy::SelDmWayPredict)?;
/// let icache = ICacheController::new(L1Config::paper_icache(), ICachePolicy::WayPredict)?;
/// let hierarchy = MemoryHierarchy::new(HierarchyConfig::default())?;
/// let mut cpu = Processor::new(
///     CpuConfig::default(),
///     dcache,
///     icache,
///     hierarchy,
///     HybridBranchPredictor::default(),
/// );
/// let trace = TraceGenerator::new(TraceConfig::new(Benchmark::Gcc).with_ops(20_000));
/// let result = cpu.run(trace);
/// assert!(result.cycles > 0);
/// assert!(result.activity.ipc() > 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Processor {
    config: CpuConfig,
    dcache: DCacheController,
    icache: ICacheController,
    hierarchy: MemoryHierarchy,
    branch_predictor: HybridBranchPredictor,
}

/// Maximum register-dependence distance honoured by the scheduler (matches
/// the trace generator's limit and the ROB size). Must be a power of two:
/// the completion ring indexes with `& (MAX_DEP_WINDOW - 1)`.
const MAX_DEP_WINDOW: usize = 64;

/// Per-cycle issue-slot reservations over a dense sliding window.
///
/// Every issue probe starts at `fetched_at + dispatch_latency` or later,
/// and `fetched_at` never decreases, so slots behind the current fetch
/// cycle can never be probed again: the window's base chases the fetch
/// cycle and dead slots are retired off the front.
///
/// The slots live in a power-of-two ring indexed by `cycle & mask` under
/// the invariant that every slot outside `[base, head)` holds zero:
/// advancing the base zeroes exactly the cycles it retires, and a probe
/// beyond `head` claims an untouched (hence free) slot without scanning.
/// The ring replaces the `VecDeque` the scheduler used to carry, whose
/// per-op pop/resize bookkeeping was the single largest line in the per-op
/// profile (~12 of ~51 ns).
#[derive(Debug)]
struct IssueWindow {
    counts: Box<[u8]>,
    /// Lowest probe-able cycle; slots below are retired.
    base: u64,
    /// One past the highest reserved cycle; slots at or beyond hold zero.
    head: u64,
}

impl Default for IssueWindow {
    /// A 256-cycle window — past a full memory round-trip, so growth is
    /// exceptional.
    fn default() -> Self {
        Self {
            counts: vec![0; 256].into_boxed_slice(),
            base: 0,
            head: 0,
        }
    }
}

impl IssueWindow {
    /// Drops all slots below `floor`. Callers guarantee no future probe
    /// starts below it.
    #[inline]
    fn advance_to(&mut self, floor: u64) {
        if floor <= self.base {
            return;
        }
        let mask = self.counts.len() as u64 - 1;
        let clear_to = floor.min(self.head);
        let mut cycle = self.base;
        while cycle < clear_to {
            self.counts[(cycle & mask) as usize] = 0;
            cycle += 1;
        }
        self.base = floor;
        self.head = self.head.max(floor);
    }

    /// Finds the first cycle at or after `start` with a free slot (fewer
    /// than `width` reservations) and reserves it.
    #[inline]
    fn reserve(&mut self, start: u64, width: u8) -> u64 {
        debug_assert!(start >= self.base);
        let mut cycle = start;
        loop {
            if cycle - self.base >= self.counts.len() as u64 {
                self.grow();
            }
            let slot = (cycle & (self.counts.len() as u64 - 1)) as usize;
            if cycle >= self.head {
                // Untouched slot: zero by invariant, take it outright.
                debug_assert_eq!(self.counts[slot], 0);
                self.counts[slot] = 1;
                self.head = cycle + 1;
                return cycle;
            }
            if self.counts[slot] < width {
                self.counts[slot] += 1;
                return cycle;
            }
            cycle += 1;
        }
    }

    /// Doubles the ring when a probe lands beyond it (a ready time pushed
    /// past the window by an extreme latency chain), re-placing the live
    /// `[base, head)` span under the new mask.
    #[cold]
    fn grow(&mut self) {
        let doubled = vec![0; self.counts.len() * 2].into_boxed_slice();
        let old = std::mem::replace(&mut self.counts, doubled);
        let old_mask = old.len() as u64 - 1;
        let new_mask = self.counts.len() as u64 - 1;
        let mut cycle = self.base;
        while cycle < self.head {
            self.counts[(cycle & new_mask) as usize] = old[(cycle & old_mask) as usize];
            cycle += 1;
        }
    }
}

/// A fixed-capacity ring of in-flight commit cycles, modelling ROB and LSQ
/// occupancy. The scheduler pops the oldest entry exactly when the
/// structure is full and pushes one entry per op, so the ring never
/// reallocates and the hot path is two array index operations.
#[derive(Debug)]
struct OccupancyRing {
    slots: Box<[u64]>,
    /// Index of the oldest in-flight entry.
    head: usize,
    filled: usize,
}

impl OccupancyRing {
    fn new(capacity: usize) -> Self {
        Self {
            slots: vec![0; capacity.max(1)].into_boxed_slice(),
            head: 0,
            filled: 0,
        }
    }

    /// If the structure is at capacity, consumes and returns the oldest
    /// in-flight commit cycle — the op being scheduled must wait for that
    /// retirement to free its entry.
    #[inline]
    fn pop_if_full(&mut self) -> Option<u64> {
        if self.filled < self.slots.len() {
            return None;
        }
        let oldest = self.slots[self.head];
        self.head += 1;
        if self.head == self.slots.len() {
            self.head = 0;
        }
        self.filled -= 1;
        Some(oldest)
    }

    /// Records an op's commit cycle.
    #[inline]
    fn push(&mut self, commit: u64) {
        let mut tail = self.head + self.filled;
        if tail >= self.slots.len() {
            tail -= self.slots.len();
        }
        self.slots[tail] = commit;
        self.filled += 1;
    }
}

/// The slice of a d-access the scheduler consumes: the L1 service latency
/// and whether the hierarchy must service a miss. Everything else in a
/// [`DAccessOutcome`] — energy, access class, way accounting — is
/// accumulated inside the d-cache itself, so the transit between the
/// d-side and the scheduler stays 8 bytes (the lane path buffers one of
/// these per memory op per distinct d-config).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct DServiced {
    /// L1 latency in cycles (fits easily: probe latencies are small
    /// configuration constants; miss penalties are added by the caller
    /// from the hierarchy).
    pub(crate) latency: u32,
    /// True if the access missed in the L1 and the hierarchy must be
    /// consulted.
    pub(crate) miss: bool,
}

impl From<DAccessOutcome> for DServiced {
    #[inline(always)]
    fn from(out: DAccessOutcome) -> Self {
        debug_assert!(out.latency <= u64::from(u32::MAX));
        Self {
            latency: out.latency as u32,
            miss: !out.hit,
        }
    }
}

/// The d-side of one scheduling step: given a load or store, produce its
/// L1 service terms (hit/miss, latency). [`SchedState::step_op`] is
/// generic over this so the scalar path (compute through the monomorphized
/// controller kernel) and the lane path (hand back the outcome the
/// vectorized lane d-cache already computed for this op) share one step
/// implementation — which is what keeps them bit-identical by
/// construction.
pub(crate) trait DSide {
    /// The outcome of this op's load.
    fn load(&mut self, pc: Addr, addr: Addr, approx_addr: Addr) -> DServiced;
    /// The outcome of this op's store.
    fn store(&mut self, pc: Addr, addr: Addr) -> DServiced;
}

/// Scalar d-side: every access goes through the controller with the policy
/// monomorphized in.
struct KernelDSide<'a, K> {
    dcache: &'a mut DCacheController,
    _kernel: PhantomData<K>,
}

impl<K: wp_cache::DPolicyKernel> DSide for KernelDSide<'_, K> {
    #[inline(always)]
    fn load(&mut self, pc: Addr, addr: Addr, approx_addr: Addr) -> DServiced {
        self.dcache.load_kernel::<K>(pc, addr, approx_addr).into()
    }

    #[inline(always)]
    fn store(&mut self, pc: Addr, addr: Addr) -> DServiced {
        self.dcache.store(pc, addr).into()
    }
}

/// Lane d-side: this lane's d-outcomes for the block were precomputed by
/// the vectorized lane d-cache, compacted to memory ops in program order;
/// each load/store hands back the next one. Driving consumption off the
/// scheduler's own load/store dispatch keeps the per-lane pass free of a
/// second `op.kind` decode.
pub(crate) struct ReadyDSide<'a> {
    /// The lane's outcome row, one entry per load/store in the block.
    pub(crate) outcomes: &'a [DServiced],
    /// Index of the next unconsumed outcome.
    pub(crate) cursor: usize,
}

impl DSide for ReadyDSide<'_> {
    #[inline(always)]
    fn load(&mut self, _pc: Addr, _addr: Addr, _approx_addr: Addr) -> DServiced {
        let out = self.outcomes[self.cursor];
        self.cursor += 1;
        out
    }

    #[inline(always)]
    fn store(&mut self, _pc: Addr, _addr: Addr) -> DServiced {
        let out = self.outcomes[self.cursor];
        self.cursor += 1;
        out
    }
}

/// The mutable scheduling state of one simulated core: fetch steering,
/// bandwidth reservations, the dependence/completion ring, and ROB/LSQ
/// occupancy. One instance per config; the lane runner keeps an array of
/// these and steps each through the same op.
#[derive(Debug)]
pub(crate) struct SchedState {
    fetch_cycle: u64,
    slots_left: usize,
    cur_block: Option<u64>,
    next_kind: FetchKind,
    pending_resume: Option<u64>,
    issue: IssueWindow,
    /// Commit probes are globally non-decreasing (`commit_ready =
    /// max(complete, prev_commit)` and reservations land at or after the
    /// probe), so the whole commit bandwidth map collapses to the last
    /// commit cycle and how many ops committed there.
    prev_commit: u64,
    commit_used: u32,
    last_commit: u64,
    /// Completion cycles of the last [`MAX_DEP_WINDOW`] ops, as a ring:
    /// the op at dependence distance `dep` completed at
    /// `completes[(pushed - dep) & (MAX_DEP_WINDOW - 1)]`.
    completes: [u64; MAX_DEP_WINDOW],
    pushed: usize,
    rob: OccupancyRing,
    lsq: OccupancyRing,
    pub(crate) activity: ActivityCounts,
}

impl SchedState {
    pub(crate) fn new(config: &CpuConfig) -> Self {
        Self {
            fetch_cycle: 0,
            slots_left: 0,
            cur_block: None,
            next_kind: FetchKind::Redirect,
            pending_resume: None,
            issue: IssueWindow::default(),
            prev_commit: 0,
            commit_used: 0,
            last_commit: 0,
            completes: [0; MAX_DEP_WINDOW],
            pushed: 0,
            rob: OccupancyRing::new(config.rob_entries),
            lsq: OccupancyRing::new(config.lsq_entries),
            activity: ActivityCounts::default(),
        }
    }

    /// Schedules one committed-path op: structural gating, fetch, issue,
    /// execute (d-side through `dside`), branch steering, commit.
    ///
    /// `predicted_taken` is the branch predictor's direction for this op
    /// (meaningful only for branches); the caller updates the predictor —
    /// the update sequence depends only on the op stream, so lane batches
    /// share one predictor across configs and update it once per op.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step_op<D: DSide>(
        &mut self,
        config: &CpuConfig,
        block_mask: u64,
        op: &MicroOp,
        predicted_taken: bool,
        dside: &mut D,
        icache: &mut ICacheController,
        hierarchy: &mut MemoryHierarchy,
    ) {
        // ---- structural gating: ROB and LSQ occupancy ----
        if let Some(oldest) = self.rob.pop_if_full() {
            if oldest > self.fetch_cycle {
                self.fetch_cycle = oldest;
                self.cur_block = None;
            }
        }
        let is_mem = op.kind.is_mem();
        if is_mem {
            if let Some(oldest) = self.lsq.pop_if_full() {
                if oldest > self.fetch_cycle {
                    self.fetch_cycle = oldest;
                    self.cur_block = None;
                }
            }
        }

        // ---- fetch ----
        let block = op.pc & block_mask;
        if self.cur_block != Some(block) {
            self.fetch_cycle += 1;
            if let Some(resume) = self.pending_resume.take() {
                self.fetch_cycle = self.fetch_cycle.max(resume);
            }
            let outcome = icache.fetch(op.pc, self.next_kind);
            let mut stall = outcome.latency.saturating_sub(1);
            if outcome.is_miss() {
                let (below, _) = hierarchy.access(op.pc, AccessKind::Read);
                stall += below;
                self.activity.l2_accesses += 1;
            }
            self.fetch_cycle += stall;
            self.slots_left = config.fetch_width;
            self.cur_block = Some(block);
            self.next_kind = FetchKind::Sequential { prev_pc: op.pc };
        } else if self.slots_left == 0 {
            self.fetch_cycle += 1;
            self.slots_left = config.fetch_width;
        }
        self.slots_left -= 1;
        let fetched_at = self.fetch_cycle;

        // ---- ready / issue ----
        // No probe from this or any later op can start below
        // `fetched_at + dispatch_latency` (fetch never goes backwards), so
        // the issue window can discard everything behind it first.
        let mut ready = fetched_at + config.dispatch_latency;
        self.issue.advance_to(ready);
        let visible = self.pushed.min(MAX_DEP_WINDOW);
        for dep in op.src_deps {
            let dep = dep as usize;
            if dep > 0 && dep <= visible {
                ready = ready.max(self.completes[(self.pushed - dep) & (MAX_DEP_WINDOW - 1)]);
            }
        }
        let issue = self.issue.reserve(ready, config.issue_width as u8);

        // ---- execute ----
        let latency = match op.kind {
            OpKind::IntAlu => {
                self.activity.int_ops += 1;
                config.int_latency
            }
            OpKind::FpAlu => {
                self.activity.fp_ops += 1;
                config.fp_latency
            }
            OpKind::Load { addr, approx_addr } => {
                self.activity.loads += 1;
                let out = dside.load(op.pc, addr, approx_addr);
                let mut lat = u64::from(out.latency);
                if out.miss {
                    let (below, _) = hierarchy.access(addr, AccessKind::Read);
                    lat += below;
                    self.activity.l2_accesses += 1;
                }
                lat
            }
            OpKind::Store { addr } => {
                self.activity.stores += 1;
                let out = dside.store(op.pc, addr);
                if out.miss {
                    // The store's refill proceeds off the critical path,
                    // but it still consumes L2 bandwidth/energy.
                    let _ = hierarchy.access(addr, AccessKind::Write);
                    self.activity.l2_accesses += 1;
                }
                u64::from(out.latency)
            }
            OpKind::Branch { .. } => {
                self.activity.branches += 1;
                config.int_latency
            }
        };
        let complete = issue + latency;
        self.completes[self.pushed & (MAX_DEP_WINDOW - 1)] = complete;
        self.pushed += 1;

        // ---- branch resolution and next-fetch steering ----
        if let OpKind::Branch {
            taken,
            target,
            class,
        } = op.kind
        {
            let direction_mispredicted = match class {
                BranchClass::Conditional => predicted_taken != taken,
                // Calls, returns and jumps are unconditionally taken.
                BranchClass::Call | BranchClass::Return | BranchClass::Jump => false,
            };
            if direction_mispredicted {
                // Fetch of the correct path waits for the branch to
                // resolve in the pipeline.
                self.pending_resume = Some(complete + 1 + config.mispredict_extra_penalty);
                self.cur_block = None;
                self.next_kind = FetchKind::Redirect;
            } else if taken {
                self.cur_block = None;
                self.next_kind = match class {
                    BranchClass::Call => FetchKind::Call {
                        branch_pc: op.pc,
                        return_pc: op.pc + 4,
                    },
                    BranchClass::Return => FetchKind::Return,
                    _ => FetchKind::TakenBranch { branch_pc: op.pc },
                };
                // A predicted-taken branch whose target is not in the BTB
                // costs a short fetch bubble while decode produces it.
                if class != BranchClass::Return && icache.predicted_target(op.pc) != Some(target) {
                    self.pending_resume = Some(fetched_at + 1 + config.btb_miss_penalty);
                }
            } else {
                self.next_kind = FetchKind::NotTakenBranch { prev_pc: op.pc };
            }
        }

        // ---- commit ----
        let commit_ready = complete.max(self.prev_commit);
        let commit = if commit_ready > self.prev_commit {
            self.commit_used = 1;
            commit_ready
        } else if self.commit_used < config.commit_width as u32 {
            self.commit_used += 1;
            self.prev_commit
        } else {
            self.commit_used = 1;
            self.prev_commit + 1
        };
        self.prev_commit = commit;
        self.last_commit = self.last_commit.max(commit);
        self.rob.push(commit);
        if is_mem {
            self.lsq.push(commit);
        }
        self.activity.instructions += 1;
    }

    /// Finalizes the run: total cycles is the last commit (1 for an empty
    /// trace) and the accumulated activity is handed out.
    pub(crate) fn finish(mut self) -> ActivityCounts {
        self.activity.cycles = self.last_commit.max(1);
        self.activity
    }
}

impl Processor {
    /// Assembles a processor from its parts.
    pub fn new(
        config: CpuConfig,
        dcache: DCacheController,
        icache: ICacheController,
        hierarchy: MemoryHierarchy,
        branch_predictor: HybridBranchPredictor,
    ) -> Self {
        Self {
            config,
            dcache,
            icache,
            hierarchy,
            branch_predictor,
        }
    }

    /// Builds a processor over the unified L1 controller API: both caches
    /// are constructed from their `(configuration, policy)` pairs on the
    /// shared [`wp_cache::AccessCore`], with the Table 1 memory hierarchy
    /// and branch predictor behind them.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if either cache configuration is
    /// inconsistent.
    pub fn with_l1(
        config: CpuConfig,
        l1d: L1Config,
        dpolicy: DCachePolicy,
        l1i: L1Config,
        ipolicy: ICachePolicy,
    ) -> Result<Self, ConfigError> {
        Ok(Self::new(
            config,
            DCacheController::new(l1d, dpolicy)?,
            ICacheController::new(l1i, ipolicy)?,
            MemoryHierarchy::new(wp_mem::HierarchyConfig::default())
                .expect("the Table 1 hierarchy configuration is valid"),
            HybridBranchPredictor::default(),
        ))
    }

    /// The core configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// The d-cache controller (for inspecting statistics after a run).
    pub fn dcache(&self) -> &DCacheController {
        &self.dcache
    }

    /// The i-cache controller.
    pub fn icache(&self) -> &ICacheController {
        &self.icache
    }

    /// The branch predictor.
    pub fn branch_predictor(&self) -> &HybridBranchPredictor {
        &self.branch_predictor
    }

    /// Runs the trace to completion and returns the timing, activity, and
    /// cache statistics.
    ///
    /// This is a convenience wrapper over [`Processor::run_blocks`]: the
    /// iterator is consumed through a block buffer, so the two entry points
    /// produce bit-identical results for the same op sequence.
    pub fn run(&mut self, trace: impl IntoIterator<Item = MicroOp>) -> SimResult {
        self.run_blocks(&mut IterBlockSource(trace.into_iter()))
    }

    /// Runs a block-producing op source to completion — the throughput
    /// entry point: the source refills a reusable [`OpBuffer`] and the
    /// scheduling loop walks plain slices, resolving the workload kind once
    /// per block instead of once per op.
    ///
    /// The d-cache policy is resolved *once per run*, not once per access:
    /// this dispatches to a monomorphized instantiation of the scheduling
    /// loop per [`DCachePolicy`], inside which every load goes through
    /// [`DCacheController::load_kernel`] with the policy as a compile-time
    /// constant.
    pub fn run_blocks(&mut self, source: &mut impl OpBlockSource) -> SimResult {
        wp_cache::with_dpolicy_kernel!(self.dcache.policy(), K => {
            self.run_blocks_kernel::<K>(source)
        })
    }

    /// The scheduling loop, monomorphized for one d-cache policy.
    fn run_blocks_kernel<K: wp_cache::DPolicyKernel>(
        &mut self,
        source: &mut impl OpBlockSource,
    ) -> SimResult {
        let block_mask = !(self.dcache.config().block_bytes as u64 - 1);
        let mut sched = SchedState::new(&self.config);
        let mut dside = KernelDSide::<K> {
            dcache: &mut self.dcache,
            _kernel: PhantomData,
        };

        let mut buf = OpBuffer::new();
        while source.fill(&mut buf) > 0 {
            for op in buf.ops() {
                let predicted_taken = if let OpKind::Branch { taken, .. } = op.kind {
                    self.branch_predictor
                        .update(op.pc, BranchOutcome::from_taken(taken))
                        .is_taken()
                } else {
                    false
                };
                sched.step_op(
                    &self.config,
                    block_mask,
                    op,
                    predicted_taken,
                    &mut dside,
                    &mut self.icache,
                    &mut self.hierarchy,
                );
            }
        }

        SimResult::collect(
            sched.finish(),
            &self.dcache,
            &self.icache,
            &self.hierarchy,
            &self.branch_predictor,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_cache::{DCachePolicy, ICachePolicy, L1Config};
    use wp_mem::HierarchyConfig;
    use wp_workloads::{Benchmark, TraceConfig, TraceGenerator};

    fn processor(dpolicy: DCachePolicy, ipolicy: ICachePolicy) -> Processor {
        Processor::new(
            CpuConfig::default(),
            DCacheController::new(L1Config::paper_dcache(), dpolicy).expect("valid"),
            ICacheController::new(L1Config::paper_icache(), ipolicy).expect("valid"),
            MemoryHierarchy::new(HierarchyConfig::default()).expect("valid"),
            HybridBranchPredictor::default(),
        )
    }

    fn run(benchmark: Benchmark, dpolicy: DCachePolicy, ops: usize) -> SimResult {
        let mut cpu = processor(dpolicy, ICachePolicy::WayPredict);
        cpu.run(TraceGenerator::new(
            TraceConfig::new(benchmark).with_ops(ops),
        ))
    }

    #[test]
    fn issue_window_respects_bandwidth() {
        let mut win = IssueWindow::default();
        assert_eq!(win.reserve(10, 2), 10);
        assert_eq!(win.reserve(10, 2), 10);
        assert_eq!(win.reserve(10, 2), 11);
        // Probes behind earlier reservations still find earlier free slots
        // until the base advances past them.
        assert_eq!(win.reserve(5, 2), 5);
        win.advance_to(11);
        assert_eq!(win.base, 11);
        // Cycle 11 already carries one of its two slots; the second still
        // fits, the third spills to 12.
        assert_eq!(win.reserve(11, 2), 11);
        assert_eq!(win.reserve(11, 2), 12);
    }

    #[test]
    fn issue_window_advance_over_an_empty_window_jumps() {
        let mut win = IssueWindow::default();
        win.advance_to(1_000_000);
        assert_eq!(win.base, 1_000_000);
        // The jump is O(1): nothing was reserved, so no slot needed
        // clearing — the window simply re-bases past the gap.
        assert_eq!(win.head, 1_000_000);
        assert_eq!(win.reserve(1_000_000, 1), 1_000_000);
    }

    #[test]
    fn empty_trace_produces_empty_result() {
        let mut cpu = processor(DCachePolicy::Parallel, ICachePolicy::Parallel);
        let result = cpu.run(Vec::new());
        assert_eq!(result.activity.instructions, 0);
        assert_eq!(result.cycles, 1);
    }

    #[test]
    fn ipc_is_plausible_for_an_8_wide_core() {
        let result = run(Benchmark::Gcc, DCachePolicy::Parallel, 60_000);
        let ipc = result.activity.ipc();
        assert!(ipc > 0.5 && ipc < 8.0, "ipc {ipc}");
    }

    #[test]
    fn instruction_counts_match_trace_length() {
        let result = run(Benchmark::Perl, DCachePolicy::Parallel, 30_000);
        assert_eq!(result.activity.instructions, 30_000);
        let a = &result.activity;
        assert_eq!(
            a.int_ops + a.fp_ops + a.loads + a.stores + a.branches,
            a.instructions
        );
    }

    #[test]
    fn sequential_dcache_is_slower_than_parallel() {
        // Figure 4: a 2-cycle sequential d-cache costs real performance.
        let parallel = run(Benchmark::Gcc, DCachePolicy::Parallel, 60_000);
        let sequential = run(Benchmark::Gcc, DCachePolicy::Sequential, 60_000);
        assert!(
            sequential.cycles > parallel.cycles,
            "sequential {} vs parallel {}",
            sequential.cycles,
            parallel.cycles
        );
    }

    #[test]
    fn seldm_waypredict_is_close_to_parallel_performance() {
        // The headline performance claim: < 3 % degradation for the
        // combined technique (checked loosely here on a short trace).
        let parallel = run(Benchmark::Gcc, DCachePolicy::Parallel, 60_000);
        let seldm = run(Benchmark::Gcc, DCachePolicy::SelDmWayPredict, 60_000);
        let degradation = seldm.cycles as f64 / parallel.cycles as f64 - 1.0;
        assert!(
            degradation < 0.08,
            "selective-DM + way-prediction degraded {degradation}"
        );
        // And it must not be faster than the 1-cycle parallel baseline by
        // more than noise.
        assert!(degradation > -0.02);
    }

    #[test]
    fn memory_bound_benchmark_has_lower_ipc() {
        let swim = run(Benchmark::Swim, DCachePolicy::Parallel, 40_000);
        let troff = run(Benchmark::Troff, DCachePolicy::Parallel, 40_000);
        assert!(
            swim.activity.ipc() < troff.activity.ipc(),
            "swim {} vs troff {}",
            swim.activity.ipc(),
            troff.activity.ipc()
        );
    }

    #[test]
    fn branch_predictor_reaches_reasonable_accuracy() {
        let result = run(Benchmark::M88ksim, DCachePolicy::Parallel, 60_000);
        assert!(
            result.branch_accuracy > 0.80,
            "branch accuracy {}",
            result.branch_accuracy
        );
    }

    #[test]
    fn dcache_sees_loads_and_stores() {
        let result = run(Benchmark::Vortex, DCachePolicy::SelDmWayPredict, 40_000);
        assert_eq!(result.dcache.loads, result.activity.loads);
        assert_eq!(result.dcache.stores, result.activity.stores);
        assert!(result.dcache.total_energy() > 0.0);
        assert!(result.icache.total_energy() > 0.0);
    }

    #[test]
    fn l2_accesses_are_counted_for_both_caches() {
        let result = run(Benchmark::Swim, DCachePolicy::Parallel, 40_000);
        assert!(result.activity.l2_accesses > 0);
        assert!(
            result.activity.l2_accesses >= result.dcache.misses().min(result.activity.instructions)
        );
    }
}
