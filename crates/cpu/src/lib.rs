//! Trace-driven out-of-order processor timing model for the wpsdm
//! reproduction of *Reducing Set-Associative Cache Energy via Way-Prediction
//! and Selective Direct-Mapping* (Powell et al., MICRO 2001).
//!
//! The paper measures performance with SimpleScalar's out-of-order model
//! (8-wide, 64-entry reorder buffer, 32-entry load/store queue, 2-level
//! hybrid branch predictor — Table 1) and energy with Wattch. This crate
//! provides an equivalent-fidelity substitute: a trace-driven scheduler that
//! models fetch bandwidth and i-cache behaviour, branch prediction and
//! misprediction redirects, register-dependence-limited issue, finite ROB
//! and LSQ occupancy, in-order commit, and d-cache/L2/memory latencies. Its
//! purpose is to capture what the paper's performance numbers rest on: an
//! out-of-order core absorbs an occasional extra cycle on a mispredicted
//! load but cannot hide an extra cycle on *every* load (sequential access).
//!
//! The model also counts per-unit activity for the Wattch-style
//! [`wp_energy::ProcessorEnergyModel`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;
mod result;

pub use pipeline::{CpuConfig, Processor};
pub use result::SimResult;
