//! Trace-driven out-of-order processor timing model for the wpsdm
//! reproduction of *Reducing Set-Associative Cache Energy via Way-Prediction
//! and Selective Direct-Mapping* (Powell et al., MICRO 2001).
//!
//! The paper measures performance with SimpleScalar's out-of-order model
//! (8-wide, 64-entry reorder buffer, 32-entry load/store queue, 2-level
//! hybrid branch predictor — Table 1) and energy with Wattch. This crate
//! provides an equivalent-fidelity substitute: a trace-driven scheduler that
//! models fetch bandwidth and i-cache behaviour, branch prediction and
//! misprediction redirects, register-dependence-limited issue, finite ROB
//! and LSQ occupancy, in-order commit, and d-cache/L2/memory latencies. Its
//! purpose is to capture what the paper's performance numbers rest on: an
//! out-of-order core absorbs an occasional extra cycle on a mispredicted
//! load but cannot hide an extra cycle on *every* load (sequential access).
//!
//! The model also counts per-unit activity for the Wattch-style
//! [`wp_energy::ProcessorEnergyModel`].
//!
//! [`Processor::run`] consumes any `IntoIterator<Item = MicroOp>`, so a
//! live [`wp_workloads::TraceGenerator`], a [`wp_workloads::Scenario`]
//! stream, and a recorded [`wp_workloads::TraceReplay`] streaming off disk
//! are all simulated identically — a capture→replay round trip reproduces
//! the live run's statistics bit for bit:
//!
//! ```
//! use std::io::Cursor;
//! use wp_cpu::{CpuConfig, Processor};
//! use wp_workloads::{Benchmark, TraceConfig, TraceGenerator};
//! use wp_workloads::{TraceReader, TraceWriter};
//! use wp_cache::{DCachePolicy, ICachePolicy, L1Config};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let build = || {
//!     Processor::with_l1(
//!         CpuConfig::default(),
//!         L1Config::paper_dcache(),
//!         DCachePolicy::SelDmWayPredict,
//!         L1Config::paper_icache(),
//!         ICachePolicy::WayPredict,
//!     )
//!     .expect("paper configuration is valid")
//! };
//! let config = TraceConfig::new(Benchmark::Li).with_ops(5_000);
//!
//! // Live generator.
//! let live = build().run(TraceGenerator::new(config));
//!
//! // Capture the same stream, then replay it from the recording.
//! let mut writer = TraceWriter::new(Cursor::new(Vec::new()), "li")?;
//! for op in TraceGenerator::new(config) {
//!     writer.write_op(&op)?;
//! }
//! let bytes = writer.finish()?.into_inner();
//! let replayed = build().run(
//!     TraceReader::new(Cursor::new(bytes))?.map(|op| op.expect("intact recording")),
//! );
//! assert_eq!(live, replayed);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lanes;
mod pipeline;
mod result;

pub use lanes::{run_lane_batch, LaneMember};
pub use pipeline::{CpuConfig, Processor};
pub use result::SimResult;
pub use wp_mem::MAX_LANES;
