//! Criterion benchmarks, one group per table / figure of the paper.
//!
//! Each group exercises the code path that regenerates the corresponding
//! artefact on a reduced trace length, so `cargo bench` both regenerates the
//! qualitative result and tracks the simulator's throughput. Run the
//! `wp-experiments` binaries for the full-length tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::io::Cursor;
use wp_cache::{DCacheController, DCachePolicy, ICachePolicy, L1Config};
use wp_cpu::Processor;
use wp_energy::{CacheEnergyModel, RelativeEnergyTable};
use wp_experiments::engine::{SimEngine, SimPlan, SimPoint};
use wp_experiments::runner::{simulate, MachineConfig, RunOptions};
use wp_experiments::table4;
use wp_workloads::{
    Benchmark, OpKind, TraceConfig, TraceGenerator, TraceReader, TraceWriter, WorkloadSpec,
};

/// Trace length used by the benchmark harness (small enough that every
/// group completes quickly, large enough to exercise warm caches).
const BENCH_OPS: usize = 12_000;

fn bench_options() -> RunOptions {
    RunOptions::default().with_ops(BENCH_OPS).with_seed(7)
}

fn machine(dpolicy: DCachePolicy, ipolicy: ICachePolicy) -> MachineConfig {
    MachineConfig::baseline()
        .with_dpolicy(dpolicy)
        .with_ipolicy(ipolicy)
}

/// Table 3: the analytic energy model itself.
fn table3_energy_model(c: &mut Criterion) {
    let geometry = L1Config::paper_dcache().geometry().expect("valid geometry");
    c.bench_function("table3_energy_model", |b| {
        b.iter(|| {
            let model = CacheEnergyModel::new(black_box(geometry));
            black_box(RelativeEnergyTable::from_model(&model))
        })
    });
}

/// Table 4: miss-rate measurement (direct-mapped vs 4-way) on one benchmark.
fn table4_miss_rates(c: &mut Criterion) {
    let options = bench_options();
    c.bench_function("table4_miss_rates_gcc", |b| {
        b.iter(|| {
            (
                black_box(table4::miss_rate_percent(Benchmark::Gcc, 1, &options)),
                black_box(table4::miss_rate_percent(Benchmark::Gcc, 4, &options)),
            )
        })
    });
}

/// Figure 4: sequential-access d-cache simulation.
fn fig4_sequential(c: &mut Criterion) {
    let options = bench_options();
    c.bench_function("fig4_sequential_gcc", |b| {
        b.iter(|| {
            black_box(simulate(
                Benchmark::Gcc,
                &machine(DCachePolicy::Sequential, ICachePolicy::Parallel),
                &options,
            ))
        })
    });
}

/// Figure 5: PC- and XOR-based way-prediction.
fn fig5_way_prediction(c: &mut Criterion) {
    let options = bench_options();
    let mut group = c.benchmark_group("fig5_way_prediction");
    for (name, policy) in [
        ("pc", DCachePolicy::WayPredictPc),
        ("xor", DCachePolicy::WayPredictXor),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(simulate(
                    Benchmark::Vortex,
                    &machine(policy, ICachePolicy::Parallel),
                    &options,
                ))
            })
        });
    }
    group.finish();
}

/// Figure 6 / Table 5: the selective-DM schemes.
fn fig6_selective_dm(c: &mut Criterion) {
    let options = bench_options();
    let mut group = c.benchmark_group("fig6_selective_dm");
    for (name, policy) in [
        ("seldm_parallel", DCachePolicy::SelDmParallel),
        ("seldm_waypred", DCachePolicy::SelDmWayPredict),
        ("seldm_sequential", DCachePolicy::SelDmSequential),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(simulate(
                    Benchmark::Gcc,
                    &machine(policy, ICachePolicy::Parallel),
                    &options,
                ))
            })
        });
    }
    group.finish();
}

/// Table 5 is the summary of Figures 4-6; benchmark the recommended
/// configuration end to end.
fn table5_summary(c: &mut Criterion) {
    let options = bench_options();
    c.bench_function("table5_seldm_waypred_li", |b| {
        b.iter(|| {
            black_box(simulate(
                Benchmark::Li,
                &machine(DCachePolicy::SelDmWayPredict, ICachePolicy::Parallel),
                &options,
            ))
        })
    });
}

/// Figure 7: cache-size sweep (32 KB point).
fn fig7_cache_size(c: &mut Criterion) {
    let options = bench_options();
    let machine = MachineConfig::baseline()
        .with_l1d(L1Config::paper_dcache().with_size(32 * 1024))
        .with_dpolicy(DCachePolicy::SelDmWayPredict);
    c.bench_function("fig7_32k_seldm_waypred", |b| {
        b.iter(|| black_box(simulate(Benchmark::Perl, &machine, &options)))
    });
}

/// Figure 8: associativity sweep (8-way point).
fn fig8_associativity(c: &mut Criterion) {
    let options = bench_options();
    let machine = MachineConfig::baseline()
        .with_l1d(L1Config::paper_dcache().with_associativity(8))
        .with_dpolicy(DCachePolicy::SelDmWayPredict);
    c.bench_function("fig8_8way_seldm_waypred", |b| {
        b.iter(|| black_box(simulate(Benchmark::Applu, &machine, &options)))
    });
}

/// Figure 9: the 2-cycle base-latency d-cache.
fn fig9_high_latency(c: &mut Criterion) {
    let options = bench_options();
    let machine = MachineConfig::baseline()
        .with_l1d(L1Config::paper_dcache().with_base_latency(2))
        .with_dpolicy(DCachePolicy::SelDmSequential);
    c.bench_function("fig9_2cycle_seldm_sequential", |b| {
        b.iter(|| black_box(simulate(Benchmark::Go, &machine, &options)))
    });
}

/// Figure 10: i-cache way-prediction.
fn fig10_icache(c: &mut Criterion) {
    let options = bench_options();
    c.bench_function("fig10_icache_waypred_m88ksim", |b| {
        b.iter(|| {
            black_box(simulate(
                Benchmark::M88ksim,
                &machine(DCachePolicy::Parallel, ICachePolicy::WayPredict),
                &options,
            ))
        })
    });
}

/// Figure 11: the combined configuration that produces the headline result.
fn fig11_processor(c: &mut Criterion) {
    let options = bench_options();
    c.bench_function("fig11_combined_troff", |b| {
        b.iter(|| {
            black_box(simulate(
                Benchmark::Troff,
                &machine(DCachePolicy::SelDmWayPredict, ICachePolicy::WayPredict),
                &options,
            ))
        })
    });
}

/// The engine: a deduplicated multi-figure plan, executed serially and in
/// parallel. The plan requests every point twice (as run_all's overlapping
/// figures do), so this also tracks the dedup overhead.
fn engine_sweep(c: &mut Criterion) {
    let options = bench_options();
    let mut plan = SimPlan::new();
    for _ in 0..2 {
        for policy in [
            DCachePolicy::Parallel,
            DCachePolicy::SelDmWayPredict,
            DCachePolicy::Sequential,
        ] {
            for benchmark in [Benchmark::Gcc, Benchmark::Li, Benchmark::Swim] {
                plan.add(SimPoint::new(
                    benchmark,
                    machine(policy, ICachePolicy::Parallel),
                    options,
                ));
            }
        }
    }
    let mut group = c.benchmark_group("engine_sweep");
    group.bench_function("serial", |b| {
        b.iter(|| black_box(SimEngine::serial().run(&plan).executed_points()))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(SimEngine::default().run(&plan).executed_points()))
    });
    group.finish();
}

/// The trace codec: encode a reference stream and decode it back, tracking
/// capture/replay throughput against the live generator.
fn trace_codec(c: &mut Criterion) {
    let config = TraceConfig::new(Benchmark::Gcc)
        .with_ops(BENCH_OPS)
        .with_seed(7);
    let ops: Vec<_> = TraceGenerator::new(config).collect();
    let mut group = c.benchmark_group("trace_codec");
    group.bench_function("generate", |b| {
        b.iter(|| black_box(TraceGenerator::new(config).count()))
    });
    group.bench_function("capture", |b| {
        b.iter(|| {
            let mut writer = TraceWriter::new(Cursor::new(Vec::new()), "bench").expect("header");
            for op in &ops {
                writer.write_op(op).expect("record");
            }
            black_box(writer.finish().expect("finish").into_inner().len())
        })
    });
    let mut writer = TraceWriter::new(Cursor::new(Vec::new()), "bench").expect("header");
    for op in &ops {
        writer.write_op(op).expect("record");
    }
    let bytes = writer.finish().expect("finish").into_inner();
    group.bench_function("replay", |b| {
        b.iter(|| {
            let reader = TraceReader::new(Cursor::new(bytes.as_slice())).expect("header");
            let mut decoded = 0usize;
            for op in reader {
                black_box(op.expect("intact recording"));
                decoded += 1;
            }
            black_box(decoded)
        })
    });
    group.finish();
}

/// End-to-end simulator throughput: the d-cache access loop under the
/// conventional and the headline policies, and the block-driven processor
/// run — the same quantities `bench_report` records into
/// `BENCH_sim_throughput.json` (see `docs/PERFORMANCE.md`).
fn sim_throughput(c: &mut Criterion) {
    let stream: Vec<(u64, u64, u64, bool)> = TraceGenerator::new(
        TraceConfig::new(Benchmark::Gcc)
            .with_ops(4 * BENCH_OPS)
            .with_seed(7),
    )
    .filter_map(|op| match op.kind {
        OpKind::Load { addr, approx_addr } => Some((op.pc, addr, approx_addr, true)),
        OpKind::Store { addr } => Some((op.pc, addr, 0, false)),
        _ => None,
    })
    .collect();
    let mut group = c.benchmark_group("sim_throughput");
    for (name, policy) in [
        ("dcache_parallel", DCachePolicy::Parallel),
        ("dcache_seldm_waypred", DCachePolicy::SelDmWayPredict),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cache = DCacheController::new(L1Config::paper_dcache(), policy)
                    .expect("paper config is valid");
                let mut latency = 0u64;
                for &(pc, addr, approx, is_load) in &stream {
                    let out = if is_load {
                        cache.load(pc, addr, approx)
                    } else {
                        cache.store(pc, addr)
                    };
                    latency += out.latency;
                }
                black_box((latency, cache.stats().misses()))
            })
        });
    }
    group.bench_function("processor_run_blocks", |b| {
        let m = machine(DCachePolicy::SelDmWayPredict, ICachePolicy::WayPredict);
        b.iter(|| {
            let mut cpu = Processor::with_l1(m.cpu, m.l1d, m.dpolicy, m.l1i, m.ipolicy)
                .expect("paper config is valid");
            let mut ops = WorkloadSpec::Benchmark(Benchmark::Gcc)
                .stream(BENCH_OPS, 7)
                .expect("generated workloads never fail");
            black_box(cpu.run_blocks(&mut ops).cycles)
        })
    });
    group.finish();
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets =
        table3_energy_model,
        table4_miss_rates,
        fig4_sequential,
        fig5_way_prediction,
        fig6_selective_dm,
        table5_summary,
        fig7_cache_size,
        fig8_associativity,
        fig9_high_latency,
        fig10_icache,
        fig11_processor,
        engine_sweep,
        trace_codec,
        sim_throughput
}
criterion_main!(paper);
