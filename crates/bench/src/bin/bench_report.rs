//! End-to-end throughput report: `BENCH_sim_throughput.json`.
//!
//! Measures the numbers the performance trajectory of this repo is
//! tracked by (see `docs/PERFORMANCE.md`):
//!
//! 1. the single-thread d-cache access loop, in ops/sec — the inner loop
//!    every figure and table is built from;
//! 2. the full processor timing model, in ops/sec;
//! 3. wall-clock for a `run_all`-shaped engine sweep, cold (every point
//!    simulated) and warm (every point served from the on-disk matrix
//!    cache);
//! 4. the same cold sweep with gang scheduling on vs off (`sweep_gang`) —
//!    the cost of regenerating every workload stream per point;
//! 5. the config-parallel lane kernels vs the scalar gang path
//!    (`lane_kernels`): a fig10-shaped batch of machines sharing the
//!    baseline d-side driven through one stream walk, at widths 2/4/8.
//!    `vector_speedup` (the width-8 ratio) is asserted ≥ 1.0 — the lane
//!    engine must never regress below running the same gang scalar.
//!
//! Usage: `cargo run --release -p wp-bench --bin bench_report --
//! [--quick] [--out PATH]`

use std::time::Instant;

use wp_cache::{DCacheController, DCachePolicy, ICachePolicy, L1Config};
use wp_cpu::{CpuConfig, Processor};
use wp_experiments::runner::{simulate_workload_shared, simulate_workload_shared_lanes};
use wp_experiments::MatrixCache;
use wp_experiments::{run_all_plan, MachineConfig, RunOptions, SimEngine};
use wp_workloads::{
    Benchmark, OpKind, SharedStream, StreamKey, TraceConfig, TraceGenerator, WorkloadSpec,
};

const USAGE: &str = "usage: bench_report [--quick] [--out PATH]";

struct Cli {
    quick: bool,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        quick: false,
        out: std::path::PathBuf::from("BENCH_sim_throughput.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cli.quick = true,
            "--out" => {
                let value = args.next().ok_or("flag `--out` requires a value")?;
                cli.out = value.into();
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(cli)
}

/// One pre-extracted d-cache access: `(pc, addr, approx_addr, is_load)`.
type MemOp = (u64, u64, u64, bool);

/// Extracts the memory-op stream of a benchmark trace, so the measured loop
/// contains nothing but `DCacheController` accesses.
fn mem_ops(benchmark: Benchmark, ops: usize) -> Vec<MemOp> {
    TraceGenerator::new(TraceConfig::new(benchmark).with_ops(ops).with_seed(7))
        .filter_map(|op| match op.kind {
            OpKind::Load { addr, approx_addr } => Some((op.pc, addr, approx_addr, true)),
            OpKind::Store { addr } => Some((op.pc, addr, 0, false)),
            _ => None,
        })
        .collect()
}

/// Drives `accesses` d-cache operations through a fresh controller and
/// returns `(ops_per_sec, seconds)`. The outcome of every access is
/// consumed the way the processor's scheduling loop consumes it — the
/// latency and energy scalars feed running sums — so the measured loop is
/// the controller, not result-struct spills.
fn dcache_loop(policy: DCachePolicy, stream: &[MemOp], accesses: usize) -> (f64, f64) {
    // Untimed warm-up on a throwaway controller: ramps the host core out of
    // its idle frequency state and warms the branch predictors, so the
    // first measured policy is not penalised relative to the second.
    let mut warmup =
        DCacheController::new(L1Config::paper_dcache(), policy).expect("paper config is valid");
    let mut done = 0usize;
    'warm: loop {
        for &(pc, addr, approx, is_load) in stream {
            if is_load {
                std::hint::black_box(warmup.load(pc, addr, approx));
            } else {
                std::hint::black_box(warmup.store(pc, addr));
            }
            done += 1;
            if done == accesses / 2 {
                break 'warm;
            }
        }
    }
    // Best of three timed repetitions: the measurement is min-time, so a
    // host-side frequency dip in one repetition cannot masquerade as a
    // simulator slowdown.
    let mut best_seconds = f64::INFINITY;
    for _ in 0..3 {
        let mut cache =
            DCacheController::new(L1Config::paper_dcache(), policy).expect("paper config is valid");
        let start = Instant::now();
        let mut done = 0usize;
        let mut latency = 0u64;
        let mut hits = 0u64;
        'outer: loop {
            for &(pc, addr, approx, is_load) in stream {
                let out = if is_load {
                    cache.load(pc, addr, approx)
                } else {
                    cache.store(pc, addr)
                };
                latency += out.latency;
                hits += out.hit as u64;
                done += 1;
                if done == accesses {
                    break 'outer;
                }
            }
        }
        let seconds = start.elapsed().as_secs_f64();
        std::hint::black_box((latency, hits, cache.stats()));
        best_seconds = best_seconds.min(seconds);
    }
    (accesses as f64 / best_seconds, best_seconds)
}

/// Runs the full processor model over a benchmark trace and returns
/// `(ops_per_sec, seconds)`.
fn processor_loop(ops: usize) -> (f64, f64) {
    let machine = MachineConfig::baseline()
        .with_dpolicy(DCachePolicy::SelDmWayPredict)
        .with_ipolicy(ICachePolicy::WayPredict);
    let mut cpu = Processor::with_l1(
        machine.cpu,
        machine.l1d,
        machine.dpolicy,
        machine.l1i,
        machine.ipolicy,
    )
    .expect("paper config is valid");
    let start = Instant::now();
    let result = cpu.run(TraceGenerator::new(
        TraceConfig::new(Benchmark::Gcc).with_ops(ops).with_seed(7),
    ));
    let seconds = start.elapsed().as_secs_f64();
    std::hint::black_box(&result);
    (ops as f64 / seconds, seconds)
}

/// A fig10-shaped lane batch: eight machines sharing the baseline d-side
/// (Parallel policy, paper geometry — the lane batch key) while everything
/// the lane engine leaves free varies — i-cache policy and associativity,
/// d-probe latency, prediction-table size, issue width.
fn lane_machines() -> Vec<MachineConfig> {
    let base = MachineConfig::baseline();
    vec![
        base,
        base.with_ipolicy(ICachePolicy::WayPredict),
        base.with_l1i(L1Config::paper_icache().with_associativity(2))
            .with_ipolicy(ICachePolicy::WayPredict),
        base.with_l1i(L1Config::paper_icache().with_associativity(1)),
        base.with_l1i(L1Config::paper_icache().with_associativity(8))
            .with_ipolicy(ICachePolicy::WayPredict),
        base.with_l1d(L1Config::paper_dcache().with_base_latency(2)),
        base.with_l1d(L1Config::paper_dcache().with_prediction_table_entries(256)),
        MachineConfig {
            cpu: CpuConfig {
                issue_width: 4,
                ..CpuConfig::default()
            },
            ..base
        },
    ]
}

/// Times one gang both ways over an already-materialized stream: the
/// config-parallel lane engine (one walk for all machines) against the
/// scalar gang path (one walk per machine). Returns
/// `(lane_seconds, scalar_seconds)`, best of three, interleaved pair-wise
/// so neither mode systematically inherits a warmer host.
fn lane_vs_scalar(stream: &SharedStream, machines: &[MachineConfig]) -> (f64, f64) {
    // Untimed warm-up of both paths.
    std::hint::black_box(simulate_workload_shared_lanes(stream, machines));
    std::hint::black_box(simulate_workload_shared(stream, &machines[0]));
    let mut lane_secs = f64::INFINITY;
    let mut scalar_secs = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for machine in machines {
            std::hint::black_box(simulate_workload_shared(stream, machine));
        }
        scalar_secs = scalar_secs.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        std::hint::black_box(simulate_workload_shared_lanes(stream, machines));
        lane_secs = lane_secs.min(start.elapsed().as_secs_f64());
    }
    (lane_secs, scalar_secs)
}

fn main() {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let (dcache_accesses, cpu_ops, sweep_ops, lane_ops) = if cli.quick {
        (400_000usize, 120_000usize, 4_000usize, 40_000usize)
    } else {
        (4_000_000, 1_200_000, 20_000, 200_000)
    };

    eprintln!("bench_report: d-cache access loop ({dcache_accesses} accesses per policy)");
    let stream = mem_ops(Benchmark::Gcc, 200_000);
    let (parallel_ops_sec, parallel_secs) =
        dcache_loop(DCachePolicy::Parallel, &stream, dcache_accesses);
    let (seldm_ops_sec, seldm_secs) =
        dcache_loop(DCachePolicy::SelDmWayPredict, &stream, dcache_accesses);

    eprintln!("bench_report: processor timing model ({cpu_ops} ops)");
    let (cpu_ops_sec, cpu_secs) = processor_loop(cpu_ops);

    eprintln!("bench_report: run_all sweep (ops {sweep_ops}, cold then warm matrix cache)");
    let options = RunOptions::quick().with_ops(sweep_ops);
    let plan = run_all_plan(&options);
    let unique = plan.unique_points().len();
    let cache_dir = std::env::temp_dir().join(format!("wpsdm-bench-cache-{}", std::process::id()));
    // A leftover directory from an interrupted earlier run would turn the
    // cold measurement into a warm one; start from a guaranteed-empty dir.
    let _ = std::fs::remove_dir_all(&cache_dir);
    let engine = SimEngine::default().with_matrix_cache(MatrixCache::new(&cache_dir));
    let start = Instant::now();
    let cold = engine.run(&plan);
    let cold_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let warm = engine.run(&plan);
    let warm_secs = start.elapsed().as_secs_f64();
    let (cold_executed, warm_executed) = (cold.executed_points(), warm.executed_points());
    let warm_hits = warm.cache_hits();
    let _ = std::fs::remove_dir_all(&cache_dir);

    eprintln!("bench_report: gang-scheduled vs point-at-a-time cold sweep");
    // Same methodology as every other section: an untimed warm-up, then
    // best of three timed repetitions — interleaved pair-wise so neither
    // mode systematically inherits a warmer host than the other.
    let gang_matrix = SimEngine::default().run(&plan);
    std::hint::black_box(&gang_matrix);
    let mut gang_secs = f64::INFINITY;
    let mut no_gang_secs = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        std::hint::black_box(SimEngine::default().without_gang().run(&plan));
        no_gang_secs = no_gang_secs.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        std::hint::black_box(SimEngine::default().run(&plan));
        gang_secs = gang_secs.min(start.elapsed().as_secs_f64());
    }

    eprintln!("bench_report: lane kernels vs scalar gang ({lane_ops} ops per machine)");
    let lane_stream = SharedStream::materialize(&StreamKey::new(
        WorkloadSpec::Benchmark(Benchmark::Gcc),
        lane_ops,
        7,
    ))
    .expect("benchmark streams always materialize");
    let machines = lane_machines();
    let mut width_speedups = [0.0f64; 3];
    let mut lane_ops_per_sec = 0.0;
    let mut scalar_ops_per_sec = 0.0;
    for (slot, width) in [2usize, 4, 8].into_iter().enumerate() {
        let (lane_secs, scalar_secs) = lane_vs_scalar(&lane_stream, &machines[..width]);
        width_speedups[slot] = scalar_secs / lane_secs;
        if width == machines.len() {
            lane_ops_per_sec = (width * lane_ops) as f64 / lane_secs;
            scalar_ops_per_sec = (width * lane_ops) as f64 / scalar_secs;
        }
    }
    let vector_speedup = width_speedups[2];
    eprintln!(
        "bench_report: lane speedups: width 2 = {:.3}x, width 4 = {:.3}x, width 8 = {:.3}x",
        width_speedups[0], width_speedups[1], width_speedups[2]
    );
    // The whole point of the lane engine: batching a gang must never be
    // slower than replaying it scalar. A regression here fails the bench
    // smoke rather than silently shipping a slower sweep.
    assert!(
        vector_speedup >= 1.0,
        "lane kernels regressed below the scalar gang path: {vector_speedup:.3}x"
    );
    // How much of the run_all sweep the lane engine actually covers.
    let gang_points = gang_matrix.lane_points() + gang_matrix.lane_scalar_fallback();
    let batch_fill_ratio = gang_matrix.lane_points() as f64 / gang_points.max(1) as f64;

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"wpsdm/bench_sim_throughput/v3\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"dcache_access_loop\": {{\n",
            "    \"accesses\": {dacc},\n",
            "    \"parallel_ops_per_sec\": {par:.0},\n",
            "    \"parallel_seconds\": {pars:.4},\n",
            "    \"seldm_waypredict_ops_per_sec\": {sel:.0},\n",
            "    \"seldm_waypredict_seconds\": {sels:.4}\n",
            "  }},\n",
            "  \"processor_run\": {{\n",
            "    \"ops\": {cops},\n",
            "    \"ops_per_sec\": {cps:.0},\n",
            "    \"seconds\": {cs:.4}\n",
            "  }},\n",
            "  \"run_all_sweep\": {{\n",
            "    \"ops_per_point\": {sops},\n",
            "    \"unique_points\": {uniq},\n",
            "    \"cold_seconds\": {colds:.4},\n",
            "    \"cold_executed\": {colde},\n",
            "    \"warm_seconds\": {warms:.4},\n",
            "    \"warm_executed\": {warme},\n",
            "    \"warm_cache_hits\": {warmh}\n",
            "  }},\n",
            "  \"sweep_gang\": {{\n",
            "    \"ops_per_point\": {sops},\n",
            "    \"unique_points\": {uniq},\n",
            "    \"gang_seconds\": {gangs:.4},\n",
            "    \"no_gang_seconds\": {nogangs:.4},\n",
            "    \"gang_speedup\": {gangx:.3},\n",
            "    \"streams_materialized\": {streams},\n",
            "    \"ops_generated\": {opsg},\n",
            "    \"ops_consumed\": {opsc}\n",
            "  }},\n",
            "  \"lane_kernels\": {{\n",
            "    \"ops_per_machine\": {lops},\n",
            "    \"machines\": {lmach},\n",
            "    \"lane_ops_per_sec\": {lps:.0},\n",
            "    \"scalar_ops_per_sec\": {sps:.0},\n",
            "    \"width2_speedup\": {w2:.3},\n",
            "    \"width4_speedup\": {w4:.3},\n",
            "    \"width8_speedup\": {w8:.3},\n",
            "    \"vector_speedup\": {vx:.3},\n",
            "    \"sweep_batch_fill_ratio\": {fill:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        mode = if cli.quick { "quick" } else { "full" },
        dacc = dcache_accesses,
        par = parallel_ops_sec,
        pars = parallel_secs,
        sel = seldm_ops_sec,
        sels = seldm_secs,
        cops = cpu_ops,
        cps = cpu_ops_sec,
        cs = cpu_secs,
        sops = sweep_ops,
        uniq = unique,
        colds = cold_secs,
        colde = cold_executed,
        warms = warm_secs,
        warme = warm_executed,
        warmh = warm_hits,
        gangs = gang_secs,
        nogangs = no_gang_secs,
        gangx = no_gang_secs / gang_secs,
        streams = gang_matrix.streams_materialized(),
        opsg = gang_matrix.ops_generated(),
        opsc = gang_matrix.ops_consumed(),
        lops = lane_ops,
        lmach = machines.len(),
        lps = lane_ops_per_sec,
        sps = scalar_ops_per_sec,
        w2 = width_speedups[0],
        w4 = width_speedups[1],
        w8 = width_speedups[2],
        vx = vector_speedup,
        fill = batch_fill_ratio,
    );
    if let Err(error) = std::fs::write(&cli.out, &json) {
        eprintln!("error: cannot write {}: {error}", cli.out.display());
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("bench_report: wrote {}", cli.out.display());
}
