//! End-to-end throughput report: `BENCH_sim_throughput.json`.
//!
//! Measures the numbers the performance trajectory of this repo is
//! tracked by (see `docs/PERFORMANCE.md`):
//!
//! 1. the single-thread d-cache access loop, in ops/sec — the inner loop
//!    every figure and table is built from;
//! 2. the full processor timing model, in ops/sec;
//! 3. wall-clock for a `run_all`-shaped engine sweep, cold (every point
//!    simulated) and warm (every point served from the on-disk matrix
//!    cache);
//! 4. the same cold sweep with gang scheduling on vs off (`sweep_gang`) —
//!    the cost of regenerating every workload stream per point;
//! 5. the SWAR tag-match primitive vs its retained scalar reference
//!    (`tag_match`).
//!
//! Usage: `cargo run --release -p wp-bench --bin bench_report --
//! [--quick] [--out PATH]`

use std::time::Instant;

use wp_cache::{DCacheController, DCachePolicy, ICachePolicy, L1Config};
use wp_cpu::Processor;
use wp_experiments::MatrixCache;
use wp_experiments::{run_all_plan, MachineConfig, RunOptions, SimEngine};
use wp_workloads::{Benchmark, OpKind, TraceConfig, TraceGenerator};

const USAGE: &str = "usage: bench_report [--quick] [--out PATH]";

struct Cli {
    quick: bool,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        quick: false,
        out: std::path::PathBuf::from("BENCH_sim_throughput.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cli.quick = true,
            "--out" => {
                let value = args.next().ok_or("flag `--out` requires a value")?;
                cli.out = value.into();
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(cli)
}

/// One pre-extracted d-cache access: `(pc, addr, approx_addr, is_load)`.
type MemOp = (u64, u64, u64, bool);

/// Extracts the memory-op stream of a benchmark trace, so the measured loop
/// contains nothing but `DCacheController` accesses.
fn mem_ops(benchmark: Benchmark, ops: usize) -> Vec<MemOp> {
    TraceGenerator::new(TraceConfig::new(benchmark).with_ops(ops).with_seed(7))
        .filter_map(|op| match op.kind {
            OpKind::Load { addr, approx_addr } => Some((op.pc, addr, approx_addr, true)),
            OpKind::Store { addr } => Some((op.pc, addr, 0, false)),
            _ => None,
        })
        .collect()
}

/// Drives `accesses` d-cache operations through a fresh controller and
/// returns `(ops_per_sec, seconds)`. The outcome of every access is
/// consumed the way the processor's scheduling loop consumes it — the
/// latency and energy scalars feed running sums — so the measured loop is
/// the controller, not result-struct spills.
fn dcache_loop(policy: DCachePolicy, stream: &[MemOp], accesses: usize) -> (f64, f64) {
    // Untimed warm-up on a throwaway controller: ramps the host core out of
    // its idle frequency state and warms the branch predictors, so the
    // first measured policy is not penalised relative to the second.
    let mut warmup =
        DCacheController::new(L1Config::paper_dcache(), policy).expect("paper config is valid");
    let mut done = 0usize;
    'warm: loop {
        for &(pc, addr, approx, is_load) in stream {
            if is_load {
                std::hint::black_box(warmup.load(pc, addr, approx));
            } else {
                std::hint::black_box(warmup.store(pc, addr));
            }
            done += 1;
            if done == accesses / 2 {
                break 'warm;
            }
        }
    }
    // Best of three timed repetitions: the measurement is min-time, so a
    // host-side frequency dip in one repetition cannot masquerade as a
    // simulator slowdown.
    let mut best_seconds = f64::INFINITY;
    for _ in 0..3 {
        let mut cache =
            DCacheController::new(L1Config::paper_dcache(), policy).expect("paper config is valid");
        let start = Instant::now();
        let mut done = 0usize;
        let mut latency = 0u64;
        let mut hits = 0u64;
        'outer: loop {
            for &(pc, addr, approx, is_load) in stream {
                let out = if is_load {
                    cache.load(pc, addr, approx)
                } else {
                    cache.store(pc, addr)
                };
                latency += out.latency;
                hits += out.hit as u64;
                done += 1;
                if done == accesses {
                    break 'outer;
                }
            }
        }
        let seconds = start.elapsed().as_secs_f64();
        std::hint::black_box((latency, hits, cache.stats()));
        best_seconds = best_seconds.min(seconds);
    }
    (accesses as f64 / best_seconds, best_seconds)
}

/// Runs the full processor model over a benchmark trace and returns
/// `(ops_per_sec, seconds)`.
fn processor_loop(ops: usize) -> (f64, f64) {
    let machine = MachineConfig::baseline()
        .with_dpolicy(DCachePolicy::SelDmWayPredict)
        .with_ipolicy(ICachePolicy::WayPredict);
    let mut cpu = Processor::with_l1(
        machine.cpu,
        machine.l1d,
        machine.dpolicy,
        machine.l1i,
        machine.ipolicy,
    )
    .expect("paper config is valid");
    let start = Instant::now();
    let result = cpu.run(TraceGenerator::new(
        TraceConfig::new(Benchmark::Gcc).with_ops(ops).with_seed(7),
    ));
    let seconds = start.elapsed().as_secs_f64();
    std::hint::black_box(&result);
    (ops as f64 / seconds, seconds)
}

/// Measures one set-probe implementation over a synthetic 4-way tag array:
/// every probe scans one set's lane under a valid mask, with the hit way
/// varying probe to probe the way a live sweep's fused scan sees it —
/// exactly the access pattern whose early-exit branches the SWAR path
/// eliminates. Returns `(probes_per_sec, seconds)`, best of three.
fn tag_match_loop(probes: usize, f: impl Fn(&[u64], u64, u64) -> Option<usize>) -> (f64, f64) {
    const SETS: usize = 4096;
    const ASSOC: usize = 4;
    // Deterministic pseudo-random resident tags.
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let tags: Vec<u64> = (0..SETS * ASSOC).map(|_| next() % 64).collect();
    let probe_tags: Vec<u64> = (0..8192)
        .map(|i| {
            if i & 1 == 0 {
                // A resident tag in an unpredictable way of some set.
                tags[(next() as usize) % tags.len()]
            } else {
                // Likely absent.
                64 + next() % 64
            }
        })
        .collect();
    let mut best_seconds = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let mut sink = 0usize;
        for i in 0..probes {
            let base = (i % SETS) * ASSOC;
            let lane = &tags[base..base + ASSOC];
            let probe = probe_tags[i % probe_tags.len()];
            sink = sink.wrapping_add(f(lane, probe, 0b1111).map_or(0, |way| way + 1));
        }
        let seconds = start.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        best_seconds = best_seconds.min(seconds);
    }
    (probes as f64 / best_seconds, best_seconds)
}

fn main() {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let (dcache_accesses, cpu_ops, sweep_ops, tag_probes) = if cli.quick {
        (400_000usize, 120_000usize, 4_000usize, 2_000_000usize)
    } else {
        (4_000_000, 1_200_000, 20_000, 20_000_000)
    };

    eprintln!("bench_report: d-cache access loop ({dcache_accesses} accesses per policy)");
    let stream = mem_ops(Benchmark::Gcc, 200_000);
    let (parallel_ops_sec, parallel_secs) =
        dcache_loop(DCachePolicy::Parallel, &stream, dcache_accesses);
    let (seldm_ops_sec, seldm_secs) =
        dcache_loop(DCachePolicy::SelDmWayPredict, &stream, dcache_accesses);

    eprintln!("bench_report: processor timing model ({cpu_ops} ops)");
    let (cpu_ops_sec, cpu_secs) = processor_loop(cpu_ops);

    eprintln!("bench_report: run_all sweep (ops {sweep_ops}, cold then warm matrix cache)");
    let options = RunOptions::quick().with_ops(sweep_ops);
    let plan = run_all_plan(&options);
    let unique = plan.unique_points().len();
    let cache_dir = std::env::temp_dir().join(format!("wpsdm-bench-cache-{}", std::process::id()));
    // A leftover directory from an interrupted earlier run would turn the
    // cold measurement into a warm one; start from a guaranteed-empty dir.
    let _ = std::fs::remove_dir_all(&cache_dir);
    let engine = SimEngine::default().with_matrix_cache(MatrixCache::new(&cache_dir));
    let start = Instant::now();
    let cold = engine.run(&plan);
    let cold_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let warm = engine.run(&plan);
    let warm_secs = start.elapsed().as_secs_f64();
    let (cold_executed, warm_executed) = (cold.executed_points(), warm.executed_points());
    let warm_hits = warm.cache_hits();
    let _ = std::fs::remove_dir_all(&cache_dir);

    eprintln!("bench_report: gang-scheduled vs point-at-a-time cold sweep");
    // Same methodology as every other section: an untimed warm-up, then
    // best of three timed repetitions — interleaved pair-wise so neither
    // mode systematically inherits a warmer host than the other.
    let gang_matrix = SimEngine::default().run(&plan);
    std::hint::black_box(&gang_matrix);
    let mut gang_secs = f64::INFINITY;
    let mut no_gang_secs = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        std::hint::black_box(SimEngine::default().without_gang().run(&plan));
        no_gang_secs = no_gang_secs.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        std::hint::black_box(SimEngine::default().run(&plan));
        gang_secs = gang_secs.min(start.elapsed().as_secs_f64());
    }

    eprintln!("bench_report: SWAR vs scalar tag match ({tag_probes} probes)");
    let (swar_per_sec, swar_secs) = tag_match_loop(tag_probes, wp_mem::swar::first_hit);
    let (scalar_per_sec, scalar_secs) = tag_match_loop(tag_probes, wp_mem::swar::first_hit_scalar);

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"wpsdm/bench_sim_throughput/v2\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"dcache_access_loop\": {{\n",
            "    \"accesses\": {dacc},\n",
            "    \"parallel_ops_per_sec\": {par:.0},\n",
            "    \"parallel_seconds\": {pars:.4},\n",
            "    \"seldm_waypredict_ops_per_sec\": {sel:.0},\n",
            "    \"seldm_waypredict_seconds\": {sels:.4}\n",
            "  }},\n",
            "  \"processor_run\": {{\n",
            "    \"ops\": {cops},\n",
            "    \"ops_per_sec\": {cps:.0},\n",
            "    \"seconds\": {cs:.4}\n",
            "  }},\n",
            "  \"run_all_sweep\": {{\n",
            "    \"ops_per_point\": {sops},\n",
            "    \"unique_points\": {uniq},\n",
            "    \"cold_seconds\": {colds:.4},\n",
            "    \"cold_executed\": {colde},\n",
            "    \"warm_seconds\": {warms:.4},\n",
            "    \"warm_executed\": {warme},\n",
            "    \"warm_cache_hits\": {warmh}\n",
            "  }},\n",
            "  \"sweep_gang\": {{\n",
            "    \"ops_per_point\": {sops},\n",
            "    \"unique_points\": {uniq},\n",
            "    \"gang_seconds\": {gangs:.4},\n",
            "    \"no_gang_seconds\": {nogangs:.4},\n",
            "    \"gang_speedup\": {gangx:.3},\n",
            "    \"streams_materialized\": {streams},\n",
            "    \"ops_generated\": {opsg},\n",
            "    \"ops_consumed\": {opsc}\n",
            "  }},\n",
            "  \"tag_match\": {{\n",
            "    \"probes\": {tprobes},\n",
            "    \"swar_matches_per_sec\": {swarps:.0},\n",
            "    \"swar_seconds\": {swars:.4},\n",
            "    \"scalar_matches_per_sec\": {scalps:.0},\n",
            "    \"scalar_seconds\": {scals:.4},\n",
            "    \"swar_speedup\": {swarx:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        mode = if cli.quick { "quick" } else { "full" },
        dacc = dcache_accesses,
        par = parallel_ops_sec,
        pars = parallel_secs,
        sel = seldm_ops_sec,
        sels = seldm_secs,
        cops = cpu_ops,
        cps = cpu_ops_sec,
        cs = cpu_secs,
        sops = sweep_ops,
        uniq = unique,
        colds = cold_secs,
        colde = cold_executed,
        warms = warm_secs,
        warme = warm_executed,
        warmh = warm_hits,
        gangs = gang_secs,
        nogangs = no_gang_secs,
        gangx = no_gang_secs / gang_secs,
        streams = gang_matrix.streams_materialized(),
        opsg = gang_matrix.ops_generated(),
        opsc = gang_matrix.ops_consumed(),
        tprobes = tag_probes,
        swarps = swar_per_sec,
        swars = swar_secs,
        scalps = scalar_per_sec,
        scals = scalar_secs,
        swarx = swar_per_sec / scalar_per_sec,
    );
    if let Err(error) = std::fs::write(&cli.out, &json) {
        eprintln!("error: cannot write {}: {error}", cli.out.display());
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("bench_report: wrote {}", cli.out.display());
}
