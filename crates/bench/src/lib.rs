//! Criterion benchmark harness for the wpsdm workspace.
//!
//! The benchmarks live under `benches/`, one per table or figure of the
//! paper; this library crate only hosts shared helpers (currently none).

#![forbid(unsafe_code)]
