//! Batched micro-op production.
//!
//! The processor's hot loop used to pull one [`MicroOp`] at a time through
//! an enum-dispatched iterator ([`crate::WorkloadStream`]), paying a
//! variant match per op. [`OpBlockSource`] inverts that: the source refills
//! a reusable fixed-size [`OpBuffer`] in blocks, resolving the source kind
//! once per block, and the consumer iterates a plain `&[MicroOp]` slice.
//! The op sequence is exactly the one the underlying iterator produces, so
//! block-driven and op-driven runs are bit-identical.
//!
//! # Example
//!
//! ```
//! use wp_workloads::{Benchmark, OpBlockSource, OpBuffer, WorkloadSpec};
//!
//! let spec = WorkloadSpec::Benchmark(Benchmark::Gcc);
//! let mut stream = spec.stream(2_500, 42).expect("generated workload");
//! let mut buf = OpBuffer::new();
//! let mut total = 0;
//! while stream.fill(&mut buf) > 0 {
//!     total += buf.ops().len();
//! }
//! assert_eq!(total, 2_500);
//! ```

use crate::op::MicroOp;

/// Default number of ops per refill: large enough to amortise per-block
/// dispatch to nothing, small enough to stay resident in L1/L2.
pub const DEFAULT_OP_BLOCK: usize = 1024;

/// A reusable fixed-capacity micro-op buffer refilled by an
/// [`OpBlockSource`].
#[derive(Debug)]
pub struct OpBuffer {
    ops: Vec<MicroOp>,
    capacity: usize,
}

impl OpBuffer {
    /// A buffer of [`DEFAULT_OP_BLOCK`] capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_OP_BLOCK)
    }

    /// A buffer of the given capacity (clamped to at least one op).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            ops: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum ops one refill can produce.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The ops of the current block.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Empties the buffer for the next refill.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Appends one op; ignores ops beyond the capacity (sources check
    /// [`OpBuffer::is_full`] instead of relying on this).
    pub fn push(&mut self, op: MicroOp) {
        if self.ops.len() < self.capacity {
            self.ops.push(op);
        }
    }

    /// True once the current block holds `capacity` ops.
    pub fn is_full(&self) -> bool {
        self.ops.len() == self.capacity
    }

    /// Appends a slice of ops in one copy, truncating at the capacity —
    /// the bulk path shared-stream readers use instead of per-op pushes.
    pub fn push_slice(&mut self, ops: &[MicroOp]) {
        let room = self.capacity - self.ops.len();
        self.ops.extend_from_slice(&ops[..ops.len().min(room)]);
    }
}

impl Default for OpBuffer {
    fn default() -> Self {
        Self::new()
    }
}

/// A producer of micro-op blocks: generators, scenarios, and the trace
/// decoder all implement this so the processor consumes every source the
/// same way, one slice at a time.
pub trait OpBlockSource {
    /// Clears `buf` and refills it with up to `buf.capacity()` ops.
    /// Returns the number produced; `0` means the source is exhausted.
    fn fill(&mut self, buf: &mut OpBuffer) -> usize;
}

/// Refills `buf` from any micro-op iterator — the shared body of every
/// [`OpBlockSource`] implementation.
pub fn fill_from_iter<I: Iterator<Item = MicroOp>>(iter: &mut I, buf: &mut OpBuffer) -> usize {
    buf.clear();
    while !buf.is_full() {
        match iter.next() {
            Some(op) => buf.push(op),
            None => break,
        }
    }
    buf.ops().len()
}

impl OpBlockSource for crate::generator::TraceGenerator {
    fn fill(&mut self, buf: &mut OpBuffer) -> usize {
        fill_from_iter(self, buf)
    }
}

impl OpBlockSource for crate::scenario::ScenarioGenerator {
    fn fill(&mut self, buf: &mut OpBuffer) -> usize {
        fill_from_iter(self, buf)
    }
}

impl OpBlockSource for crate::trace::TraceReplay {
    fn fill(&mut self, buf: &mut OpBuffer) -> usize {
        fill_from_iter(self, buf)
    }
}

/// Adapts any micro-op iterator into an [`OpBlockSource`] (the processor's
/// iterator-based `run` entry point wraps its trace in this to reuse the
/// block-driven loop).
#[derive(Debug)]
pub struct IterBlockSource<I>(pub I);

impl<I: Iterator<Item = MicroOp>> OpBlockSource for IterBlockSource<I> {
    fn fill(&mut self, buf: &mut OpBuffer) -> usize {
        fill_from_iter(&mut self.0, buf)
    }
}

/// The inverse adapter: any [`OpBlockSource`] walked one op at a time.
///
/// This is how a single materialized [`crate::SharedStream`] fans out to
/// *two* consumers with different appetites — the optimized processor pulls
/// blocks from one reader while a per-op reference simulator (the
/// `wp-oracle` conformance backend) iterates another through this adapter.
/// The sequence is exactly the one the source's blocks concatenate to.
///
/// # Example
///
/// ```
/// use wp_workloads::{Benchmark, BlockSourceIter, SharedStream, StreamKey, WorkloadSpec};
///
/// let key = StreamKey::new(WorkloadSpec::Benchmark(Benchmark::Li), 1_000, 7);
/// let stream = SharedStream::materialize(&key).expect("generated workload");
/// let ops: Vec<_> = BlockSourceIter::new(stream.reader().expect("in-memory")).collect();
/// let direct: Vec<_> = key.spec.stream(key.ops, key.seed).expect("opens").collect();
/// assert_eq!(ops, direct);
/// ```
#[derive(Debug)]
pub struct BlockSourceIter<S> {
    source: S,
    buf: OpBuffer,
    pos: usize,
}

impl<S: OpBlockSource> BlockSourceIter<S> {
    /// Wraps `source`, refilling a default-capacity buffer block by block.
    pub fn new(source: S) -> Self {
        Self {
            source,
            buf: OpBuffer::new(),
            pos: 0,
        }
    }
}

impl<S: OpBlockSource> Iterator for BlockSourceIter<S> {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        if self.pos == self.buf.ops().len() {
            // `fill` clears the buffer either way, so the cursor must
            // reset with it — including on exhaustion, which keeps the
            // iterator fused (polling past the end keeps returning None).
            self.pos = 0;
            if self.source.fill(&mut self.buf) == 0 {
                return None;
            }
        }
        let op = self.buf.ops()[self.pos];
        self.pos += 1;
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{TraceConfig, TraceGenerator};
    use crate::profile::Benchmark;

    fn generator(ops: usize) -> TraceGenerator {
        TraceGenerator::new(TraceConfig::new(Benchmark::Li).with_ops(ops).with_seed(3))
    }

    #[test]
    fn blocks_reproduce_the_iterator_sequence_exactly() {
        let direct: Vec<MicroOp> = generator(5_000).collect();
        let mut source = IterBlockSource(generator(5_000));
        let mut buf = OpBuffer::with_capacity(768);
        let mut batched = Vec::new();
        while source.fill(&mut buf) > 0 {
            batched.extend_from_slice(buf.ops());
        }
        assert_eq!(batched, direct);
    }

    #[test]
    fn fill_reports_exhaustion_with_zero() {
        let mut source = IterBlockSource(generator(10));
        let mut buf = OpBuffer::with_capacity(64);
        assert_eq!(source.fill(&mut buf), 10);
        assert_eq!(source.fill(&mut buf), 0);
        assert!(buf.ops().is_empty());
    }

    #[test]
    fn block_source_iter_matches_and_is_fused() {
        let direct: Vec<MicroOp> = generator(2_500).collect();
        let mut iter = BlockSourceIter::new(generator(2_500));
        let walked: Vec<MicroOp> = iter.by_ref().collect();
        assert_eq!(walked, direct);
        // Polling past exhaustion keeps returning None (never panics).
        assert_eq!(iter.next(), None);
        assert_eq!(iter.next(), None);
    }

    #[test]
    fn buffer_capacity_is_respected() {
        let mut buf = OpBuffer::with_capacity(2);
        assert_eq!(buf.capacity(), 2);
        let op = MicroOp::independent(0x100, crate::op::OpKind::IntAlu);
        buf.push(op);
        assert!(!buf.is_full());
        buf.push(op);
        assert!(buf.is_full());
        buf.push(op);
        assert_eq!(buf.ops().len(), 2);
        buf.clear();
        assert!(buf.ops().is_empty());
        assert_eq!(OpBuffer::with_capacity(0).capacity(), 1);
    }
}
