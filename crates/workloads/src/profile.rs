//! Behavioural profiles of the paper's eleven SPEC CPU95 applications
//! (Table 2), expressed as the statistical parameters the synthetic trace
//! generator needs.
//!
//! Each profile records, alongside the generator parameters, the d-cache
//! miss rates the paper measured (Table 4) so experiments can print
//! paper-vs-measured comparisons.

/// The applications evaluated in the paper (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// SPECfp95 applu (train input) — PDE solver, long vector loops.
    Applu,
    /// SPECfp95 fpppp (train input) — quantum chemistry, huge basic blocks
    /// and a code footprint that thrashes a 16 KB i-cache.
    Fpppp,
    /// SPECint95 gcc (ref input) — compiler, large irregular footprint.
    Gcc,
    /// SPECint95 go (ref input) — game playing, branchy with poor branch
    /// predictability.
    Go,
    /// SPECint95 li (train input) — Lisp interpreter, pointer chasing.
    Li,
    /// SPECint95 m88ksim (train input) — microprocessor simulator.
    M88ksim,
    /// SPECfp95 mgrid (train input) — multigrid solver, almost perfectly
    /// streaming (over 99 % non-conflicting accesses).
    Mgrid,
    /// SPECint95 perl (train input) — interpreter.
    Perl,
    /// SPECfp95 swim (test input) — shallow-water model whose working set
    /// produces the pathological case where a 4-way cache misses more than a
    /// direct-mapped one (Table 4: 25.2 % vs 23.3 %).
    Swim,
    /// troff (train input) — text formatter.
    Troff,
    /// SPECint95 vortex (test input) — object-oriented database.
    Vortex,
}

impl Benchmark {
    /// All benchmarks in the order the paper's figures list them.
    pub fn all() -> [Benchmark; 11] {
        [
            Benchmark::Applu,
            Benchmark::Li,
            Benchmark::Mgrid,
            Benchmark::Swim,
            Benchmark::Fpppp,
            Benchmark::Go,
            Benchmark::M88ksim,
            Benchmark::Perl,
            Benchmark::Gcc,
            Benchmark::Troff,
            Benchmark::Vortex,
        ]
    }

    /// The benchmark's lowercase name as the paper prints it.
    pub fn name(&self) -> &'static str {
        self.profile().name
    }

    /// Looks up a benchmark by its paper name (`"gcc"`, `"swim"`, …).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::all().into_iter().find(|b| b.name() == name)
    }

    /// The behavioural profile used by the trace generator.
    pub fn profile(&self) -> &'static BenchmarkProfile {
        match self {
            Benchmark::Applu => &APPLU,
            Benchmark::Fpppp => &FPPPP,
            Benchmark::Gcc => &GCC,
            Benchmark::Go => &GO,
            Benchmark::Li => &LI,
            Benchmark::M88ksim => &M88KSIM,
            Benchmark::Mgrid => &MGRID,
            Benchmark::Perl => &PERL,
            Benchmark::Swim => &SWIM,
            Benchmark::Troff => &TROFF,
            Benchmark::Vortex => &VORTEX,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters describing one application's behaviour.
///
/// The data-side stream weights (`w_*`) are *dynamic* fractions of load
/// instructions routed to each access-pattern class; whatever is left over
/// goes to stable scalar accesses (globals, stack slots, hot structure
/// fields) that almost never miss.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Name as printed in the paper.
    pub name: &'static str,
    /// True for the SPECfp95 members.
    pub floating_point: bool,

    // ---- instruction mix ----
    /// Fraction of dynamic instructions that are loads.
    pub load_frac: f64,
    /// Fraction of dynamic instructions that are stores.
    pub store_frac: f64,
    /// Fraction of dynamic instructions that are control transfers.
    pub branch_frac: f64,
    /// Fraction of non-memory, non-branch instructions that are
    /// floating-point.
    pub fp_frac: f64,

    // ---- instruction stream structure ----
    /// Mean basic-block length in instructions (FP codes run long blocks).
    pub avg_basic_block: usize,
    /// Number of 32-byte instruction blocks in the hot code footprint.
    pub code_footprint_blocks: usize,
    /// Number of hot functions the dynamic call graph bounces between.
    pub hot_functions: usize,
    /// Fraction of basic-block-ending branches that are calls (matched by an
    /// equal number of returns).
    pub call_frac: f64,
    /// Probability that a conditional branch is taken.
    pub taken_bias: f64,
    /// Per-static-branch bias strength: with probability `predictability`
    /// a branch follows its own fixed bias, otherwise it flips a fair coin.
    pub branch_predictability: f64,

    // ---- data stream mix (dynamic fractions of loads) ----
    /// Sequential array walks (unit or small stride): high per-PC block
    /// locality, misses only on block boundaries.
    pub w_seq: f64,
    /// Stride in bytes of the sequential walks.
    pub seq_stride: u64,
    /// Accesses to a churning pool of blocks comparable to the cache
    /// capacity: produces capacity misses, evictions, and the conflicting
    /// accesses selective-DM must detect.
    pub w_pool: f64,
    /// Size of the churning pool in 32-byte blocks.
    pub pool_blocks: usize,
    /// Accesses to groups of blocks that collide in a direct-mapped cache
    /// but coexist in one set of a 4-way cache. These are the *conflicting
    /// accesses* selective-DM must detect: they hit in the set-associative
    /// baseline, but would thrash a direct-mapped organisation.
    pub w_dm_conflict: f64,
    /// Number of blocks per direct-map conflict group (at most the
    /// associativity, so the group fits a set-associative cache).
    pub dm_conflict_group: usize,
    /// Probability that a conflict-group access moves on to the next block
    /// of its group. Each switch is a conflict miss in a direct-mapped
    /// cache, so `w_dm_conflict * dm_conflict_switch_prob` is roughly the
    /// Table 4 gap between the direct-mapped and 4-way miss rates, while
    /// `w_dm_conflict` itself is roughly the fraction of accesses
    /// selective-DM ends up classifying as conflicting.
    pub dm_conflict_switch_prob: f64,
    /// LRU-adversarial groups of `associativity + 1` blocks accessed
    /// cyclically — swim's pathology where 4-way misses exceed DM misses.
    pub w_pathological: f64,
    /// Far random accesses that miss everywhere (cold / compulsory-like).
    pub w_far: f64,
    /// Probability that the XOR approximation of a load address matches the
    /// true block address (Section 2.2.1).
    pub xor_approx_accuracy: f64,

    // ---- dependence structure ----
    /// Mean register-dependence distance in instructions (larger = more
    /// instruction-level parallelism for the out-of-order core to exploit).
    pub mean_dep_distance: f64,

    // ---- paper reference data ----
    /// Table 4: direct-mapped 16 KB d-cache miss rate (percent).
    pub paper_dm_miss_rate: f64,
    /// Table 4: 4-way set-associative 16 KB d-cache miss rate (percent).
    pub paper_sa_miss_rate: f64,
    /// Table 2: dynamic instruction count in billions (used only for
    /// reporting; traces are scaled down).
    pub paper_instructions_billions: f64,
}

impl BenchmarkProfile {
    /// Fraction of loads left to stable scalar accesses.
    pub fn w_scalar(&self) -> f64 {
        (1.0 - self.w_seq - self.w_pool - self.w_dm_conflict - self.w_pathological - self.w_far)
            .max(0.0)
    }

    /// Checks the internal consistency of the profile (fractions in range,
    /// stream weights not exceeding one). All built-in profiles satisfy
    /// this; it is public so user-defined profiles can be validated.
    pub fn is_consistent(&self) -> bool {
        let fracs = [
            self.load_frac,
            self.store_frac,
            self.branch_frac,
            self.fp_frac,
            self.call_frac,
            self.taken_bias,
            self.branch_predictability,
            self.xor_approx_accuracy,
            self.w_seq,
            self.w_pool,
            self.w_dm_conflict,
            self.dm_conflict_switch_prob,
            self.w_pathological,
            self.w_far,
        ];
        fracs.iter().all(|f| (0.0..=1.0).contains(f))
            && self.load_frac + self.store_frac + self.branch_frac < 1.0
            && self.w_seq + self.w_pool + self.w_dm_conflict + self.w_pathological + self.w_far
                <= 1.0 + 1e-9
            && self.avg_basic_block >= 2
            && self.code_footprint_blocks > 0
            && self.hot_functions > 0
            && self.pool_blocks > 0
            && self.dm_conflict_group >= 2
            && self.mean_dep_distance >= 1.0
    }
}

// The profiles below are calibrated against the paper's published
// per-benchmark data: Table 2 (inputs and instruction counts), Table 4
// (miss rates), the Figure 5 discussion (way-prediction accuracies and the
// high miss rates of applu, mgrid, swim), the Figure 6 discussion (fraction
// of non-conflicting accesses), and the Figure 10 discussion (fpppp's
// i-cache thrashing, FP codes' long basic blocks).

static APPLU: BenchmarkProfile = BenchmarkProfile {
    name: "applu",
    floating_point: true,
    load_frac: 0.27,
    store_frac: 0.09,
    branch_frac: 0.06,
    fp_frac: 0.75,
    avg_basic_block: 16,
    code_footprint_blocks: 220,
    hot_functions: 8,
    call_frac: 0.03,
    taken_bias: 0.72,
    branch_predictability: 0.96,
    w_seq: 0.22,
    seq_stride: 8,
    w_pool: 0.02,
    pool_blocks: 600,
    w_dm_conflict: 0.15,
    dm_conflict_group: 3,
    dm_conflict_switch_prob: 0.08,
    w_pathological: 0.0,
    w_far: 0.012,
    xor_approx_accuracy: 0.80,
    mean_dep_distance: 7.0,
    paper_dm_miss_rate: 8.2,
    paper_sa_miss_rate: 7.0,
    paper_instructions_billions: 1.07,
};

static FPPPP: BenchmarkProfile = BenchmarkProfile {
    name: "fpppp",
    floating_point: true,
    load_frac: 0.30,
    store_frac: 0.14,
    branch_frac: 0.03,
    fp_frac: 0.85,
    avg_basic_block: 24,
    code_footprint_blocks: 1400,
    hot_functions: 10,
    call_frac: 0.04,
    taken_bias: 0.65,
    branch_predictability: 0.95,
    w_seq: 0.01,
    seq_stride: 8,
    w_pool: 0.01,
    pool_blocks: 600,
    w_dm_conflict: 0.29,
    dm_conflict_group: 4,
    dm_conflict_switch_prob: 0.20,
    w_pathological: 0.0,
    w_far: 0.002,
    xor_approx_accuracy: 0.88,
    mean_dep_distance: 8.0,
    paper_dm_miss_rate: 6.3,
    paper_sa_miss_rate: 0.5,
    paper_instructions_billions: 0.234,
};

static GCC: BenchmarkProfile = BenchmarkProfile {
    name: "gcc",
    floating_point: false,
    load_frac: 0.25,
    store_frac: 0.12,
    branch_frac: 0.17,
    fp_frac: 0.0,
    avg_basic_block: 6,
    code_footprint_blocks: 420,
    hot_functions: 24,
    call_frac: 0.10,
    taken_bias: 0.62,
    branch_predictability: 0.90,
    w_seq: 0.07,
    seq_stride: 8,
    w_pool: 0.03,
    pool_blocks: 600,
    w_dm_conflict: 0.22,
    dm_conflict_group: 3,
    dm_conflict_switch_prob: 0.08,
    w_pathological: 0.0,
    w_far: 0.010,
    xor_approx_accuracy: 0.85,
    mean_dep_distance: 4.0,
    paper_dm_miss_rate: 5.1,
    paper_sa_miss_rate: 3.3,
    paper_instructions_billions: 0.345,
};

static GO: BenchmarkProfile = BenchmarkProfile {
    name: "go",
    floating_point: false,
    load_frac: 0.24,
    store_frac: 0.08,
    branch_frac: 0.15,
    fp_frac: 0.0,
    avg_basic_block: 6,
    code_footprint_blocks: 380,
    hot_functions: 20,
    call_frac: 0.08,
    taken_bias: 0.58,
    branch_predictability: 0.82,
    w_seq: 0.04,
    seq_stride: 8,
    w_pool: 0.02,
    pool_blocks: 600,
    w_dm_conflict: 0.26,
    dm_conflict_group: 3,
    dm_conflict_switch_prob: 0.15,
    w_pathological: 0.0,
    w_far: 0.006,
    xor_approx_accuracy: 0.84,
    mean_dep_distance: 4.0,
    paper_dm_miss_rate: 5.9,
    paper_sa_miss_rate: 2.0,
    paper_instructions_billions: 1.07,
};

static LI: BenchmarkProfile = BenchmarkProfile {
    name: "li",
    floating_point: false,
    load_frac: 0.28,
    store_frac: 0.14,
    branch_frac: 0.18,
    fp_frac: 0.0,
    avg_basic_block: 5,
    code_footprint_blocks: 180,
    hot_functions: 16,
    call_frac: 0.14,
    taken_bias: 0.63,
    branch_predictability: 0.91,
    w_seq: 0.06,
    seq_stride: 8,
    w_pool: 0.03,
    pool_blocks: 600,
    w_dm_conflict: 0.20,
    dm_conflict_group: 3,
    dm_conflict_switch_prob: 0.07,
    w_pathological: 0.0,
    w_far: 0.012,
    xor_approx_accuracy: 0.86,
    mean_dep_distance: 3.5,
    paper_dm_miss_rate: 4.7,
    paper_sa_miss_rate: 3.3,
    paper_instructions_billions: 0.207,
};

static M88KSIM: BenchmarkProfile = BenchmarkProfile {
    name: "m88ksim",
    floating_point: false,
    load_frac: 0.23,
    store_frac: 0.09,
    branch_frac: 0.17,
    fp_frac: 0.0,
    avg_basic_block: 6,
    code_footprint_blocks: 260,
    hot_functions: 18,
    call_frac: 0.11,
    taken_bias: 0.64,
    branch_predictability: 0.93,
    w_seq: 0.02,
    seq_stride: 8,
    w_pool: 0.015,
    pool_blocks: 600,
    w_dm_conflict: 0.22,
    dm_conflict_group: 3,
    dm_conflict_switch_prob: 0.10,
    w_pathological: 0.0,
    w_far: 0.005,
    xor_approx_accuracy: 0.87,
    mean_dep_distance: 4.0,
    paper_dm_miss_rate: 3.5,
    paper_sa_miss_rate: 1.3,
    paper_instructions_billions: 0.135,
};

static MGRID: BenchmarkProfile = BenchmarkProfile {
    name: "mgrid",
    floating_point: true,
    load_frac: 0.33,
    store_frac: 0.05,
    branch_frac: 0.03,
    fp_frac: 0.80,
    avg_basic_block: 20,
    code_footprint_blocks: 120,
    hot_functions: 5,
    call_frac: 0.02,
    taken_bias: 0.80,
    branch_predictability: 0.97,
    w_seq: 0.17,
    seq_stride: 8,
    w_pool: 0.01,
    pool_blocks: 600,
    w_dm_conflict: 0.05,
    dm_conflict_group: 2,
    dm_conflict_switch_prob: 0.06,
    w_pathological: 0.0,
    w_far: 0.007,
    xor_approx_accuracy: 0.78,
    mean_dep_distance: 8.0,
    paper_dm_miss_rate: 5.4,
    paper_sa_miss_rate: 5.1,
    paper_instructions_billions: 1.07,
};

static PERL: BenchmarkProfile = BenchmarkProfile {
    name: "perl",
    floating_point: false,
    load_frac: 0.26,
    store_frac: 0.13,
    branch_frac: 0.17,
    fp_frac: 0.0,
    avg_basic_block: 6,
    code_footprint_blocks: 300,
    hot_functions: 20,
    call_frac: 0.12,
    taken_bias: 0.62,
    branch_predictability: 0.93,
    w_seq: 0.02,
    seq_stride: 8,
    w_pool: 0.015,
    pool_blocks: 600,
    w_dm_conflict: 0.20,
    dm_conflict_group: 3,
    dm_conflict_switch_prob: 0.085,
    w_pathological: 0.0,
    w_far: 0.005,
    xor_approx_accuracy: 0.88,
    mean_dep_distance: 4.0,
    paper_dm_miss_rate: 3.0,
    paper_sa_miss_rate: 1.3,
    paper_instructions_billions: 1.07,
};

static SWIM: BenchmarkProfile = BenchmarkProfile {
    name: "swim",
    floating_point: true,
    load_frac: 0.30,
    store_frac: 0.10,
    branch_frac: 0.03,
    fp_frac: 0.80,
    avg_basic_block: 18,
    code_footprint_blocks: 100,
    hot_functions: 5,
    call_frac: 0.02,
    taken_bias: 0.82,
    branch_predictability: 0.97,
    w_seq: 0.24,
    seq_stride: 8,
    w_pool: 0.02,
    pool_blocks: 600,
    w_dm_conflict: 0.06,
    dm_conflict_group: 3,
    dm_conflict_switch_prob: 0.08,
    w_pathological: 0.13,
    w_far: 0.012,
    xor_approx_accuracy: 0.70,
    mean_dep_distance: 7.0,
    paper_dm_miss_rate: 23.3,
    paper_sa_miss_rate: 25.2,
    paper_instructions_billions: 0.492,
};

static TROFF: BenchmarkProfile = BenchmarkProfile {
    name: "troff",
    floating_point: false,
    load_frac: 0.25,
    store_frac: 0.11,
    branch_frac: 0.18,
    fp_frac: 0.0,
    avg_basic_block: 5,
    code_footprint_blocks: 220,
    hot_functions: 16,
    call_frac: 0.12,
    taken_bias: 0.63,
    branch_predictability: 0.94,
    w_seq: 0.02,
    seq_stride: 8,
    w_pool: 0.005,
    pool_blocks: 600,
    w_dm_conflict: 0.21,
    dm_conflict_group: 3,
    dm_conflict_switch_prob: 0.09,
    w_pathological: 0.0,
    w_far: 0.002,
    xor_approx_accuracy: 0.90,
    mean_dep_distance: 4.0,
    paper_dm_miss_rate: 2.7,
    paper_sa_miss_rate: 0.8,
    paper_instructions_billions: 0.051,
};

static VORTEX: BenchmarkProfile = BenchmarkProfile {
    name: "vortex",
    floating_point: false,
    load_frac: 0.28,
    store_frac: 0.16,
    branch_frac: 0.15,
    fp_frac: 0.0,
    avg_basic_block: 6,
    code_footprint_blocks: 460,
    hot_functions: 26,
    call_frac: 0.12,
    taken_bias: 0.64,
    branch_predictability: 0.95,
    w_seq: 0.05,
    seq_stride: 8,
    w_pool: 0.01,
    pool_blocks: 600,
    w_dm_conflict: 0.18,
    dm_conflict_group: 3,
    dm_conflict_switch_prob: 0.07,
    w_pathological: 0.0,
    w_far: 0.004,
    xor_approx_accuracy: 0.88,
    mean_dep_distance: 4.5,
    paper_dm_miss_rate: 3.1,
    paper_sa_miss_rate: 1.8,
    paper_instructions_billions: 1.07,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_eleven_unique_benchmarks() {
        let all = Benchmark::all();
        assert_eq!(all.len(), 11);
        let mut names: Vec<_> = all.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn every_profile_is_consistent() {
        for b in Benchmark::all() {
            let p = b.profile();
            assert!(p.is_consistent(), "{} profile inconsistent", p.name);
            assert!(p.w_scalar() > 0.0, "{} has no scalar traffic", p.name);
        }
    }

    #[test]
    fn table4_reference_data_is_recorded() {
        // Spot-check a few Table 4 entries.
        assert_eq!(Benchmark::Swim.profile().paper_sa_miss_rate, 25.2);
        assert_eq!(Benchmark::Fpppp.profile().paper_dm_miss_rate, 6.3);
        assert_eq!(Benchmark::Gcc.profile().paper_sa_miss_rate, 3.3);
    }

    #[test]
    fn swim_is_the_only_pathological_benchmark() {
        for b in Benchmark::all() {
            let p = b.profile();
            if b == Benchmark::Swim {
                assert!(p.w_pathological > 0.0);
                assert!(p.paper_sa_miss_rate > p.paper_dm_miss_rate);
            } else {
                assert_eq!(p.w_pathological, 0.0, "{}", p.name);
                assert!(p.paper_sa_miss_rate <= p.paper_dm_miss_rate, "{}", p.name);
            }
        }
    }

    #[test]
    fn fpppp_thrashes_a_16k_icache() {
        // 16 KB / 32 B = 512 blocks; fpppp's hot code exceeds it.
        assert!(Benchmark::Fpppp.profile().code_footprint_blocks > 512);
        for b in Benchmark::all() {
            if b != Benchmark::Fpppp {
                assert!(b.profile().code_footprint_blocks < 512, "{}", b.name());
            }
        }
    }

    #[test]
    fn floating_point_codes_have_longer_basic_blocks() {
        let fp_min = Benchmark::all()
            .iter()
            .filter(|b| b.profile().floating_point)
            .map(|b| b.profile().avg_basic_block)
            .min()
            .expect("fp benchmarks exist");
        let int_max = Benchmark::all()
            .iter()
            .filter(|b| !b.profile().floating_point)
            .map(|b| b.profile().avg_basic_block)
            .max()
            .expect("int benchmarks exist");
        assert!(fp_min > int_max);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::M88ksim.to_string(), "m88ksim");
    }
}
