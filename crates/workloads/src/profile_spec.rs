//! Versioned workload-profile files: a small JSON config format that names
//! a set of scenarios (and their parameters) so experiment CLIs can run a
//! reproducible workload mix via `--profile <file>`.
//!
//! A profile file looks like:
//!
//! ```json
//! {
//!   "version": 1,
//!   "name": "adversarial-stress",
//!   "tier": "stress",
//!   "scenarios": [
//!     { "scenario": "way_alias_thrash", "table_entries": 1024, "group": 4 },
//!     { "scenario": "conflict_chase", "blocks": 5 }
//!   ]
//! }
//! ```
//!
//! `scenarios` may be omitted, in which case the profile expands to the
//! tier's built-in adversarial family — the *scale-factor knob*: the same
//! file shape yields the [`ProfileTier::Expected`], [`ProfileTier::Stress`]
//! or [`ProfileTier::Adversarial`] parameterisation of the three
//! adversarial generators. Unknown fields, unknown scenario names and
//! version mismatches are hard errors with positioned messages, so a typo
//! in a config cannot silently weaken a stress run.

use std::fmt;
use std::path::Path;

use serde::{Serialize, Value};

use crate::scenario::{Scenario, REF_ASSOC};
use crate::workload::WorkloadSpec;

/// Current profile-file format version.
pub const PROFILE_VERSION: u32 = 1;

/// The scale-factor knob: one tier selects a whole parameterisation of the
/// adversarial family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProfileTier {
    /// Gentle parameters: alias groups and conflict sets inside the
    /// reference associativity, slow phase flips.
    Expected,
    /// The default stress parameters (matching [`Scenario::adversarial`]).
    Stress,
    /// Worst-case parameters: alias groups and conflict sets beyond the
    /// associativity, rapid phase flips.
    Adversarial,
}

impl ProfileTier {
    /// All tiers, mildest first.
    pub fn all() -> [ProfileTier; 3] {
        [Self::Expected, Self::Stress, Self::Adversarial]
    }

    /// The tier's lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            ProfileTier::Expected => "expected",
            ProfileTier::Stress => "stress",
            ProfileTier::Adversarial => "adversarial",
        }
    }

    /// Looks a tier up by [`ProfileTier::name`].
    pub fn parse(name: &str) -> Option<ProfileTier> {
        Self::all().into_iter().find(|t| t.name() == name)
    }

    /// The tier's parameterisation of the three adversarial generators.
    /// The conflict chase straddles the reference associativity across the
    /// tiers (`REF_ASSOC` − 1 / + 0 / + 1), which is where the miss-rate
    /// cliff lives.
    pub fn scenarios(self) -> [Scenario; 3] {
        match self {
            ProfileTier::Expected => [
                Scenario::WayAliasThrash {
                    table_entries: 1024,
                    group: 2,
                },
                Scenario::PhaseFlip {
                    period_ops: 4096,
                    conflict_ways: 4,
                },
                Scenario::ConflictChase {
                    blocks: REF_ASSOC - 1,
                },
            ],
            ProfileTier::Stress => Scenario::adversarial(),
            ProfileTier::Adversarial => [
                Scenario::WayAliasThrash {
                    table_entries: 1024,
                    group: 8,
                },
                Scenario::PhaseFlip {
                    period_ops: 256,
                    conflict_ways: 8,
                },
                Scenario::ConflictChase {
                    blocks: REF_ASSOC + 1,
                },
            ],
        }
    }
}

impl fmt::Display for ProfileTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parsed workload profile: a named, versioned set of scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSpec {
    /// Format version (always [`PROFILE_VERSION`] after a successful load).
    pub version: u32,
    /// Human-readable profile name (used in reports).
    pub name: String,
    /// The scale tier the profile was built for.
    pub tier: ProfileTier,
    /// The scenarios the profile runs.
    pub scenarios: Vec<Scenario>,
}

impl ProfileSpec {
    /// The built-in adversarial profile at `tier` scale.
    pub fn builtin(tier: ProfileTier) -> ProfileSpec {
        ProfileSpec {
            version: PROFILE_VERSION,
            name: format!("adversarial-{tier}"),
            tier,
            scenarios: tier.scenarios().to_vec(),
        }
    }

    /// The built-in profiles, one per tier.
    pub fn builtin_all() -> [ProfileSpec; 3] {
        ProfileTier::all().map(Self::builtin)
    }

    /// The profile's scenarios as workload specs, ready for a sweep plan.
    pub fn workloads(&self) -> Vec<WorkloadSpec> {
        self.scenarios
            .iter()
            .map(|s| WorkloadSpec::Scenario(*s))
            .collect()
    }

    /// Renders the profile as pretty-printed JSON (the on-disk format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profiles contain no non-finite floats")
    }

    /// Reads and validates a profile file.
    ///
    /// # Errors
    ///
    /// Returns a [`ProfileError`] naming `path` if the file cannot be read,
    /// is not valid JSON, has the wrong version, or contains unknown or
    /// ill-typed fields.
    pub fn load(path: impl AsRef<Path>) -> Result<ProfileSpec, ProfileError> {
        let path = path.as_ref();
        let label = path.display().to_string();
        let text = std::fs::read_to_string(path).map_err(|err| ProfileError::Read {
            path: label.clone(),
            detail: if err.kind() == std::io::ErrorKind::NotFound {
                "file not found".to_string()
            } else {
                err.to_string()
            },
        })?;
        Self::from_json(&text, &label)
    }

    /// Parses a profile from JSON text; `origin` names the source in
    /// errors (a path for [`ProfileSpec::load`], any label in tests).
    ///
    /// # Errors
    ///
    /// Returns a [`ProfileError`] on malformed JSON, a version other than
    /// [`PROFILE_VERSION`], or unknown/ill-typed fields.
    pub fn from_json(text: &str, origin: &str) -> Result<ProfileSpec, ProfileError> {
        let value = serde_json::from_str(text).map_err(|err| ProfileError::Json {
            path: origin.to_string(),
            detail: err.to_string(),
        })?;
        let fields = expect_object(&value, origin)?;
        check_fields(fields, &["version", "name", "tier", "scenarios"], origin)?;

        let version =
            get_u32(fields, "version", origin)?.ok_or_else(|| ProfileError::MissingField {
                path: origin.to_string(),
                field: "version",
            })?;
        if version != PROFILE_VERSION {
            return Err(ProfileError::Version {
                path: origin.to_string(),
                found: version,
            });
        }

        let tier = match find(fields, "tier") {
            None => ProfileTier::Stress,
            Some(value) => {
                let name = value
                    .as_str()
                    .ok_or_else(|| invalid(origin, "field `tier` must be a string"))?;
                ProfileTier::parse(name).ok_or_else(|| {
                    invalid(
                        origin,
                        &format!(
                            "unknown tier `{name}` (expected one of: expected, stress, adversarial)"
                        ),
                    )
                })?
            }
        };

        let name = match find(fields, "name") {
            None => format!("adversarial-{tier}"),
            Some(value) => value
                .as_str()
                .ok_or_else(|| invalid(origin, "field `name` must be a string"))?
                .to_string(),
        };

        let scenarios = match find(fields, "scenarios") {
            None => tier.scenarios().to_vec(),
            Some(value) => {
                let items = value
                    .as_array()
                    .ok_or_else(|| invalid(origin, "field `scenarios` must be an array"))?;
                if items.is_empty() {
                    return Err(invalid(origin, "field `scenarios` must not be empty"));
                }
                items
                    .iter()
                    .map(|item| parse_scenario(item, origin))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };

        Ok(ProfileSpec {
            version,
            name,
            tier,
            scenarios,
        })
    }
}

impl Serialize for ProfileTier {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Serialize for Scenario {
    fn to_value(&self) -> Value {
        let mut fields = vec![("scenario".to_string(), Value::Str(self.name().to_string()))];
        let mut push = |key: &str, value: u64| fields.push((key.to_string(), Value::UInt(value)));
        match *self {
            Scenario::PointerChase { nodes, node_stride } => {
                push("nodes", u64::from(nodes));
                push("node_stride", u64::from(node_stride));
            }
            Scenario::StridedStream {
                stride,
                conflict_permille,
            } => {
                push("stride", u64::from(stride));
                push("conflict_permille", u64::from(conflict_permille));
            }
            Scenario::PhaseMix { phase_ops } => push("phase_ops", u64::from(phase_ops)),
            Scenario::WayAliasThrash {
                table_entries,
                group,
            } => {
                push("table_entries", u64::from(table_entries));
                push("group", u64::from(group));
            }
            Scenario::PhaseFlip {
                period_ops,
                conflict_ways,
            } => {
                push("period_ops", u64::from(period_ops));
                push("conflict_ways", u64::from(conflict_ways));
            }
            Scenario::ConflictChase { blocks } => push("blocks", u64::from(blocks)),
        }
        Value::Object(fields)
    }
}

impl Serialize for ProfileSpec {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".to_string(), Value::UInt(u64::from(self.version))),
            ("name".to_string(), Value::Str(self.name.clone())),
            ("tier".to_string(), self.tier.to_value()),
            ("scenarios".to_string(), self.scenarios.to_value()),
        ])
    }
}

/// Why a profile file was rejected. The [`fmt::Display`] messages are part
/// of the CLI contract (asserted by the error-path tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// The file could not be read.
    Read {
        /// Path as given on the command line.
        path: String,
        /// Stable description of the I/O failure.
        detail: String,
    },
    /// The file is not valid JSON.
    Json {
        /// Path as given on the command line.
        path: String,
        /// Parser message with line/column.
        detail: String,
    },
    /// The file declares an unsupported format version.
    Version {
        /// Path as given on the command line.
        path: String,
        /// The declared version.
        found: u32,
    },
    /// An object carries a field the format does not define.
    UnknownField {
        /// Path as given on the command line.
        path: String,
        /// The offending field name.
        field: String,
        /// Comma-separated list of accepted fields.
        allowed: String,
    },
    /// A required field is absent.
    MissingField {
        /// Path as given on the command line.
        path: String,
        /// The absent field name.
        field: &'static str,
    },
    /// A field is present but ill-typed, out of range, or names an unknown
    /// scenario or tier.
    Invalid {
        /// Path as given on the command line.
        path: String,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Read { path, detail } => {
                write!(f, "cannot read profile `{path}`: {detail}")
            }
            ProfileError::Json { path, detail } => {
                write!(f, "profile `{path}` is not valid JSON: {detail}")
            }
            ProfileError::Version { path, found } => write!(
                f,
                "profile `{path}` has unsupported version {found} (expected {PROFILE_VERSION})"
            ),
            ProfileError::UnknownField {
                path,
                field,
                allowed,
            } => write!(
                f,
                "unknown field `{field}` in profile `{path}` (expected one of: {allowed})"
            ),
            ProfileError::MissingField { path, field } => {
                write!(f, "missing field `{field}` in profile `{path}`")
            }
            ProfileError::Invalid { path, detail } => {
                write!(f, "invalid profile `{path}`: {detail}")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

fn invalid(origin: &str, detail: &str) -> ProfileError {
    ProfileError::Invalid {
        path: origin.to_string(),
        detail: detail.to_string(),
    }
}

fn expect_object<'v>(
    value: &'v Value,
    origin: &str,
) -> Result<&'v [(String, Value)], ProfileError> {
    value
        .as_object()
        .ok_or_else(|| invalid(origin, "top level must be an object"))
}

fn find<'v>(fields: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn check_fields(
    fields: &[(String, Value)],
    allowed: &[&str],
    origin: &str,
) -> Result<(), ProfileError> {
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(ProfileError::UnknownField {
                path: origin.to_string(),
                field: key.clone(),
                allowed: allowed.join(", "),
            });
        }
    }
    Ok(())
}

fn get_u32(
    fields: &[(String, Value)],
    key: &'static str,
    origin: &str,
) -> Result<Option<u32>, ProfileError> {
    match find(fields, key) {
        None => Ok(None),
        Some(value) => {
            let wide = value.as_u64().ok_or_else(|| {
                invalid(
                    origin,
                    &format!("field `{key}` must be a non-negative integer"),
                )
            })?;
            u32::try_from(wide)
                .map(Some)
                .map_err(|_| invalid(origin, &format!("field `{key}` is out of range")))
        }
    }
}

fn require_u32(
    fields: &[(String, Value)],
    key: &'static str,
    default: u32,
    origin: &str,
) -> Result<u32, ProfileError> {
    Ok(get_u32(fields, key, origin)?.unwrap_or(default))
}

fn parse_scenario(value: &Value, origin: &str) -> Result<Scenario, ProfileError> {
    let fields = value
        .as_object()
        .ok_or_else(|| invalid(origin, "each scenario must be an object"))?;
    let kind = find(fields, "scenario")
        .ok_or_else(|| ProfileError::MissingField {
            path: origin.to_string(),
            field: "scenario",
        })?
        .as_str()
        .ok_or_else(|| invalid(origin, "field `scenario` must be a string"))?;

    // Parameters default to the named default scenario's values, so a
    // profile can pin only the knobs it cares about.
    let default = Scenario::parse(kind).ok_or_else(|| {
        invalid(
            origin,
            &format!(
                "unknown scenario `{kind}` (expected one of: {})",
                Scenario::all().map(|s| s.name()).join(", ")
            ),
        )
    })?;

    let scenario = match default {
        Scenario::PointerChase { nodes, node_stride } => {
            check_fields(fields, &["scenario", "nodes", "node_stride"], origin)?;
            Scenario::PointerChase {
                nodes: require_u32(fields, "nodes", nodes, origin)?,
                node_stride: require_u32(fields, "node_stride", node_stride, origin)?,
            }
        }
        Scenario::StridedStream {
            stride,
            conflict_permille,
        } => {
            check_fields(fields, &["scenario", "stride", "conflict_permille"], origin)?;
            let permille = require_u32(
                fields,
                "conflict_permille",
                u32::from(conflict_permille),
                origin,
            )?;
            Scenario::StridedStream {
                stride: require_u32(fields, "stride", stride, origin)?,
                conflict_permille: u16::try_from(permille.min(1000)).expect("clamped to 1000"),
            }
        }
        Scenario::PhaseMix { phase_ops } => {
            check_fields(fields, &["scenario", "phase_ops"], origin)?;
            Scenario::PhaseMix {
                phase_ops: require_u32(fields, "phase_ops", phase_ops, origin)?,
            }
        }
        Scenario::WayAliasThrash {
            table_entries,
            group,
        } => {
            check_fields(fields, &["scenario", "table_entries", "group"], origin)?;
            Scenario::WayAliasThrash {
                table_entries: require_u32(fields, "table_entries", table_entries, origin)?,
                group: require_u32(fields, "group", group, origin)?,
            }
        }
        Scenario::PhaseFlip {
            period_ops,
            conflict_ways,
        } => {
            check_fields(fields, &["scenario", "period_ops", "conflict_ways"], origin)?;
            Scenario::PhaseFlip {
                period_ops: require_u32(fields, "period_ops", period_ops, origin)?,
                conflict_ways: require_u32(fields, "conflict_ways", conflict_ways, origin)?,
            }
        }
        Scenario::ConflictChase { blocks } => {
            check_fields(fields, &["scenario", "blocks"], origin)?;
            Scenario::ConflictChase {
                blocks: require_u32(fields, "blocks", blocks, origin)?,
            }
        }
    };
    Ok(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_profiles_round_trip_through_json() {
        for profile in ProfileSpec::builtin_all() {
            let text = profile.to_json();
            let back = ProfileSpec::from_json(&text, "builtin").expect("round trip");
            assert_eq!(back, profile);
        }
    }

    #[test]
    fn tier_alone_expands_to_the_builtin_family() {
        let spec = ProfileSpec::from_json(r#"{"version": 1, "tier": "adversarial"}"#, "t")
            .expect("tier-only profile");
        assert_eq!(
            spec.scenarios,
            ProfileTier::Adversarial.scenarios().to_vec()
        );
        assert_eq!(spec.name, "adversarial-adversarial");
    }

    #[test]
    fn tiers_straddle_the_associativity_threshold() {
        let chase_blocks = |tier: ProfileTier| {
            tier.scenarios()
                .iter()
                .find_map(|s| match s {
                    Scenario::ConflictChase { blocks } => Some(*blocks),
                    _ => None,
                })
                .expect("every tier carries a conflict chase")
        };
        assert_eq!(chase_blocks(ProfileTier::Expected), REF_ASSOC - 1);
        assert_eq!(chase_blocks(ProfileTier::Stress), REF_ASSOC);
        assert_eq!(chase_blocks(ProfileTier::Adversarial), REF_ASSOC + 1);
    }

    #[test]
    fn partial_scenario_objects_inherit_defaults() {
        let spec = ProfileSpec::from_json(
            r#"{"version": 1, "scenarios": [{"scenario": "way_alias_thrash", "group": 8}]}"#,
            "t",
        )
        .expect("partial scenario");
        assert_eq!(
            spec.scenarios,
            vec![Scenario::WayAliasThrash {
                table_entries: 1024,
                group: 8,
            }]
        );
    }

    #[test]
    fn version_mismatch_is_rejected_with_the_exact_message() {
        let err = ProfileSpec::from_json(r#"{"version": 9}"#, "p.json").unwrap_err();
        assert_eq!(
            err.to_string(),
            "profile `p.json` has unsupported version 9 (expected 1)"
        );
    }

    #[test]
    fn unknown_fields_are_rejected_with_the_exact_message() {
        let err =
            ProfileSpec::from_json(r#"{"version": 1, "scenarois": []}"#, "p.json").unwrap_err();
        assert_eq!(
            err.to_string(),
            "unknown field `scenarois` in profile `p.json` \
             (expected one of: version, name, tier, scenarios)"
        );
        let err = ProfileSpec::from_json(
            r#"{"version": 1, "scenarios": [{"scenario": "conflict_chase", "block": 5}]}"#,
            "p.json",
        )
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "unknown field `block` in profile `p.json` (expected one of: scenario, blocks)"
        );
    }

    #[test]
    fn missing_file_and_bad_json_name_the_source() {
        let err = ProfileSpec::load("/nonexistent/profile.json").unwrap_err();
        assert_eq!(
            err.to_string(),
            "cannot read profile `/nonexistent/profile.json`: file not found"
        );
        let err = ProfileSpec::from_json("{\"version\": }", "p.json").unwrap_err();
        assert!(
            err.to_string()
                .starts_with("profile `p.json` is not valid JSON: expected value at line 1"),
            "{err}"
        );
    }

    #[test]
    fn unknown_scenario_and_tier_are_rejected() {
        let err = ProfileSpec::from_json(
            r#"{"version": 1, "scenarios": [{"scenario": "nope"}]}"#,
            "p.json",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown scenario `nope`"), "{err}");
        let err =
            ProfileSpec::from_json(r#"{"version": 1, "tier": "mild"}"#, "p.json").unwrap_err();
        assert!(err.to_string().contains("unknown tier `mild`"), "{err}");
    }

    #[test]
    fn workloads_wrap_the_scenarios() {
        let profile = ProfileSpec::builtin(ProfileTier::Stress);
        let workloads = profile.workloads();
        assert_eq!(workloads.len(), 3);
        for (workload, scenario) in workloads.iter().zip(profile.scenarios.iter()) {
            assert_eq!(*workload, WorkloadSpec::Scenario(*scenario));
        }
    }
}
