//! Parameterised workload scenarios beyond the paper's eleven SPEC profiles.
//!
//! The benchmark profiles in [`crate::BenchmarkProfile`] mimic specific SPEC CPU95
//! applications; the scenarios here are *stress patterns* with explicit
//! knobs, built to exercise the predictor stack from new angles and to give
//! the trace capture/replay path diverse material:
//!
//! * [`Scenario::PointerChase`] — a linked-list ring traversal: every load's
//!   address is produced by the previous load, so the out-of-order core
//!   cannot overlap misses, and way-prediction sees a per-PC stream that
//!   revisits blocks only once per lap;
//! * [`Scenario::StridedStream`] — a strided streaming walk with
//!   configurable *conflict pressure*: a per-mille knob routes accesses to a
//!   rotation over cache-aliasing blocks, dialling the direct-mapped
//!   conflict-miss rate continuously;
//! * [`Scenario::PhaseMix`] — a phase-switching mix that cycles between
//!   streaming, a cache-resident hot pool, and conflict-heavy phases, each
//!   with its own code region, re-training the predictors at every switch.
//!
//! Like [`crate::TraceGenerator`], a [`ScenarioGenerator`] is a fully
//! deterministic iterator of [`MicroOp`]s given `(scenario, ops, seed)`.
//!
//! # Example
//!
//! ```
//! use wp_workloads::{Scenario, ScenarioGenerator};
//!
//! let scenario = Scenario::pointer_chase();
//! let trace: Vec<_> = ScenarioGenerator::new(scenario, 1_000, 7).collect();
//! assert_eq!(trace.len(), 1_000);
//! // Deterministic: the same (scenario, ops, seed) replays identically.
//! let again: Vec<_> = ScenarioGenerator::new(scenario, 1_000, 7).collect();
//! assert_eq!(trace, again);
//! ```

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wp_mem::Addr;

use crate::op::{BranchClass, MicroOp, OpKind};

/// Code region base for scenario loop bodies.
const CODE_BASE: Addr = 0x0040_0000;
/// Heap region holding the pointer-chase nodes.
const HEAP_BASE: Addr = 0x7000_0000;
/// Region of the streaming array.
const STREAM_BASE: Addr = 0x8000_0000;
/// Region of the conflict-rotation blocks.
const CONFLICT_BASE: Addr = 0x9000_0000;
/// Region of the cache-resident hot pool.
const HOT_BASE: Addr = 0xa000_0000;

/// Block size the patterns are constructed for (the paper's 32-byte L1
/// blocks).
const BLOCK_BYTES: u64 = 32;
/// Capacity of one direct-mapped way of the reference 16 KB 4-way L1; blocks
/// this far apart alias in both the direct-mapped and the set-associative
/// organisation.
const WAY_BYTES: u64 = 16 * 1024;
/// Length of the streaming array before the walk wraps (much larger than any
/// L1 the experiments sweep).
const STREAM_LENGTH: u64 = 4 * 1024 * 1024;
/// Blocks in the conflict rotation (exceeds every associativity swept).
const CONFLICT_BLOCKS: u64 = 12;
/// Blocks in the cache-resident hot pool (fits comfortably in 16 KB).
const HOT_BLOCKS: u64 = 64;

/// A parameterised stress scenario. All parameters are plain integers so a
/// scenario can serve as (part of) a simulation dedup key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scenario {
    /// A pointer-chasing traversal of a singly linked ring of `nodes` nodes
    /// laid out `node_stride` bytes apart in a shuffled order.
    PointerChase {
        /// Number of nodes in the ring.
        nodes: u32,
        /// Distance in bytes between consecutive node slots.
        node_stride: u32,
    },
    /// A strided streaming walk with configurable conflict pressure.
    StridedStream {
        /// Stride in bytes between consecutive stream accesses.
        stride: u32,
        /// Per-mille of loads redirected to the conflict-block rotation
        /// (0 = pure streaming, 1000 = pure conflict thrash).
        conflict_permille: u16,
    },
    /// A phase-switching mix cycling streaming → hot-pool → conflict phases.
    PhaseMix {
        /// Ops per phase before switching to the next behaviour.
        phase_ops: u32,
    },
}

impl Scenario {
    /// The default pointer-chase: 4096 nodes, 64 bytes apart (a 256 KB
    /// working set that misses in every L1 the experiments sweep).
    pub fn pointer_chase() -> Self {
        Scenario::PointerChase {
            nodes: 4096,
            node_stride: 64,
        }
    }

    /// The default strided stream: 64-byte stride with 15 % of loads on the
    /// conflict rotation.
    pub fn strided_stream() -> Self {
        Scenario::StridedStream {
            stride: 64,
            conflict_permille: 150,
        }
    }

    /// The default phase mix: switch behaviour every 20 000 ops.
    pub fn phase_mix() -> Self {
        Scenario::PhaseMix { phase_ops: 20_000 }
    }

    /// The three default scenarios.
    pub fn all() -> [Scenario; 3] {
        [
            Self::pointer_chase(),
            Self::strided_stream(),
            Self::phase_mix(),
        ]
    }

    /// The scenario's snake_case name (stable; used by workload CLIs).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::PointerChase { .. } => "pointer_chase",
            Scenario::StridedStream { .. } => "strided_stream",
            Scenario::PhaseMix { .. } => "phase_mix",
        }
    }

    /// Looks up a default-parameter scenario by [`Scenario::name`].
    pub fn parse(name: &str) -> Option<Scenario> {
        Self::all().into_iter().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic iterator of [`MicroOp`]s for one [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioGenerator {
    scenario: Scenario,
    num_ops: usize,
    emitted: usize,
    rng: StdRng,
    /// Ops of the current loop body not yet emitted.
    pending: VecDeque<MicroOp>,
    /// Pointer-chase: successor of each node in traversal order.
    next_node: Vec<u32>,
    /// Pointer-chase: the node the next load dereferences.
    current_node: u32,
    /// Strided stream: current offset into the array.
    stream_offset: u64,
    /// Conflict rotation cursor (strided stream and phase mix).
    conflict_cursor: u64,
    /// Phase mix: index of the current phase behaviour (0..3).
    phase: u32,
    /// Phase mix: ops emitted within the current phase.
    phase_emitted: u32,
}

impl ScenarioGenerator {
    /// Builds the generator; identical `(scenario, num_ops, seed)` triples
    /// produce identical streams.
    pub fn new(scenario: Scenario, num_ops: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce4_a110_0000_0000);
        let next_node = match scenario {
            Scenario::PointerChase { nodes, .. } => shuffled_ring(nodes.max(2), &mut rng),
            _ => Vec::new(),
        };
        Self {
            scenario,
            num_ops,
            emitted: 0,
            rng,
            pending: VecDeque::with_capacity(8),
            next_node,
            current_node: 0,
            stream_offset: 0,
            conflict_cursor: 0,
            phase: 0,
            phase_emitted: 0,
        }
    }

    /// The scenario being generated.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Address of the current conflict-rotation block, advancing the cursor.
    fn next_conflict_addr(&mut self) -> Addr {
        let addr = CONFLICT_BASE + (self.conflict_cursor % CONFLICT_BLOCKS) * WAY_BYTES;
        self.conflict_cursor += 1;
        addr
    }

    /// Queues the next loop-body iteration of the scenario.
    fn fill_pattern(&mut self) {
        match self.scenario {
            Scenario::PointerChase { node_stride, .. } => {
                let addr = HEAP_BASE + u64::from(self.current_node) * u64::from(node_stride);
                self.current_node = self.next_node[self.current_node as usize];
                let pc = CODE_BASE;
                // The next pointer is consumed by the *next* iteration's
                // load, four ops later: a serialized dependence chain.
                self.pending.extend([
                    MicroOp {
                        pc,
                        kind: OpKind::Load {
                            addr,
                            approx_addr: addr,
                        },
                        src_deps: [4, 0],
                    },
                    MicroOp {
                        pc: pc + 4,
                        kind: OpKind::IntAlu,
                        src_deps: [1, 0],
                    },
                    MicroOp {
                        pc: pc + 8,
                        kind: OpKind::IntAlu,
                        src_deps: [1, 0],
                    },
                    MicroOp {
                        pc: pc + 12,
                        kind: OpKind::Branch {
                            taken: true,
                            target: pc,
                            class: BranchClass::Conditional,
                        },
                        src_deps: [0, 0],
                    },
                ]);
            }
            Scenario::StridedStream {
                stride,
                conflict_permille,
            } => {
                let conflict = self.rng.gen_range(0u64..1000) < u64::from(conflict_permille);
                let addr = if conflict {
                    self.next_conflict_addr()
                } else {
                    let addr = STREAM_BASE + self.stream_offset;
                    self.stream_offset = (self.stream_offset + u64::from(stride)) % STREAM_LENGTH;
                    addr
                };
                let pc = CODE_BASE + 0x100;
                self.pending.extend([
                    MicroOp {
                        pc,
                        kind: OpKind::Load {
                            addr,
                            approx_addr: addr,
                        },
                        src_deps: [0, 0],
                    },
                    MicroOp {
                        pc: pc + 4,
                        kind: OpKind::FpAlu,
                        src_deps: [1, 0],
                    },
                    MicroOp {
                        pc: pc + 8,
                        kind: OpKind::Store { addr: addr ^ 0x8 },
                        src_deps: [2, 0],
                    },
                    MicroOp {
                        pc: pc + 12,
                        kind: OpKind::Branch {
                            taken: true,
                            target: pc,
                            class: BranchClass::Conditional,
                        },
                        src_deps: [0, 0],
                    },
                ]);
            }
            Scenario::PhaseMix { phase_ops } => {
                let phase_ops = phase_ops.max(4);
                if self.phase_emitted >= phase_ops {
                    self.phase = (self.phase + 1) % 3;
                    self.phase_emitted = 0;
                }
                // Each phase runs its own loop body in its own code region,
                // so every switch re-trains the i-cache and the predictors.
                let pc = CODE_BASE + 0x1000 * (1 + u64::from(self.phase));
                let addr = match self.phase {
                    0 => {
                        let addr = STREAM_BASE + self.stream_offset;
                        self.stream_offset = (self.stream_offset + BLOCK_BYTES) % STREAM_LENGTH;
                        addr
                    }
                    1 => {
                        let block = self.rng.gen_range(0..HOT_BLOCKS);
                        HOT_BASE + block * BLOCK_BYTES + self.rng.gen_range(0..BLOCK_BYTES / 8) * 8
                    }
                    _ => self.next_conflict_addr(),
                };
                self.pending.extend([
                    MicroOp {
                        pc,
                        kind: OpKind::Load {
                            addr,
                            approx_addr: addr,
                        },
                        src_deps: [0, 0],
                    },
                    MicroOp {
                        pc: pc + 4,
                        kind: OpKind::IntAlu,
                        src_deps: [1, 0],
                    },
                    MicroOp {
                        pc: pc + 8,
                        kind: OpKind::IntAlu,
                        src_deps: [1, 2],
                    },
                    MicroOp {
                        pc: pc + 12,
                        kind: OpKind::Branch {
                            taken: true,
                            target: pc,
                            class: BranchClass::Conditional,
                        },
                        src_deps: [0, 0],
                    },
                ]);
                self.phase_emitted += 4;
            }
        }
    }
}

impl Iterator for ScenarioGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        if self.emitted >= self.num_ops {
            return None;
        }
        if self.pending.is_empty() {
            self.fill_pattern();
        }
        self.emitted += 1;
        self.pending.pop_front()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.num_ops - self.emitted;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for ScenarioGenerator {}

/// A shuffled ring over `n` nodes: `next[i]` is the successor of node `i`,
/// and following `next` from any node visits all `n` nodes before returning.
fn shuffled_ring(n: u32, rng: &mut StdRng) -> Vec<u32> {
    // Fisher-Yates over the visit order, then link consecutive visits.
    let mut order: Vec<u32> = (0..n).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut next = vec![0u32; n as usize];
    for window in 0..order.len() {
        let from = order[window];
        let to = order[(window + 1) % order.len()];
        next[from as usize] = to;
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn trace(scenario: Scenario, ops: usize) -> Vec<MicroOp> {
        ScenarioGenerator::new(scenario, ops, 7).collect()
    }

    #[test]
    fn emits_exactly_the_requested_ops() {
        for scenario in Scenario::all() {
            for n in [0usize, 1, 3, 1000] {
                assert_eq!(trace(scenario, n).len(), n, "{scenario}");
            }
        }
    }

    #[test]
    fn identical_seeds_replay_identically() {
        for scenario in Scenario::all() {
            let a: Vec<_> = ScenarioGenerator::new(scenario, 5_000, 3).collect();
            let b: Vec<_> = ScenarioGenerator::new(scenario, 5_000, 3).collect();
            assert_eq!(a, b, "{scenario}");
        }
    }

    #[test]
    fn names_parse_back() {
        for scenario in Scenario::all() {
            assert_eq!(Scenario::parse(scenario.name()), Some(scenario));
        }
        assert_eq!(Scenario::parse("nope"), None);
    }

    #[test]
    fn pointer_chase_visits_every_node_once_per_lap() {
        let nodes = 64u32;
        let scenario = Scenario::PointerChase {
            nodes,
            node_stride: 64,
        };
        // One lap = nodes iterations of the 4-op body.
        let ops = trace(scenario, (nodes as usize) * 4);
        let loads: Vec<Addr> = ops
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Load { addr, .. } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(loads.len(), nodes as usize);
        let unique: HashSet<_> = loads.iter().collect();
        assert_eq!(unique.len(), nodes as usize, "a lap must not revisit nodes");
    }

    #[test]
    fn pointer_chase_loads_form_a_dependence_chain() {
        let ops = trace(Scenario::pointer_chase(), 400);
        for op in &ops {
            if op.kind.is_load() {
                assert_eq!(op.src_deps[0], 4, "each load consumes the previous one");
            }
        }
    }

    #[test]
    fn conflict_pressure_dials_distinct_block_reuse() {
        let pure = Scenario::StridedStream {
            stride: 64,
            conflict_permille: 0,
        };
        let heavy = Scenario::StridedStream {
            stride: 64,
            conflict_permille: 900,
        };
        let distinct_blocks = |scenario| {
            trace(scenario, 20_000)
                .iter()
                .filter_map(|op| match op.kind {
                    OpKind::Load { addr, .. } => Some(addr / BLOCK_BYTES),
                    _ => None,
                })
                .collect::<HashSet<_>>()
                .len()
        };
        // Pure streaming touches a new block every few accesses; heavy
        // conflict pressure recycles the same 12 aliasing blocks.
        assert!(distinct_blocks(pure) > 5 * distinct_blocks(heavy));
    }

    #[test]
    fn conflict_blocks_alias_in_the_reference_geometry() {
        let mut generator = ScenarioGenerator::new(
            Scenario::StridedStream {
                stride: 64,
                conflict_permille: 1000,
            },
            100,
            1,
        );
        let sets = WAY_BYTES / BLOCK_BYTES; // direct-mapped line count
        let lines: HashSet<_> = (&mut generator)
            .filter_map(|op| match op.kind {
                OpKind::Load { addr, .. } => Some((addr / BLOCK_BYTES) % sets),
                _ => None,
            })
            .collect();
        assert_eq!(lines.len(), 1, "conflict blocks must map to one line");
    }

    #[test]
    fn phase_mix_switches_code_regions() {
        let ops = trace(Scenario::PhaseMix { phase_ops: 100 }, 1_000);
        let pcs: HashSet<_> = ops.iter().map(|op| op.pc & !0xfff).collect();
        assert!(pcs.len() >= 3, "expected three phase code regions");
    }

    #[test]
    fn exact_size_iterator_reports_remaining() {
        let mut generator = ScenarioGenerator::new(Scenario::phase_mix(), 10, 0);
        assert_eq!(generator.len(), 10);
        generator.next();
        assert_eq!(generator.len(), 9);
    }

    #[test]
    fn shuffled_ring_is_a_single_cycle() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in [2u32, 3, 17, 256] {
            let next = shuffled_ring(n, &mut rng);
            let mut seen = HashSet::new();
            let mut node = 0u32;
            for _ in 0..n {
                assert!(seen.insert(node), "revisited node {node} early");
                node = next[node as usize];
            }
            assert_eq!(node, 0, "ring must close after {n} steps");
        }
    }
}
