//! Parameterised workload scenarios beyond the paper's eleven SPEC profiles.
//!
//! The benchmark profiles in [`crate::BenchmarkProfile`] mimic specific SPEC CPU95
//! applications; the scenarios here are *stress patterns* with explicit
//! knobs, built to exercise the predictor stack from new angles and to give
//! the trace capture/replay path diverse material:
//!
//! * [`Scenario::PointerChase`] — a linked-list ring traversal: every load's
//!   address is produced by the previous load, so the out-of-order core
//!   cannot overlap misses, and way-prediction sees a per-PC stream that
//!   revisits blocks only once per lap;
//! * [`Scenario::StridedStream`] — a strided streaming walk with
//!   configurable *conflict pressure*: a per-mille knob routes accesses to a
//!   rotation over cache-aliasing blocks, dialling the direct-mapped
//!   conflict-miss rate continuously;
//! * [`Scenario::PhaseMix`] — a phase-switching mix that cycles between
//!   streaming, a cache-resident hot pool, and conflict-heavy phases, each
//!   with its own code region, re-training the predictors at every switch.
//!
//! Three further scenarios are *adversarial by construction* — each one
//! attacks a specific predictor mechanism rather than merely applying
//! pressure (see `docs/WORKLOADS.md` for the full catalog):
//!
//! * [`Scenario::WayAliasThrash`] — loads from PCs that collide in the
//!   way-prediction-table index but hit blocks in different ways of one
//!   set, so the shared table entry is always trained by the *other* PC;
//! * [`Scenario::PhaseFlip`] — a loop whose *data mapping* flips between a
//!   direct-mapped-friendly and a conflict-heavy layout under fixed PCs
//!   (invalidating selective-DM training mid-run), with an i-cache evict
//!   burst at every flip that leaves the SAWP holding a stale way;
//! * [`Scenario::ConflictChase`] — a serialized pointer chase with
//!   dirtying stores over a conflict set sized relative to the reference
//!   associativity, straddling the LRU thrashing threshold.
//!
//! Like [`crate::TraceGenerator`], a [`ScenarioGenerator`] is a fully
//! deterministic iterator of [`MicroOp`]s given `(scenario, ops, seed)`.
//!
//! # Example
//!
//! ```
//! use wp_workloads::{Scenario, ScenarioGenerator};
//!
//! let scenario = Scenario::pointer_chase();
//! let trace: Vec<_> = ScenarioGenerator::new(scenario, 1_000, 7).collect();
//! assert_eq!(trace.len(), 1_000);
//! // Deterministic: the same (scenario, ops, seed) replays identically.
//! let again: Vec<_> = ScenarioGenerator::new(scenario, 1_000, 7).collect();
//! assert_eq!(trace, again);
//! ```

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wp_mem::Addr;

use crate::op::{BranchClass, MicroOp, OpKind};

/// Code region base for scenario loop bodies.
const CODE_BASE: Addr = 0x0040_0000;
/// Heap region holding the pointer-chase nodes.
const HEAP_BASE: Addr = 0x7000_0000;
/// Region of the streaming array.
const STREAM_BASE: Addr = 0x8000_0000;
/// Region of the conflict-rotation blocks.
const CONFLICT_BASE: Addr = 0x9000_0000;
/// Region of the cache-resident hot pool.
const HOT_BASE: Addr = 0xa000_0000;

/// Block size the patterns are constructed for (the paper's 32-byte L1
/// blocks).
const BLOCK_BYTES: u64 = 32;
/// Capacity of one direct-mapped way of the reference 16 KB 4-way L1; blocks
/// this far apart alias in both the direct-mapped and the set-associative
/// organisation.
const WAY_BYTES: u64 = 16 * 1024;
/// Length of the streaming array before the walk wraps (much larger than any
/// L1 the experiments sweep).
const STREAM_LENGTH: u64 = 4 * 1024 * 1024;
/// Blocks in the conflict rotation (exceeds every associativity swept).
const CONFLICT_BLOCKS: u64 = 12;
/// Blocks in the cache-resident hot pool (fits comfortably in 16 KB).
const HOT_BLOCKS: u64 = 64;

/// Code region of the way-alias-thrash bodies; load PCs are laid out
/// `table_entries * 4` bytes apart from here so they collide in the
/// PC-indexed way-prediction table (which indexes by `pc >> 2`).
const ALIAS_CODE_BASE: Addr = 0x0060_0000;
/// Data blocks of the aliasing attack: `WAY_BYTES` apart, so they share one
/// set (and one direct-mapped line) but carry distinct tags.
const ALIAS_DATA_BASE: Addr = 0xc000_0000;
/// Code region of the phase-flip loop: block `a` holds the attacked loads,
/// block `a + 32` the store and the loop branch.
const FLIP_CODE_BASE: Addr = 0x0041_0000;
/// Direct-mapped-friendly private blocks touched in even phase-flip phases
/// (three consecutive blocks: distinct sets, distinct DM lines).
const FLIP_PRIVATE_BASE: Addr = 0xe000_0100;
/// Same-DM-line conflict rotation touched in odd phase-flip phases.
const FLIP_CONFLICT_BASE: Addr = 0xb000_0000;
/// Code block of the conflict-chase loop.
const CHASE_CODE_BASE: Addr = 0x0048_0000;
/// Conflict-chase nodes: `WAY_BYTES` apart (one set, one DM line).
const CHASE_BASE: Addr = 0xd000_0000;

/// Associativity of the reference 16 KB 4-way L1 that the conflict-chase
/// tiers straddle (blocks = `REF_ASSOC` − 1 / + 0 / + 1).
pub const REF_ASSOC: u32 = 4;

/// A parameterised stress scenario. All parameters are plain integers so a
/// scenario can serve as (part of) a simulation dedup key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scenario {
    /// A pointer-chasing traversal of a singly linked ring of `nodes` nodes
    /// laid out `node_stride` bytes apart in a shuffled order.
    PointerChase {
        /// Number of nodes in the ring.
        nodes: u32,
        /// Distance in bytes between consecutive node slots.
        node_stride: u32,
    },
    /// A strided streaming walk with configurable conflict pressure.
    StridedStream {
        /// Stride in bytes between consecutive stream accesses.
        stride: u32,
        /// Per-mille of loads redirected to the conflict-block rotation
        /// (0 = pure streaming, 1000 = pure conflict thrash).
        conflict_permille: u16,
    },
    /// A phase-switching mix cycling streaming → hot-pool → conflict phases.
    PhaseMix {
        /// Ops per phase before switching to the next behaviour.
        phase_ops: u32,
    },
    /// Adversarial: loads whose PCs collide in the way-prediction-table
    /// index while their data blocks sit in different ways of one set, so
    /// the shared table entry is always trained by the *previous* PC and
    /// every steady-state hit is a mispredicted-way hit.
    WayAliasThrash {
        /// Prediction-table entry count the PC spacing is tuned for.
        table_entries: u32,
        /// Number of aliasing PCs (= conflict blocks in the attacked set);
        /// above the associativity the group also thrashes the set itself.
        group: u32,
    },
    /// Adversarial: a fixed-PC loop whose data mapping flips every period
    /// between a DM-friendly private layout and a same-DM-line conflict
    /// rotation (invalidating selective-DM and way-table training), with an
    /// i-cache evict burst at each flip that re-enters the loop's second
    /// code block through a BTB edge so the SAWP fall-through entry goes
    /// stale.
    PhaseFlip {
        /// Ops per phase before the data mapping flips.
        period_ops: u32,
        /// Blocks in the i-cache evict burst (and the conflict rotation is
        /// one block wider than this).
        conflict_ways: u32,
    },
    /// Adversarial: a serialized pointer chase with dirtying stores over
    /// `blocks` same-set blocks; at `REF_ASSOC + 1` blocks the cyclic order
    /// defeats LRU and every access misses.
    ConflictChase {
        /// Conflict-set size in blocks.
        blocks: u32,
    },
}

impl Scenario {
    /// The default pointer-chase: 4096 nodes, 64 bytes apart (a 256 KB
    /// working set that misses in every L1 the experiments sweep).
    pub fn pointer_chase() -> Self {
        Scenario::PointerChase {
            nodes: 4096,
            node_stride: 64,
        }
    }

    /// The default strided stream: 64-byte stride with 15 % of loads on the
    /// conflict rotation.
    pub fn strided_stream() -> Self {
        Scenario::StridedStream {
            stride: 64,
            conflict_permille: 150,
        }
    }

    /// The default phase mix: switch behaviour every 20 000 ops.
    pub fn phase_mix() -> Self {
        Scenario::PhaseMix { phase_ops: 20_000 }
    }

    /// The default aliasing thrash: tuned for the paper's 1024-entry
    /// prediction tables with a 4-PC alias group (the stress tier).
    pub fn way_alias_thrash() -> Self {
        Scenario::WayAliasThrash {
            table_entries: 1024,
            group: 4,
        }
    }

    /// The default phase flip: re-map the loop's data every 1024 ops with a
    /// 6-block i-cache evict burst (the stress tier).
    pub fn phase_flip() -> Self {
        Scenario::PhaseFlip {
            period_ops: 1024,
            conflict_ways: 6,
        }
    }

    /// The default conflict chase: exactly the reference associativity (the
    /// stress tier).
    pub fn conflict_chase() -> Self {
        Scenario::ConflictChase { blocks: REF_ASSOC }
    }

    /// All six default scenarios (three stress patterns, three adversarial).
    pub fn all() -> [Scenario; 6] {
        [
            Self::pointer_chase(),
            Self::strided_stream(),
            Self::phase_mix(),
            Self::way_alias_thrash(),
            Self::phase_flip(),
            Self::conflict_chase(),
        ]
    }

    /// The three default adversarial scenarios.
    pub fn adversarial() -> [Scenario; 3] {
        [
            Self::way_alias_thrash(),
            Self::phase_flip(),
            Self::conflict_chase(),
        ]
    }

    /// True for the adversarial-by-construction scenarios.
    pub fn is_adversarial(&self) -> bool {
        matches!(
            self,
            Scenario::WayAliasThrash { .. }
                | Scenario::PhaseFlip { .. }
                | Scenario::ConflictChase { .. }
        )
    }

    /// The scenario's snake_case name (stable; used by workload CLIs).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::PointerChase { .. } => "pointer_chase",
            Scenario::StridedStream { .. } => "strided_stream",
            Scenario::PhaseMix { .. } => "phase_mix",
            Scenario::WayAliasThrash { .. } => "way_alias_thrash",
            Scenario::PhaseFlip { .. } => "phase_flip",
            Scenario::ConflictChase { .. } => "conflict_chase",
        }
    }

    /// Looks up a default-parameter scenario by [`Scenario::name`].
    pub fn parse(name: &str) -> Option<Scenario> {
        Self::all().into_iter().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic iterator of [`MicroOp`]s for one [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioGenerator {
    scenario: Scenario,
    num_ops: usize,
    emitted: usize,
    rng: StdRng,
    /// Ops of the current loop body not yet emitted.
    pending: VecDeque<MicroOp>,
    /// Pointer-chase: successor of each node in traversal order.
    next_node: Vec<u32>,
    /// Pointer-chase: the node the next load dereferences.
    current_node: u32,
    /// Strided stream: current offset into the array.
    stream_offset: u64,
    /// Conflict rotation cursor (strided stream and phase mix).
    conflict_cursor: u64,
    /// Phase mix: index of the current phase behaviour (0..3).
    phase: u32,
    /// Phase mix: ops emitted within the current phase.
    phase_emitted: u32,
}

impl ScenarioGenerator {
    /// Builds the generator; identical `(scenario, num_ops, seed)` triples
    /// produce identical streams.
    pub fn new(scenario: Scenario, num_ops: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ce4_a110_0000_0000);
        let next_node = match scenario {
            Scenario::PointerChase { nodes, .. } => shuffled_ring(nodes.max(2), &mut rng),
            _ => Vec::new(),
        };
        Self {
            scenario,
            num_ops,
            emitted: 0,
            rng,
            pending: VecDeque::with_capacity(8),
            next_node,
            current_node: 0,
            stream_offset: 0,
            conflict_cursor: 0,
            phase: 0,
            phase_emitted: 0,
        }
    }

    /// The scenario being generated.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Address of the current conflict-rotation block, advancing the cursor.
    fn next_conflict_addr(&mut self) -> Addr {
        let addr = CONFLICT_BASE + (self.conflict_cursor % CONFLICT_BLOCKS) * WAY_BYTES;
        self.conflict_cursor += 1;
        addr
    }

    /// Queues the next loop-body iteration of the scenario.
    fn fill_pattern(&mut self) {
        match self.scenario {
            Scenario::PointerChase { node_stride, .. } => {
                let addr = HEAP_BASE + u64::from(self.current_node) * u64::from(node_stride);
                self.current_node = self.next_node[self.current_node as usize];
                let pc = CODE_BASE;
                // The next pointer is consumed by the *next* iteration's
                // load, four ops later: a serialized dependence chain.
                self.pending.extend([
                    MicroOp {
                        pc,
                        kind: OpKind::Load {
                            addr,
                            approx_addr: addr,
                        },
                        src_deps: [4, 0],
                    },
                    MicroOp {
                        pc: pc + 4,
                        kind: OpKind::IntAlu,
                        src_deps: [1, 0],
                    },
                    MicroOp {
                        pc: pc + 8,
                        kind: OpKind::IntAlu,
                        src_deps: [1, 0],
                    },
                    MicroOp {
                        pc: pc + 12,
                        kind: OpKind::Branch {
                            taken: true,
                            target: pc,
                            class: BranchClass::Conditional,
                        },
                        src_deps: [0, 0],
                    },
                ]);
            }
            Scenario::StridedStream {
                stride,
                conflict_permille,
            } => {
                let conflict = self.rng.gen_range(0u64..1000) < u64::from(conflict_permille);
                let addr = if conflict {
                    self.next_conflict_addr()
                } else {
                    let addr = STREAM_BASE + self.stream_offset;
                    self.stream_offset = (self.stream_offset + u64::from(stride)) % STREAM_LENGTH;
                    addr
                };
                let pc = CODE_BASE + 0x100;
                self.pending.extend([
                    MicroOp {
                        pc,
                        kind: OpKind::Load {
                            addr,
                            approx_addr: addr,
                        },
                        src_deps: [0, 0],
                    },
                    MicroOp {
                        pc: pc + 4,
                        kind: OpKind::FpAlu,
                        src_deps: [1, 0],
                    },
                    MicroOp {
                        pc: pc + 8,
                        kind: OpKind::Store { addr: addr ^ 0x8 },
                        src_deps: [2, 0],
                    },
                    MicroOp {
                        pc: pc + 12,
                        kind: OpKind::Branch {
                            taken: true,
                            target: pc,
                            class: BranchClass::Conditional,
                        },
                        src_deps: [0, 0],
                    },
                ]);
            }
            Scenario::PhaseMix { phase_ops } => {
                let phase_ops = phase_ops.max(4);
                if self.phase_emitted >= phase_ops {
                    self.phase = (self.phase + 1) % 3;
                    self.phase_emitted = 0;
                }
                // Each phase runs its own loop body in its own code region,
                // so every switch re-trains the i-cache and the predictors.
                let pc = CODE_BASE + 0x1000 * (1 + u64::from(self.phase));
                let addr = match self.phase {
                    0 => {
                        let addr = STREAM_BASE + self.stream_offset;
                        self.stream_offset = (self.stream_offset + BLOCK_BYTES) % STREAM_LENGTH;
                        addr
                    }
                    1 => {
                        let block = self.rng.gen_range(0..HOT_BLOCKS);
                        HOT_BASE + block * BLOCK_BYTES + self.rng.gen_range(0..BLOCK_BYTES / 8) * 8
                    }
                    _ => self.next_conflict_addr(),
                };
                self.pending.extend([
                    MicroOp {
                        pc,
                        kind: OpKind::Load {
                            addr,
                            approx_addr: addr,
                        },
                        src_deps: [0, 0],
                    },
                    MicroOp {
                        pc: pc + 4,
                        kind: OpKind::IntAlu,
                        src_deps: [1, 0],
                    },
                    MicroOp {
                        pc: pc + 8,
                        kind: OpKind::IntAlu,
                        src_deps: [1, 2],
                    },
                    MicroOp {
                        pc: pc + 12,
                        kind: OpKind::Branch {
                            taken: true,
                            target: pc,
                            class: BranchClass::Conditional,
                        },
                        src_deps: [0, 0],
                    },
                ]);
                self.phase_emitted += 4;
            }
            Scenario::WayAliasThrash {
                table_entries,
                group,
            } => {
                let group = u64::from(group.max(2));
                let pc_stride = u64::from(table_entries.max(2)) * 4;
                let i = self.conflict_cursor % group;
                self.conflict_cursor += 1;
                // All group PCs share one prediction-table entry (the table
                // indexes by `pc >> 2` masked to `table_entries - 1`), while
                // their data blocks share a set but occupy distinct ways:
                // the entry is always trained by the previous PC's way.
                let pc = ALIAS_CODE_BASE + i * pc_stride;
                let next_pc = ALIAS_CODE_BASE + ((i + 1) % group) * pc_stride;
                let addr = ALIAS_DATA_BASE + i * WAY_BYTES;
                self.pending.extend([
                    MicroOp {
                        pc,
                        kind: OpKind::Load {
                            addr,
                            approx_addr: addr,
                        },
                        src_deps: [0, 0],
                    },
                    MicroOp {
                        pc: pc + 4,
                        kind: OpKind::IntAlu,
                        src_deps: [1, 0],
                    },
                    MicroOp {
                        pc: pc + 8,
                        kind: OpKind::IntAlu,
                        src_deps: [1, 0],
                    },
                    MicroOp {
                        pc: pc + 12,
                        kind: OpKind::Branch {
                            taken: true,
                            target: next_pc,
                            class: BranchClass::Jump,
                        },
                        src_deps: [0, 0],
                    },
                ]);
            }
            Scenario::PhaseFlip {
                period_ops,
                conflict_ways,
            } => {
                let period = period_ops.max(16);
                let ways = u64::from(conflict_ways.max(4));
                let a = FLIP_CODE_BASE;
                let b = a + BLOCK_BYTES;
                let flip = self.phase_emitted >= period;
                if flip {
                    self.phase = self.phase.wrapping_add(1);
                    self.phase_emitted = 0;
                }
                // The load/store PCs never change; only their data mapping
                // flips. Even phases touch three private DM-friendly blocks
                // (training selective DM towards the direct-mapped side);
                // odd phases rotate over `ways + 1` same-DM-line conflict
                // blocks, so the freshly trained mapping is wrong, the DM
                // placement conflicts, and dirty blocks thrash through LRU.
                let (d0, d1, d2) = if self.phase % 2 == 0 {
                    (
                        FLIP_PRIVATE_BASE,
                        FLIP_PRIVATE_BASE + BLOCK_BYTES,
                        FLIP_PRIVATE_BASE + 2 * BLOCK_BYTES,
                    )
                } else {
                    let rot = |c: u64| FLIP_CONFLICT_BASE + (c % (ways + 1)) * WAY_BYTES;
                    let c = self.conflict_cursor;
                    self.conflict_cursor += 3;
                    (rot(c), rot(c + 1), rot(c + 2))
                };
                if flip {
                    // I-side evict burst: jump through `ways` blocks that
                    // alias block `b`'s i-cache set, then re-enter `b`
                    // itself through the final jump. `b` re-fills via a BTB
                    // edge, so the SAWP entry for the `a -> b` fall-through
                    // still holds the pre-flip way and mispredicts when the
                    // loop resumes. The burst pool rotates with the phase
                    // so the LRU alignment (and `b`'s landing way) varies.
                    let pool = ways + 3;
                    let burst_pc =
                        |j: u64| b + ((u64::from(self.phase) + j) % pool + 1) * WAY_BYTES;
                    for k in 0..ways {
                        let target = if k + 1 == ways { b } else { burst_pc(k + 1) };
                        self.pending.push_back(MicroOp {
                            pc: burst_pc(k),
                            kind: OpKind::Branch {
                                taken: true,
                                target,
                                class: BranchClass::Jump,
                            },
                            src_deps: [0, 0],
                        });
                    }
                } else {
                    self.pending.extend([
                        MicroOp {
                            pc: a,
                            kind: OpKind::Load {
                                addr: d0,
                                approx_addr: d0,
                            },
                            src_deps: [0, 0],
                        },
                        MicroOp {
                            pc: a + 4,
                            kind: OpKind::IntAlu,
                            src_deps: [1, 0],
                        },
                        MicroOp {
                            pc: a + 8,
                            kind: OpKind::Load {
                                addr: d1,
                                approx_addr: d1,
                            },
                            src_deps: [0, 0],
                        },
                        MicroOp {
                            pc: a + 12,
                            kind: OpKind::IntAlu,
                            src_deps: [1, 0],
                        },
                    ]);
                }
                self.pending.extend([
                    MicroOp {
                        pc: b,
                        kind: OpKind::Store { addr: d2 },
                        src_deps: [0, 0],
                    },
                    MicroOp {
                        pc: b + 4,
                        kind: OpKind::IntAlu,
                        src_deps: [1, 0],
                    },
                    MicroOp {
                        pc: b + 8,
                        kind: OpKind::IntAlu,
                        src_deps: [1, 0],
                    },
                    MicroOp {
                        pc: b + 12,
                        kind: OpKind::Branch {
                            taken: true,
                            target: a,
                            class: BranchClass::Conditional,
                        },
                        src_deps: [0, 0],
                    },
                ]);
                self.phase_emitted += self.pending.len() as u32;
            }
            Scenario::ConflictChase { blocks } => {
                let blocks = u64::from(blocks.max(1));
                let node = CHASE_BASE + (self.conflict_cursor % blocks) * WAY_BYTES;
                self.conflict_cursor += 1;
                let pc = CHASE_CODE_BASE;
                // Serialized like the pointer chase (each load consumes the
                // previous one) and dirtying: the store writes back into the
                // just-loaded node, so every eviction writes back.
                self.pending.extend([
                    MicroOp {
                        pc,
                        kind: OpKind::Load {
                            addr: node,
                            approx_addr: node,
                        },
                        src_deps: [4, 0],
                    },
                    MicroOp {
                        pc: pc + 4,
                        kind: OpKind::IntAlu,
                        src_deps: [1, 0],
                    },
                    MicroOp {
                        pc: pc + 8,
                        kind: OpKind::Store { addr: node + 8 },
                        src_deps: [2, 0],
                    },
                    MicroOp {
                        pc: pc + 12,
                        kind: OpKind::Branch {
                            taken: true,
                            target: pc,
                            class: BranchClass::Conditional,
                        },
                        src_deps: [0, 0],
                    },
                ]);
            }
        }
    }
}

impl Iterator for ScenarioGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        if self.emitted >= self.num_ops {
            return None;
        }
        if self.pending.is_empty() {
            self.fill_pattern();
        }
        self.emitted += 1;
        self.pending.pop_front()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.num_ops - self.emitted;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for ScenarioGenerator {}

/// A shuffled ring over `n` nodes: `next[i]` is the successor of node `i`,
/// and following `next` from any node visits all `n` nodes before returning.
fn shuffled_ring(n: u32, rng: &mut StdRng) -> Vec<u32> {
    // Fisher-Yates over the visit order, then link consecutive visits.
    let mut order: Vec<u32> = (0..n).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut next = vec![0u32; n as usize];
    for window in 0..order.len() {
        let from = order[window];
        let to = order[(window + 1) % order.len()];
        next[from as usize] = to;
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn trace(scenario: Scenario, ops: usize) -> Vec<MicroOp> {
        ScenarioGenerator::new(scenario, ops, 7).collect()
    }

    #[test]
    fn emits_exactly_the_requested_ops() {
        for scenario in Scenario::all() {
            for n in [0usize, 1, 3, 1000] {
                assert_eq!(trace(scenario, n).len(), n, "{scenario}");
            }
        }
    }

    #[test]
    fn identical_seeds_replay_identically() {
        for scenario in Scenario::all() {
            let a: Vec<_> = ScenarioGenerator::new(scenario, 5_000, 3).collect();
            let b: Vec<_> = ScenarioGenerator::new(scenario, 5_000, 3).collect();
            assert_eq!(a, b, "{scenario}");
        }
    }

    #[test]
    fn names_parse_back() {
        for scenario in Scenario::all() {
            assert_eq!(Scenario::parse(scenario.name()), Some(scenario));
        }
        assert_eq!(Scenario::parse("nope"), None);
    }

    #[test]
    fn pointer_chase_visits_every_node_once_per_lap() {
        let nodes = 64u32;
        let scenario = Scenario::PointerChase {
            nodes,
            node_stride: 64,
        };
        // One lap = nodes iterations of the 4-op body.
        let ops = trace(scenario, (nodes as usize) * 4);
        let loads: Vec<Addr> = ops
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Load { addr, .. } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(loads.len(), nodes as usize);
        let unique: HashSet<_> = loads.iter().collect();
        assert_eq!(unique.len(), nodes as usize, "a lap must not revisit nodes");
    }

    #[test]
    fn pointer_chase_loads_form_a_dependence_chain() {
        let ops = trace(Scenario::pointer_chase(), 400);
        for op in &ops {
            if op.kind.is_load() {
                assert_eq!(op.src_deps[0], 4, "each load consumes the previous one");
            }
        }
    }

    #[test]
    fn conflict_pressure_dials_distinct_block_reuse() {
        let pure = Scenario::StridedStream {
            stride: 64,
            conflict_permille: 0,
        };
        let heavy = Scenario::StridedStream {
            stride: 64,
            conflict_permille: 900,
        };
        let distinct_blocks = |scenario| {
            trace(scenario, 20_000)
                .iter()
                .filter_map(|op| match op.kind {
                    OpKind::Load { addr, .. } => Some(addr / BLOCK_BYTES),
                    _ => None,
                })
                .collect::<HashSet<_>>()
                .len()
        };
        // Pure streaming touches a new block every few accesses; heavy
        // conflict pressure recycles the same 12 aliasing blocks.
        assert!(distinct_blocks(pure) > 5 * distinct_blocks(heavy));
    }

    #[test]
    fn conflict_blocks_alias_in_the_reference_geometry() {
        let mut generator = ScenarioGenerator::new(
            Scenario::StridedStream {
                stride: 64,
                conflict_permille: 1000,
            },
            100,
            1,
        );
        let sets = WAY_BYTES / BLOCK_BYTES; // direct-mapped line count
        let lines: HashSet<_> = (&mut generator)
            .filter_map(|op| match op.kind {
                OpKind::Load { addr, .. } => Some((addr / BLOCK_BYTES) % sets),
                _ => None,
            })
            .collect();
        assert_eq!(lines.len(), 1, "conflict blocks must map to one line");
    }

    #[test]
    fn phase_mix_switches_code_regions() {
        let ops = trace(Scenario::PhaseMix { phase_ops: 100 }, 1_000);
        let pcs: HashSet<_> = ops.iter().map(|op| op.pc & !0xfff).collect();
        assert!(pcs.len() >= 3, "expected three phase code regions");
    }

    #[test]
    fn exact_size_iterator_reports_remaining() {
        let mut generator = ScenarioGenerator::new(Scenario::phase_mix(), 10, 0);
        assert_eq!(generator.len(), 10);
        generator.next();
        assert_eq!(generator.len(), 9);
    }

    #[test]
    fn way_alias_pcs_collide_in_the_table_but_blocks_occupy_distinct_ways() {
        let ops = trace(Scenario::way_alias_thrash(), 64);
        let loads: Vec<(Addr, Addr)> = ops
            .iter()
            .filter_map(|op| match op.kind {
                OpKind::Load { addr, .. } => Some((op.pc, addr)),
                _ => None,
            })
            .collect();
        // All load PCs collide in one slot of the 1024-entry table...
        let slots: HashSet<_> = loads.iter().map(|(pc, _)| (pc >> 2) % 1024).collect();
        assert_eq!(slots.len(), 1, "aliasing PCs must share a table slot");
        // ...while being four distinct instructions...
        let pcs: HashSet<_> = loads.iter().map(|(pc, _)| pc).collect();
        assert_eq!(pcs.len(), 4);
        // ...whose data blocks share a set but carry distinct tags.
        let sets = WAY_BYTES / BLOCK_BYTES;
        let lines: HashSet<_> = loads
            .iter()
            .map(|(_, addr)| (addr / BLOCK_BYTES) % sets)
            .collect();
        assert_eq!(lines.len(), 1, "alias blocks must share a set");
        let tags: HashSet<_> = loads.iter().map(|(_, addr)| addr / WAY_BYTES).collect();
        assert_eq!(tags.len(), 4, "alias blocks must be distinct");
    }

    #[test]
    fn phase_flip_remaps_fixed_pcs_and_bursts_on_the_loop_set() {
        let scenario = Scenario::PhaseFlip {
            period_ops: 64,
            conflict_ways: 4,
        };
        let ops = trace(scenario, 2_000);
        let a = ops.iter().find(|op| op.kind.is_load()).expect("a load").pc;
        let b = a + BLOCK_BYTES;
        // The same load PC must see both the private and the conflict
        // mapping (the flip happens under fixed PCs).
        let mut private = false;
        let mut conflict = false;
        for op in &ops {
            if let OpKind::Load { addr, .. } = op.kind {
                if op.pc == a {
                    if (FLIP_CONFLICT_BASE..FLIP_CONFLICT_BASE + CONFLICT_BLOCKS * WAY_BYTES)
                        .contains(&addr)
                    {
                        conflict = true;
                    } else {
                        private = true;
                    }
                }
            }
        }
        assert!(private && conflict, "load PC must see both mappings");
        // Every burst jump aliases the i-cache set of block `b`.
        let sets = WAY_BYTES / BLOCK_BYTES;
        let burst: Vec<_> = ops
            .iter()
            .filter(|op| op.kind.is_branch() && op.pc >= b + BLOCK_BYTES)
            .collect();
        assert!(!burst.is_empty(), "expected evict-burst jumps");
        for op in &burst {
            assert_eq!(
                (op.pc / BLOCK_BYTES) % sets,
                (b / BLOCK_BYTES) % sets,
                "burst block {:#x} must alias block b",
                op.pc
            );
        }
        // The final burst jump re-enters `b` (the BTB edge of the attack).
        assert!(burst.iter().any(|op| matches!(
            op.kind,
            OpKind::Branch { target, .. } if target == b
        )));
    }

    #[test]
    fn conflict_chase_nodes_share_a_set_and_chain_serially() {
        let blocks = 5u32;
        let ops = trace(Scenario::ConflictChase { blocks }, 400);
        let sets = WAY_BYTES / BLOCK_BYTES;
        let mut lines = HashSet::new();
        let mut tags = HashSet::new();
        for op in &ops {
            match op.kind {
                OpKind::Load { addr, .. } => {
                    assert_eq!(op.src_deps[0], 4, "chase loads must serialize");
                    lines.insert((addr / BLOCK_BYTES) % sets);
                    tags.insert(addr / WAY_BYTES);
                }
                OpKind::Store { addr } => {
                    lines.insert((addr / BLOCK_BYTES) % sets);
                }
                _ => {}
            }
        }
        assert_eq!(lines.len(), 1, "chase nodes must share a set");
        assert_eq!(tags.len(), blocks as usize);
    }

    #[test]
    fn adversarial_scenarios_are_flagged() {
        for scenario in Scenario::adversarial() {
            assert!(scenario.is_adversarial(), "{scenario}");
        }
        for scenario in [
            Scenario::pointer_chase(),
            Scenario::strided_stream(),
            Scenario::phase_mix(),
        ] {
            assert!(!scenario.is_adversarial(), "{scenario}");
        }
    }

    #[test]
    fn shuffled_ring_is_a_single_cycle() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in [2u32, 3, 17, 256] {
            let next = shuffled_ring(n, &mut rng);
            let mut seen = HashSet::new();
            let mut node = 0u32;
            for _ in 0..n {
                assert!(seen.insert(node), "revisited node {node} early");
                node = next[node as usize];
            }
            assert_eq!(node, 0, "ring must close after {n} steps");
        }
    }
}
