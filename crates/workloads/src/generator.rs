//! The synthetic trace generator.
//!
//! [`TraceGenerator`] builds, from a benchmark profile and a seed, a static
//! "program" — hot functions made of basic blocks, with every instruction
//! slot statically classified (integer, floating-point, load, store,
//! branch) and every memory slot bound to an address-stream generator — and
//! then walks that program dynamically, emitting [`MicroOp`]s.
//!
//! The walk reproduces the behavioural properties the paper's techniques
//! depend on: loads exhibit per-PC block locality (PC way-prediction),
//! conflicting blocks recur in bursts (victim list), basic blocks and the
//! call graph give the i-cache realistic spatial behaviour (BTB / SAWP /
//! RAS), and branch outcomes are biased per static branch (two-level hybrid
//! predictor).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wp_mem::Addr;

use crate::op::{BranchClass, MicroOp, OpKind};
use crate::profile::{Benchmark, BenchmarkProfile};

/// Base of the synthetic code region.
const CODE_BASE: Addr = 0x0040_0000;
/// Base of the stable scalar data region.
const SCALAR_BASE: Addr = 0x1000_0000;
/// Base of the sequential-array region.
const ARRAY_BASE: Addr = 0x2000_0000;
/// Base of the churning-pool region.
const POOL_BASE: Addr = 0x3000_0000;
/// Base of the direct-map-conflict region.
const DM_CONFLICT_BASE: Addr = 0x4000_0000;
/// Base of the LRU-pathological region.
const PATHO_BASE: Addr = 0x5000_0000;
/// Base of the far / cold region.
const FAR_BASE: Addr = 0x6000_0000;

/// Block size the address patterns are constructed for (the paper's L1s use
/// 32-byte blocks).
const BLOCK_BYTES: u64 = 32;
/// Geometry of the reference 16 KB 4-way L1 the conflict patterns target
/// (the *program* is fixed; the caches the experiments sweep vary around
/// it, exactly as in the paper).
const REF_SETS: u64 = 128;
const REF_ASSOC: u64 = 4;
/// Number of blocks backing the stable scalar accesses.
const SCALAR_BLOCKS: u64 = 48;
/// Length of each sequential array in bytes before it wraps.
const ARRAY_LENGTH: u64 = 128 * 1024;
/// Size of the far region in bytes.
const FAR_REGION: u64 = 64 * 1024 * 1024;

/// Configuration of one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// The benchmark whose profile drives the generator.
    pub benchmark: Benchmark,
    /// Number of micro-ops to emit.
    pub num_ops: usize,
    /// RNG seed; equal configurations produce identical traces.
    pub seed: u64,
}

impl TraceConfig {
    /// A configuration for `benchmark` with a default length (200 000 ops)
    /// and seed (the benchmark's position in the paper's listing).
    pub fn new(benchmark: Benchmark) -> Self {
        Self {
            benchmark,
            num_ops: 200_000,
            seed: 0x5eed_0000 + benchmark as u64,
        }
    }

    /// Sets the number of ops to emit.
    pub fn with_ops(mut self, num_ops: usize) -> Self {
        self.num_ops = num_ops;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// How a static memory slot generates addresses.
#[derive(Debug, Clone)]
enum Stream {
    /// Always the same word.
    Scalar { addr: Addr },
    /// An array walk: the address advances by `stride` every execution and
    /// wraps at the end of the array.
    Sequential {
        base: Addr,
        stride: u64,
        length: u64,
        offset: u64,
    },
    /// A uniformly random block from the churning pool.
    Pool,
    /// Bursty rotation over a group of blocks that collide in a
    /// direct-mapped cache but fit one set of the 4-way cache: the group
    /// stays on one block for a while (hits after the first access) and
    /// switches to the next with probability `switch_prob`, so each switch
    /// is a conflict miss in a direct-mapped organisation and a quick
    /// re-eviction the victim list can observe. The current block is shared
    /// by every slot bound to the group (indexed into
    /// [`TraceGenerator::dm_groups`]).
    DmConflict { group: usize, switch_prob: f64 },
    /// Cyclic access over `associativity + 1` blocks of one set — the
    /// LRU-adversarial pattern (swim). The cursor is shared by every slot
    /// bound to the group (indexed into [`TraceGenerator::patho_groups`]) so
    /// the adversarial cycle order is preserved however the slots interleave.
    Pathological { group: usize },
    /// A random block from a region much larger than any cache.
    Far,
}

/// A static instruction slot.
#[derive(Debug, Clone, Copy)]
enum Slot {
    IntAlu,
    FpAlu,
    Load { stream: usize },
    Store { stream: usize },
}

/// The terminator of a basic block.
#[derive(Debug, Clone, Copy)]
enum Terminator {
    /// Forward conditional branch to `target` (a later block index in the
    /// same function); taken with probability `taken_prob`.
    CondBranch { target: usize, taken_prob: f64 },
    /// A loop back-edge to `start`. Each time the loop is entered the walk
    /// samples a trip count and takes the back-edge that many times before
    /// falling through, so loops iterate realistically but the walk always
    /// makes forward progress.
    LoopBranch { start: usize },
    /// Call into another hot function at `entry_block` (callees enter near
    /// their tail so call trees stay shallow and calls and returns balance,
    /// as they do in real programs).
    Call { function: usize, entry_block: usize },
    /// Return to the caller.
    Return,
}

#[derive(Debug, Clone)]
struct BasicBlock {
    start_pc: Addr,
    slots: Vec<Slot>,
    terminator: Terminator,
    terminator_pc: Addr,
}

#[derive(Debug, Clone)]
struct Function {
    blocks: Vec<BasicBlock>,
}

/// Deterministic iterator of [`MicroOp`]s for one benchmark.
///
/// See the crate-level documentation for an example.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceConfig,
    profile: &'static BenchmarkProfile,
    rng: StdRng,
    functions: Vec<Function>,
    streams: Vec<Stream>,
    pool_blocks: Vec<Addr>,
    /// Direct-map conflict groups and the index of each group's current
    /// block.
    dm_groups: Vec<Vec<Addr>>,
    dm_current: Vec<usize>,
    /// LRU-adversarial block groups and their shared cycle cursors.
    patho_groups: Vec<Vec<Addr>>,
    patho_cursors: Vec<usize>,
    /// (function, block, slot-or-terminator position) of the next emission.
    cursor: Cursor,
    call_stack: Vec<(usize, usize)>,
    emitted: usize,
    restarts: usize,
    /// Remaining iterations of currently active loops, keyed by (function,
    /// block) of the loop's back-edge.
    loop_trip_counts: std::collections::HashMap<(usize, usize), u32>,
    /// Dynamic distance (in ops) back to the most recently emitted load,
    /// used to wire realistic load-to-use dependence chains.
    ops_since_last_load: u16,
}

/// Maximum trip count sampled for any loop visit.
const MAX_LOOP_TRIP: u32 = 24;
/// Minimum trip count sampled for any loop visit.
const MIN_LOOP_TRIP: u32 = 3;

#[derive(Debug, Clone, Copy)]
struct Cursor {
    function: usize,
    block: usize,
    slot: usize,
}

impl TraceGenerator {
    /// Builds the static program for `config` and positions the walk at the
    /// first function's entry.
    pub fn new(config: TraceConfig) -> Self {
        let profile = config.benchmark.profile();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut streams = Vec::new();
        let mut dm_groups = Vec::new();
        let mut patho_groups = Vec::new();

        // The churning pool shared by all pool-class slots.
        let pool_blocks: Vec<Addr> = (0..profile.pool_blocks as u64)
            .map(|i| POOL_BASE + i * BLOCK_BYTES)
            .collect();

        let functions = build_program(
            profile,
            &mut rng,
            &mut streams,
            &mut dm_groups,
            &mut patho_groups,
        );

        Self {
            config,
            profile,
            rng,
            functions,
            streams,
            pool_blocks,
            dm_current: vec![0; dm_groups.len()],
            dm_groups,
            patho_cursors: vec![0; patho_groups.len()],
            patho_groups,
            cursor: Cursor {
                function: 0,
                block: 0,
                slot: 0,
            },
            call_stack: Vec::new(),
            emitted: 0,
            restarts: 0,
            loop_trip_counts: std::collections::HashMap::new(),
            ops_since_last_load: u16::MAX,
        }
    }

    /// The configuration this generator was built from.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// The benchmark profile in use.
    pub fn profile(&self) -> &'static BenchmarkProfile {
        self.profile
    }

    /// Collects the whole trace into a vector (convenience for tests and
    /// small experiments; large runs should iterate instead).
    pub fn generate(config: TraceConfig) -> Vec<MicroOp> {
        Self::new(config).collect()
    }

    fn sample_deps(&mut self) -> [u16; 2] {
        let mean = self.profile.mean_dep_distance;
        let dep = |prob: f64, rng: &mut StdRng| -> u16 {
            if rng.gen_bool(prob) {
                // Geometric-ish distance with the profile's mean, clamped to
                // the reorder-buffer neighbourhood.
                let d = 1.0 + rng.gen::<f64>() * 2.0 * (mean - 1.0).max(0.0);
                d.round().clamp(1.0, 48.0) as u16
            } else {
                0
            }
        };
        // Load-to-use chains: a large fraction of instructions consume the
        // value of a recent load within a few instructions. This is what
        // makes extra load latency (sequential access, mispredictions)
        // visible to the out-of-order core, as in real codes. Floating-point
        // codes have more independent work between a load and its use.
        let load_use_prob = if self.profile.floating_point {
            0.45
        } else {
            0.62
        };
        let first = if self.ops_since_last_load <= 6 && self.rng.gen_bool(load_use_prob) {
            self.ops_since_last_load
        } else {
            dep(0.75, &mut self.rng)
        };
        [first, dep(0.35, &mut self.rng)]
    }

    fn next_address(&mut self, stream_idx: usize) -> Addr {
        match &mut self.streams[stream_idx] {
            Stream::Scalar { addr } => *addr,
            Stream::Sequential {
                base,
                stride,
                length,
                offset,
            } => {
                let addr = *base + *offset;
                *offset = (*offset + *stride) % *length;
                addr
            }
            Stream::Pool => {
                let idx = self.rng.gen_range(0..self.pool_blocks.len());
                self.pool_blocks[idx] + self.rng.gen_range(0..BLOCK_BYTES / 8) * 8
            }
            Stream::DmConflict { group, switch_prob } => {
                let group = *group;
                let switch = *switch_prob;
                if self.rng.gen_bool(switch) {
                    self.dm_current[group] =
                        (self.dm_current[group] + 1) % self.dm_groups[group].len();
                }
                self.dm_groups[group][self.dm_current[group]]
                    + self.rng.gen_range(0..BLOCK_BYTES / 8) * 8
            }
            Stream::Pathological { group } => {
                let group = *group;
                let blocks = &self.patho_groups[group];
                let cursor = &mut self.patho_cursors[group];
                let addr = blocks[*cursor];
                *cursor = (*cursor + 1) % blocks.len();
                addr
            }
            Stream::Far => {
                let block = self.rng.gen_range(0..FAR_REGION / BLOCK_BYTES);
                FAR_BASE + block * BLOCK_BYTES
            }
        }
    }

    fn approximate(&mut self, addr: Addr) -> Addr {
        if self.rng.gen_bool(self.profile.xor_approx_accuracy) {
            addr
        } else {
            // The XOR of base register and offset landed in a different
            // block: off by one or a few blocks.
            let delta = (1 + self.rng.gen_range(0u64..4)) * BLOCK_BYTES;
            if self.rng.gen_bool(0.5) {
                addr.wrapping_add(delta)
            } else {
                addr.wrapping_sub(delta)
            }
        }
    }

    /// Advances the cursor after a block terminator, returning the branch
    /// outcome that was emitted.
    fn advance_after_terminator(&mut self, taken: bool) {
        let function = &self.functions[self.cursor.function];
        let blocks_len = function.blocks.len();
        let terminator = function.blocks[self.cursor.block].terminator;
        match terminator {
            Terminator::CondBranch { target, .. } | Terminator::LoopBranch { start: target } => {
                if taken {
                    self.cursor.block = target;
                } else {
                    self.cursor.block += 1;
                    if self.cursor.block >= blocks_len {
                        self.pop_or_restart();
                    }
                }
            }
            Terminator::Call {
                function: callee,
                entry_block,
            } => {
                let resume_block = (self.cursor.block + 1) % blocks_len;
                self.call_stack.push((self.cursor.function, resume_block));
                if self.call_stack.len() > 64 {
                    self.call_stack.remove(0);
                }
                self.cursor.function = callee;
                self.cursor.block = entry_block.min(self.functions[callee].blocks.len() - 1);
            }
            Terminator::Return => self.pop_or_restart(),
        }
        self.cursor.slot = 0;
    }

    fn pop_or_restart(&mut self) {
        if let Some((function, block)) = self.call_stack.pop() {
            self.cursor.function = function;
            self.cursor.block = block.min(self.functions[function].blocks.len() - 1);
        } else {
            // Main loop: move on to the next hot function (round-robin so
            // long-running traces cover the whole code footprint).
            self.cursor.function = self.restarts % self.functions.len();
            self.restarts += 1;
            self.cursor.block = 0;
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        if self.emitted >= self.config.num_ops {
            return None;
        }
        self.emitted += 1;

        let src_deps = self.sample_deps();
        let (start_pc, terminator, terminator_pc, current_slot) = {
            let block = &self.functions[self.cursor.function].blocks[self.cursor.block];
            (
                block.start_pc,
                block.terminator,
                block.terminator_pc,
                block.slots.get(self.cursor.slot).copied(),
            )
        };

        if let Some(slot) = current_slot {
            let pc = start_pc + 4 * self.cursor.slot as u64;
            self.cursor.slot += 1;
            let kind = match slot {
                Slot::IntAlu => OpKind::IntAlu,
                Slot::FpAlu => OpKind::FpAlu,
                Slot::Load { stream } => {
                    let addr = self.next_address(stream);
                    let approx_addr = self.approximate(addr);
                    OpKind::Load { addr, approx_addr }
                }
                Slot::Store { stream } => OpKind::Store {
                    addr: self.next_address(stream),
                },
            };
            self.ops_since_last_load = if kind.is_load() {
                1
            } else {
                self.ops_since_last_load.saturating_add(1)
            };
            return Some(MicroOp { pc, kind, src_deps });
        }
        self.ops_since_last_load = self.ops_since_last_load.saturating_add(1);

        // Terminator.
        let pc = terminator_pc;
        let (kind, taken) = match terminator {
            Terminator::CondBranch { target, taken_prob } => {
                let taken = self.rng.gen_bool(taken_prob);
                let target_pc = self.functions[self.cursor.function].blocks[target].start_pc;
                (
                    OpKind::Branch {
                        taken,
                        target: target_pc,
                        class: BranchClass::Conditional,
                    },
                    taken,
                )
            }
            Terminator::LoopBranch { start } => {
                let key = (self.cursor.function, self.cursor.block);
                let remaining = match self.loop_trip_counts.get(&key).copied() {
                    Some(r) => r,
                    None => self.rng.gen_range(MIN_LOOP_TRIP..=MAX_LOOP_TRIP),
                };
                let taken = remaining > 0;
                if taken {
                    self.loop_trip_counts.insert(key, remaining - 1);
                } else {
                    self.loop_trip_counts.remove(&key);
                }
                let target_pc = self.functions[self.cursor.function].blocks[start].start_pc;
                (
                    OpKind::Branch {
                        taken,
                        target: target_pc,
                        class: BranchClass::Conditional,
                    },
                    taken,
                )
            }
            Terminator::Call {
                function,
                entry_block,
            } => {
                let blocks = &self.functions[function].blocks;
                let target_pc = blocks[entry_block.min(blocks.len() - 1)].start_pc;
                (
                    OpKind::Branch {
                        taken: true,
                        target: target_pc,
                        class: BranchClass::Call,
                    },
                    true,
                )
            }
            Terminator::Return => {
                let target_pc = self
                    .call_stack
                    .last()
                    .map(|&(f, b)| {
                        let blocks = &self.functions[f].blocks;
                        blocks[b.min(blocks.len() - 1)].start_pc
                    })
                    .unwrap_or(CODE_BASE);
                (
                    OpKind::Branch {
                        taken: true,
                        target: target_pc,
                        class: BranchClass::Return,
                    },
                    true,
                )
            }
        };
        self.advance_after_terminator(taken);
        Some(MicroOp { pc, kind, src_deps })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.config.num_ops - self.emitted;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for TraceGenerator {}

/// Builds the static functions, basic blocks, instruction slots and memory
/// streams for one program.
fn build_program(
    profile: &BenchmarkProfile,
    rng: &mut StdRng,
    streams: &mut Vec<Stream>,
    dm_groups: &mut Vec<Vec<Addr>>,
    patho_groups: &mut Vec<Vec<Addr>>,
) -> Vec<Function> {
    // Distribute the code footprint over the hot functions.
    let instr_per_block_avg = profile.avg_basic_block;
    let total_instrs = profile.code_footprint_blocks * (BLOCK_BYTES as usize / 4);
    let total_blocks = (total_instrs / instr_per_block_avg).max(profile.hot_functions * 2);
    let blocks_per_function = (total_blocks / profile.hot_functions).max(2);

    let mut next_pc = CODE_BASE;
    let mut next_seq_array = 0u64;

    let mut functions = Vec::with_capacity(profile.hot_functions);
    for f in 0..profile.hot_functions {
        let mut blocks = Vec::with_capacity(blocks_per_function);
        // Index of the most recent loop back-edge, used to keep loop nests
        // shallow so the walk's re-execution factor stays bounded.
        let mut last_loop_block: Option<usize> = None;
        for b in 0..blocks_per_function {
            // Block length jitter around the profile average.
            let num_instrs = rng
                .gen_range(instr_per_block_avg / 2..=instr_per_block_avg * 3 / 2)
                .clamp(2, 48);
            let start_pc = next_pc;
            let mut slots = Vec::with_capacity(num_instrs);
            for _ in 0..num_instrs {
                slots.push(make_slot(
                    profile,
                    rng,
                    streams,
                    &mut next_seq_array,
                    dm_groups,
                    patho_groups,
                ));
            }
            let terminator_pc = start_pc + 4 * slots.len() as u64;
            next_pc = terminator_pc + 4;
            // Occasionally skip ahead so consecutive blocks do not always
            // share an i-cache block (exercises the SAWP).
            if rng.gen_bool(0.2) {
                next_pc += BLOCK_BYTES * rng.gen_range(1u64..4);
            }

            let is_last = b == blocks_per_function - 1;
            let terminator = if is_last {
                Terminator::Return
            } else if rng.gen_bool(profile.call_frac) && profile.hot_functions > 1 {
                let mut callee = rng.gen_range(0..profile.hot_functions);
                if callee == f {
                    callee = (callee + 1) % profile.hot_functions;
                }
                // Enter the callee a few blocks before its end: calls behave
                // like leaf calls, keeping the dynamic call tree shallow.
                let entry_block = blocks_per_function.saturating_sub(rng.gen_range(2..=5));
                Terminator::Call {
                    function: callee,
                    entry_block,
                }
            } else if b > 0 && rng.gen_bool(0.25) && last_loop_block.map_or(true, |l| b >= l + 5) {
                // A loop back-edge: the body re-executes a sampled trip
                // count before the walk moves on. Back-edges are spaced out
                // so loop nests stay shallow.
                last_loop_block = Some(b);
                Terminator::LoopBranch {
                    start: rng.gen_range(b.saturating_sub(4)..b),
                }
            } else {
                // A forward branch (if/else skip). Per-branch bias: strongly
                // biased with probability `branch_predictability`, weakly
                // biased otherwise.
                let target = (b + rng.gen_range(2usize..4)).min(blocks_per_function - 1);
                let biased_taken = rng.gen_bool(profile.taken_bias);
                let taken_prob = if rng.gen_bool(profile.branch_predictability) {
                    if biased_taken {
                        0.93
                    } else {
                        0.07
                    }
                } else {
                    0.5
                };
                Terminator::CondBranch { target, taken_prob }
            };

            blocks.push(BasicBlock {
                start_pc,
                slots,
                terminator,
                terminator_pc,
            });
        }
        functions.push(Function { blocks });
        // Leave a gap between functions.
        next_pc += BLOCK_BYTES * 2;
    }
    functions
}

/// Creates one static instruction slot, allocating address streams for
/// memory slots.
fn make_slot(
    profile: &BenchmarkProfile,
    rng: &mut StdRng,
    streams: &mut Vec<Stream>,
    next_seq_array: &mut u64,
    dm_groups: &mut Vec<Vec<Addr>>,
    patho_groups: &mut Vec<Vec<Addr>>,
) -> Slot {
    // The profile's mix fractions are over *all* instructions, but block
    // terminators (branches) are emitted separately; scale the per-slot
    // probabilities so the dynamic mix matches the profile.
    let dilution = (profile.avg_basic_block as f64 + 1.0) / profile.avg_basic_block as f64;
    let load_frac = (profile.load_frac * dilution).min(0.9);
    let store_frac = (profile.store_frac * dilution).min(0.9 - load_frac);
    let r: f64 = rng.gen();
    if r < load_frac {
        let stream = allocate_stream(
            profile,
            rng,
            streams,
            next_seq_array,
            dm_groups,
            patho_groups,
        );
        Slot::Load { stream }
    } else if r < load_frac + store_frac {
        let stream = allocate_stream(
            profile,
            rng,
            streams,
            next_seq_array,
            dm_groups,
            patho_groups,
        );
        Slot::Store { stream }
    } else if rng.gen_bool(profile.fp_frac) {
        Slot::FpAlu
    } else {
        Slot::IntAlu
    }
}

/// Picks a stream class for a memory slot according to the profile's dynamic
/// weights and allocates its state.
fn allocate_stream(
    profile: &BenchmarkProfile,
    rng: &mut StdRng,
    streams: &mut Vec<Stream>,
    next_seq_array: &mut u64,
    dm_groups: &mut Vec<Vec<Addr>>,
    patho_groups: &mut Vec<Vec<Addr>>,
) -> usize {
    let r: f64 = rng.gen();
    let stream = if r < profile.w_seq {
        let base = ARRAY_BASE + *next_seq_array * ARRAY_LENGTH;
        *next_seq_array += 1;
        Stream::Sequential {
            base,
            stride: profile.seq_stride,
            length: ARRAY_LENGTH,
            offset: rng.gen_range(0..ARRAY_LENGTH / profile.seq_stride) * profile.seq_stride,
        }
    } else if r < profile.w_seq + profile.w_pool {
        Stream::Pool
    } else if r < profile.w_seq + profile.w_pool + profile.w_dm_conflict {
        // A handful of groups in distinct sets is enough; many slots sharing
        // a group concentrates the conflicts the way a few offending
        // instructions do in real codes, and keeps the blocks within the
        // associativity of one set so they do not thrash the 4-way baseline.
        if dm_groups.len() < MAX_DM_CONFLICT_GROUPS && (dm_groups.is_empty() || rng.gen_bool(0.2)) {
            dm_groups.push(make_dm_conflict_group(
                profile.dm_conflict_group,
                dm_groups.len(),
            ));
        }
        Stream::DmConflict {
            group: rng.gen_range(0..dm_groups.len()),
            switch_prob: profile.dm_conflict_switch_prob,
        }
    } else if r < profile.w_seq + profile.w_pool + profile.w_dm_conflict + profile.w_pathological {
        if patho_groups.len() < MAX_PATHOLOGICAL_GROUPS
            && (patho_groups.is_empty() || rng.gen_bool(0.2))
        {
            patho_groups.push(make_pathological_group(patho_groups.len()));
        }
        Stream::Pathological {
            group: rng.gen_range(0..patho_groups.len()),
        }
    } else if r < profile.w_seq
        + profile.w_pool
        + profile.w_dm_conflict
        + profile.w_pathological
        + profile.w_far
    {
        Stream::Far
    } else {
        let block = rng.gen_range(0..SCALAR_BLOCKS);
        let word = rng.gen_range(0..BLOCK_BYTES / 8) * 8;
        Stream::Scalar {
            addr: SCALAR_BASE + block * BLOCK_BYTES + word,
        }
    };
    streams.push(stream);
    streams.len() - 1
}

/// Maximum number of distinct direct-map conflict groups per program (the
/// paper: "most misses are caused by a few instructions").
const MAX_DM_CONFLICT_GROUPS: usize = 6;
/// Maximum number of distinct LRU-adversarial groups per program.
const MAX_PATHOLOGICAL_GROUPS: usize = 4;

/// Blocks that collide in a direct-mapped cache of the reference capacity
/// (same set index *and* same direct-mapping way bits) but coexist within
/// one set of the reference 4-way cache. Groups are placed in distinct sets
/// so they never combine to exceed one set's associativity.
fn make_dm_conflict_group(group_size: usize, group_index: usize) -> Vec<Addr> {
    let set = (group_index as u64 * 37 + 11) % REF_SETS;
    let way_bits = group_index as u64 % REF_ASSOC;
    let group_size = group_size.clamp(2, REF_ASSOC as usize);
    (0..group_size as u64)
        .map(|i| {
            DM_CONFLICT_BASE
                + i * REF_SETS * REF_ASSOC * BLOCK_BYTES
                + way_bits * REF_SETS * BLOCK_BYTES
                + set * BLOCK_BYTES
        })
        .collect()
}

/// `associativity + 1` blocks of one reference set, accessed cyclically: an
/// LRU-adversarial pattern that misses on every access in the 4-way cache
/// but only on a fraction of accesses in a direct-mapped cache of equal
/// capacity (swim's Table 4 anomaly). Groups sit in distinct sets.
fn make_pathological_group(group_index: usize) -> Vec<Addr> {
    let set = (group_index as u64 * 53 + 29) % REF_SETS;
    (0..=REF_ASSOC)
        .map(|i| {
            PATHO_BASE
                + i * REF_SETS * BLOCK_BYTES // distinct DM ways 0..=4 (4 wraps onto way 0)
                + set * BLOCK_BYTES
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn quick_trace(benchmark: Benchmark, ops: usize) -> Vec<MicroOp> {
        TraceGenerator::generate(TraceConfig::new(benchmark).with_ops(ops))
    }

    #[test]
    fn emits_exactly_the_requested_number_of_ops() {
        for n in [0usize, 1, 100, 5_000] {
            assert_eq!(quick_trace(Benchmark::Gcc, n).len(), n);
        }
    }

    #[test]
    fn identical_seeds_give_identical_traces() {
        let a = quick_trace(Benchmark::Li, 20_000);
        let b = quick_trace(Benchmark::Li, 20_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let a =
            TraceGenerator::generate(TraceConfig::new(Benchmark::Li).with_ops(5_000).with_seed(1));
        let b =
            TraceGenerator::generate(TraceConfig::new(Benchmark::Li).with_ops(5_000).with_seed(2));
        assert_ne!(a, b);
    }

    #[test]
    fn instruction_mix_roughly_matches_profile() {
        for bench in [Benchmark::Gcc, Benchmark::Applu, Benchmark::Swim] {
            let profile = bench.profile();
            let trace = quick_trace(bench, 60_000);
            let loads = trace.iter().filter(|op| op.kind.is_load()).count() as f64;
            let stores = trace.iter().filter(|op| op.kind.is_store()).count() as f64;
            let branches = trace.iter().filter(|op| op.kind.is_branch()).count() as f64;
            let n = trace.len() as f64;
            assert!(
                (loads / n - profile.load_frac).abs() < 0.08,
                "{bench}: load fraction {} vs profile {}",
                loads / n,
                profile.load_frac
            );
            assert!((stores / n - profile.store_frac).abs() < 0.08, "{bench}");
            // Branch fraction includes block terminators, so compare loosely.
            assert!(branches / n > 0.01 && branches / n < 0.45, "{bench}");
        }
    }

    #[test]
    fn floating_point_benchmarks_contain_fp_ops() {
        let fp_trace = quick_trace(Benchmark::Applu, 20_000);
        assert!(fp_trace.iter().any(|op| op.kind == OpKind::FpAlu));
        let int_trace = quick_trace(Benchmark::Gcc, 20_000);
        assert!(!int_trace.iter().any(|op| op.kind == OpKind::FpAlu));
    }

    #[test]
    fn branch_targets_lie_in_the_code_region() {
        let trace = quick_trace(Benchmark::Go, 20_000);
        for op in &trace {
            if let OpKind::Branch { target, .. } = op.kind {
                assert!((CODE_BASE..SCALAR_BASE).contains(&target));
            }
            assert!(op.pc >= CODE_BASE && op.pc < SCALAR_BASE);
        }
    }

    #[test]
    fn load_addresses_stay_in_data_regions() {
        let trace = quick_trace(Benchmark::Swim, 30_000);
        for op in &trace {
            if let OpKind::Load { addr, .. } = op.kind {
                assert!(addr >= SCALAR_BASE, "load at {addr:#x} below data region");
            }
        }
    }

    #[test]
    fn per_pc_block_locality_exists() {
        // A substantial fraction of loads access the same block as the
        // previous execution of the same PC — the property PC-based
        // way-prediction relies on.
        let trace = quick_trace(Benchmark::Gcc, 60_000);
        let mut last_block: std::collections::HashMap<Addr, Addr> = Default::default();
        let mut same = 0u64;
        let mut total = 0u64;
        for op in &trace {
            if let OpKind::Load { addr, .. } = op.kind {
                let block = addr / BLOCK_BYTES;
                if let Some(prev) = last_block.insert(op.pc, block) {
                    total += 1;
                    if prev == block {
                        same += 1;
                    }
                }
            }
        }
        assert!(total > 1000);
        let locality = same as f64 / total as f64;
        assert!(
            locality > 0.5,
            "per-PC block locality {locality} too low for PC way-prediction"
        );
    }

    #[test]
    fn xor_approximation_is_mostly_correct() {
        let trace = quick_trace(Benchmark::Vortex, 40_000);
        let mut correct = 0u64;
        let mut total = 0u64;
        for op in &trace {
            if let OpKind::Load { addr, approx_addr } = op.kind {
                total += 1;
                if addr / BLOCK_BYTES == approx_addr / BLOCK_BYTES {
                    correct += 1;
                }
            }
        }
        let accuracy = correct as f64 / total as f64;
        let expected = Benchmark::Vortex.profile().xor_approx_accuracy;
        assert!((accuracy - expected).abs() < 0.06, "accuracy {accuracy}");
    }

    #[test]
    fn code_footprint_scales_with_profile() {
        let count_blocks = |bench: Benchmark| {
            quick_trace(bench, 80_000)
                .iter()
                .map(|op| op.pc / BLOCK_BYTES)
                .collect::<HashSet<_>>()
                .len()
        };
        let fpppp = quick_trace(Benchmark::Fpppp, 400_000)
            .iter()
            .map(|op| op.pc / BLOCK_BYTES)
            .collect::<HashSet<_>>()
            .len();
        let swim = count_blocks(Benchmark::Swim);
        assert!(
            fpppp > 512,
            "fpppp must touch more i-cache blocks than a 16K i-cache holds, got {fpppp}"
        );
        assert!(swim < 512, "swim code footprint should fit, got {swim}");
    }

    #[test]
    fn calls_and_returns_are_balancedish() {
        let trace = quick_trace(Benchmark::Li, 50_000);
        let calls = trace
            .iter()
            .filter(|op| {
                matches!(
                    op.kind,
                    OpKind::Branch {
                        class: BranchClass::Call,
                        ..
                    }
                )
            })
            .count() as i64;
        let returns = trace
            .iter()
            .filter(|op| {
                matches!(
                    op.kind,
                    OpKind::Branch {
                        class: BranchClass::Return,
                        ..
                    }
                )
            })
            .count() as i64;
        assert!(calls > 100, "li should call functions, got {calls}");
        assert!((calls - returns).abs() < calls / 2 + 64);
    }

    #[test]
    fn exact_size_iterator_reports_remaining() {
        let mut generator = TraceGenerator::new(TraceConfig::new(Benchmark::Perl).with_ops(100));
        assert_eq!(generator.len(), 100);
        generator.next();
        assert_eq!(generator.len(), 99);
    }

    #[test]
    fn dm_conflict_groups_collide_only_in_direct_mapped_geometry() {
        let group = make_dm_conflict_group(3, 2);
        // Same 4-way set index and same way bits; different tags.
        let set = |a: Addr| (a / BLOCK_BYTES) % REF_SETS;
        let dm_line = |a: Addr| (a / BLOCK_BYTES) % (REF_SETS * REF_ASSOC);
        assert!(group.windows(2).all(|w| set(w[0]) == set(w[1])));
        assert!(group.windows(2).all(|w| dm_line(w[0]) == dm_line(w[1])));
        let tags: HashSet<_> = group
            .iter()
            .map(|a| a / (REF_SETS * REF_ASSOC * BLOCK_BYTES))
            .collect();
        assert_eq!(tags.len(), group.len());
    }

    #[test]
    fn pathological_groups_have_associativity_plus_one_blocks() {
        let group = make_pathological_group(1);
        assert_eq!(group.len(), REF_ASSOC as usize + 1);
        let set = |a: Addr| (a / BLOCK_BYTES) % REF_SETS;
        assert!(group.windows(2).all(|w| set(w[0]) == set(w[1])));
    }
}
