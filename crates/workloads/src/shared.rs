//! Shared workload streams for gang-scheduled sweeps.
//!
//! A parameter sweep evaluates many machine configurations over few
//! workloads: every point whose `(workload, ops, seed)` triple matches
//! consumes the *identical* micro-op stream, yet a naive sweep regenerates
//! it per point, paying the full generator/scenario/trace-decode cost each
//! time. [`StreamKey`] names that shared identity, and [`SharedStream`]
//! materializes the stream for a key exactly once so any number of
//! consumers ("the gang") can replay it from [`SharedStream::reader`] —
//! each reader refills an [`OpBuffer`] block by block, so the consumer-side
//! loop is the same as for a live generator.
//!
//! Materialized streams are bounded: up to the byte cap the ops live in
//! one in-memory buffer (`ops × 40 B`; the default cap of
//! [`DEFAULT_STREAM_MEMORY_CAP`] holds ~1.6 M ops), and beyond it the
//! stream spills to a temporary file in the `WPTR` trace codec
//! ([`crate::trace`]) — the round-trip is bit-exact, so spilled and
//! in-memory replays produce the same op sequence. Spill files are deleted
//! when the [`SharedStream`] drops.
//!
//! # Example
//!
//! ```
//! use wp_workloads::{Benchmark, OpBlockSource, OpBuffer, SharedStream, StreamKey, WorkloadSpec};
//!
//! let key = StreamKey::new(WorkloadSpec::Benchmark(Benchmark::Gcc), 3_000, 42);
//! let stream = SharedStream::materialize(&key).expect("generated workload");
//! assert_eq!(stream.ops(), 3_000);
//!
//! // Two consumers replay the one materialization independently.
//! for _ in 0..2 {
//!     let mut reader = stream.reader().expect("in-memory stream");
//!     let mut buf = OpBuffer::new();
//!     let mut total = 0;
//!     while reader.fill(&mut buf) > 0 {
//!         total += buf.ops().len();
//!     }
//!     assert_eq!(total, 3_000);
//! }
//! ```

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::batch::{fill_from_iter, OpBlockSource, OpBuffer};
use crate::op::MicroOp;
use crate::trace::{TraceError, TraceReplay, TraceWriter};
use crate::workload::WorkloadSpec;

/// Default per-stream memory cap before a materialized stream spills to the
/// `WPTR` codec: 64 MiB, ~1.6 M ops — comfortably above the sweep defaults
/// while bounding a gang's resident footprint.
pub const DEFAULT_STREAM_MEMORY_CAP: usize = 64 * 1024 * 1024;

/// Environment variable overriding the spill cap (bytes). A tiny value
/// forces every materialized stream down the spill path — how tests and CI
/// exercise the on-disk replay without generating 64 MiB of ops.
pub const STREAM_MEMORY_CAP_ENV: &str = "WPSDM_STREAM_MEMORY_CAP";

/// The effective spill cap: [`STREAM_MEMORY_CAP_ENV`] if set, else
/// [`DEFAULT_STREAM_MEMORY_CAP`]. Engines and [`SharedStream::materialize`]
/// consult this, so an environment override reaches every materialization
/// without a code change; `--stream-cap` on the experiment binaries
/// overrides both.
pub fn stream_memory_cap() -> usize {
    cap_from_env_value(std::env::var_os(STREAM_MEMORY_CAP_ENV).as_deref())
}

/// Parses an override value; `None`, empty, or unparsable values fall back
/// to the default (a misconfigured cap must degrade to correct behaviour,
/// never to a panic — spilling is a memory knob, not a semantic one).
fn cap_from_env_value(value: Option<&std::ffi::OsStr>) -> usize {
    value
        .and_then(|v| v.to_str())
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_STREAM_MEMORY_CAP)
}

/// The identity of a workload *stream*: everything that determines the
/// micro-op sequence and nothing that does not.
///
/// Two simulation points with equal keys consume bit-identical streams
/// regardless of their machine configurations, so a sweep engine can group
/// points by key and materialize each stream once.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreamKey {
    /// The workload generating the stream.
    pub spec: WorkloadSpec,
    /// Maximum ops produced.
    pub ops: usize,
    /// Generator seed (ignored by trace replays but kept in the key so it
    /// never splits or merges identities the engine relies on).
    pub seed: u64,
}

impl StreamKey {
    /// Builds the key.
    pub fn new(spec: WorkloadSpec, ops: usize, seed: u64) -> Self {
        Self { spec, ops, seed }
    }
}

impl std::fmt::Display for StreamKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{} ops/seed {}", self.spec, self.ops, self.seed)
    }
}

/// Distinguishes concurrent spill files of one process.
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
enum Storage {
    /// The whole stream, resident.
    Memory(Vec<MicroOp>),
    /// The stream encoded in a `WPTR` file: an `owned` temp spill (deleted
    /// on drop), or a borrowed pre-existing trace file (left alone).
    Spilled { path: PathBuf, owned: bool },
}

/// One workload stream, produced once and replayable any number of times.
#[derive(Debug)]
pub struct SharedStream {
    ops: usize,
    storage: Storage,
}

impl SharedStream {
    /// Materializes the stream for `key` under the default memory cap
    /// ([`stream_memory_cap`]: the `WPSDM_STREAM_MEMORY_CAP` environment
    /// override if set, else [`DEFAULT_STREAM_MEMORY_CAP`]).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if a trace-file workload cannot be opened,
    /// or if spilling to the temp file fails.
    pub fn materialize(key: &StreamKey) -> Result<Self, TraceError> {
        Self::materialize_capped(key, stream_memory_cap())
    }

    /// Materializes the stream for `key`, keeping at most `cap_bytes` of
    /// ops in memory; longer streams spill to a `WPTR` temp file whose
    /// decode reproduces the generated sequence bit-exactly.
    ///
    /// # Errors
    ///
    /// See [`SharedStream::materialize`].
    pub fn materialize_capped(key: &StreamKey, cap_bytes: usize) -> Result<Self, TraceError> {
        let cap_ops = (cap_bytes / std::mem::size_of::<MicroOp>()).max(1);
        // A trace-file workload that will not fit in memory already *is* a
        // `WPTR` file on disk: borrow it in place (the reader truncates at
        // `ops`) instead of decoding and re-encoding a byte-identical temp
        // copy.
        if let WorkloadSpec::Trace(handle) = &key.spec {
            let ops = key.ops.min(handle.records() as usize);
            if ops > cap_ops {
                return Ok(Self {
                    ops,
                    storage: Storage::Spilled {
                        path: handle.path().to_path_buf(),
                        owned: false,
                    },
                });
            }
        }
        let mut stream = key.spec.stream(key.ops, key.seed)?;
        let mut resident: Vec<MicroOp> = Vec::with_capacity(key.ops.min(cap_ops));
        let overflow = loop {
            match stream.next() {
                Some(op) if resident.len() == cap_ops => break Some(op),
                Some(op) => resident.push(op),
                // The stream ended within the cap (exactly-at-cap included):
                // it stays resident.
                None => {
                    return Ok(Self {
                        ops: resident.len(),
                        storage: Storage::Memory(resident),
                    })
                }
            }
        };
        // Over the cap: spill everything — the already-collected prefix,
        // the op that overflowed, and the live rest — through the codec.
        let path = std::env::temp_dir().join(format!(
            "wpsdm-stream-spill-{}-{}.wptr",
            std::process::id(),
            SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let mut writer = TraceWriter::create(&path, &key.spec.label())?;
        for op in resident.drain(..).chain(overflow).chain(stream) {
            writer.write_op(&op)?;
        }
        let ops = writer.records() as usize;
        writer.finish()?;
        Ok(Self {
            ops,
            storage: Storage::Spilled { path, owned: true },
        })
    }

    /// Number of ops the stream holds (may be below the requested `ops` for
    /// trace workloads shorter than the request).
    pub fn ops(&self) -> usize {
        self.ops
    }

    /// True if the stream lives in a file rather than memory.
    pub fn is_spilled(&self) -> bool {
        matches!(self.storage, Storage::Spilled { .. })
    }

    /// Opens an independent reader over the materialized stream. Readers
    /// replay the identical op sequence the live generator produced, from
    /// the start, truncated to [`SharedStream::ops`].
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if a spill file cannot be re-opened;
    /// in-memory streams never fail.
    pub fn reader(&self) -> Result<SharedStreamReader<'_>, TraceError> {
        Ok(match &self.storage {
            Storage::Memory(ops) => SharedStreamReader::Memory { ops, pos: 0 },
            Storage::Spilled { path, .. } => SharedStreamReader::Spilled {
                replay: TraceReplay::open(path)?,
                left: self.ops,
            },
        })
    }
}

impl Drop for SharedStream {
    fn drop(&mut self) {
        if let Storage::Spilled { path, owned: true } = &self.storage {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A block-producing cursor over a [`SharedStream`]; any number may be live
/// at once.
#[derive(Debug)]
pub enum SharedStreamReader<'a> {
    /// Serves blocks straight out of the resident op buffer.
    Memory {
        /// The whole materialized stream.
        ops: &'a [MicroOp],
        /// Next op to serve.
        pos: usize,
    },
    /// Streams blocks out of the backing `WPTR` file, truncated to the
    /// stream's op count (a borrowed trace file may hold more records than
    /// the stream requested).
    Spilled {
        /// The decoding replay.
        replay: TraceReplay,
        /// Ops still to serve.
        left: usize,
    },
}

impl OpBlockSource for SharedStreamReader<'_> {
    fn fill(&mut self, buf: &mut OpBuffer) -> usize {
        match self {
            SharedStreamReader::Memory { ops, pos } => {
                buf.clear();
                let take = buf.capacity().min(ops.len() - *pos);
                buf.push_slice(&ops[*pos..*pos + take]);
                *pos += take;
                take
            }
            SharedStreamReader::Spilled { replay, left } => {
                let produced = fill_from_iter(&mut replay.by_ref().take(*left), buf);
                *left -= produced;
                produced
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Benchmark;
    use crate::scenario::Scenario;

    fn drain(stream: &SharedStream) -> Vec<MicroOp> {
        let mut reader = stream.reader().expect("reader opens");
        let mut buf = OpBuffer::with_capacity(777);
        let mut all = Vec::new();
        while reader.fill(&mut buf) > 0 {
            all.extend_from_slice(buf.ops());
        }
        all
    }

    #[test]
    fn memory_stream_reproduces_the_live_sequence() {
        let key = StreamKey::new(WorkloadSpec::Benchmark(Benchmark::Li), 5_000, 9);
        let shared = SharedStream::materialize(&key).expect("generated");
        assert!(!shared.is_spilled());
        assert_eq!(shared.ops(), 5_000);
        let direct: Vec<MicroOp> = key.spec.stream(key.ops, key.seed).expect("opens").collect();
        assert_eq!(drain(&shared), direct);
        // A second reader replays from the start, unaffected by the first.
        assert_eq!(drain(&shared), direct);
    }

    #[test]
    fn spilled_stream_reproduces_the_live_sequence() {
        let key = StreamKey::new(WorkloadSpec::Scenario(Scenario::pointer_chase()), 4_000, 3);
        // A 1-byte cap forces the spill path immediately.
        let shared = SharedStream::materialize_capped(&key, 1).expect("spills");
        assert!(shared.is_spilled());
        assert_eq!(shared.ops(), 4_000);
        let direct: Vec<MicroOp> = key.spec.stream(key.ops, key.seed).expect("opens").collect();
        assert_eq!(drain(&shared), direct);
        assert_eq!(drain(&shared), direct);
    }

    #[test]
    fn spill_files_are_deleted_on_drop() {
        let key = StreamKey::new(WorkloadSpec::Benchmark(Benchmark::Gcc), 500, 1);
        let shared = SharedStream::materialize_capped(&key, 1).expect("spills");
        let path = match &shared.storage {
            Storage::Spilled { path, owned } => {
                assert!(*owned, "a generated spill is owned");
                path.clone()
            }
            Storage::Memory(_) => panic!("stream must spill under a 1-byte cap"),
        };
        assert!(path.exists());
        drop(shared);
        assert!(!path.exists());
    }

    #[test]
    fn stream_exactly_at_the_cap_stays_resident() {
        let ops = 64usize;
        let key = StreamKey::new(WorkloadSpec::Benchmark(Benchmark::Li), ops, 5);
        let cap = ops * std::mem::size_of::<MicroOp>();
        let shared = SharedStream::materialize_capped(&key, cap).expect("fits");
        assert!(
            !shared.is_spilled(),
            "an exactly-at-cap stream must not spill"
        );
        assert_eq!(shared.ops(), ops);
        // One op over the cap spills.
        let over = StreamKey::new(WorkloadSpec::Benchmark(Benchmark::Li), ops + 1, 5);
        let spilled = SharedStream::materialize_capped(&over, cap).expect("spills");
        assert!(spilled.is_spilled());
        assert_eq!(spilled.ops(), ops + 1);
        let direct: Vec<MicroOp> = over
            .spec
            .stream(over.ops, over.seed)
            .expect("opens")
            .collect();
        assert_eq!(drain(&spilled), direct);
    }

    #[test]
    fn over_cap_trace_workloads_borrow_the_original_file() {
        // Capture a trace, then materialize it under a tiny cap: the
        // original file is used in place (not copied, not deleted) and the
        // reader truncates at the requested ops.
        let dir = std::env::temp_dir().join(format!("wpsdm-shared-trace-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("borrow.wptr");
        let source = crate::generator::TraceGenerator::new(
            crate::generator::TraceConfig::new(Benchmark::Gcc)
                .with_ops(600)
                .with_seed(2),
        );
        crate::trace::capture_to_file(source, &path, "borrow-test").expect("capture");
        let spec = WorkloadSpec::from_trace_file(&path).expect("opens");

        let key = StreamKey::new(spec.clone(), 400, 0);
        let shared = SharedStream::materialize_capped(&key, 1).expect("borrows");
        assert!(shared.is_spilled());
        assert_eq!(shared.ops(), 400, "truncates at the requested ops");
        let direct: Vec<MicroOp> = spec.stream(400, 0).expect("opens").collect();
        assert_eq!(drain(&shared), direct);
        drop(shared);
        assert!(path.exists(), "a borrowed trace file must survive the drop");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_cap_boundaries_are_exact() {
        // A stream of exactly `cap` bytes stays resident; one byte less
        // spills; one byte more than the stream needs changes nothing.
        let ops = 48usize;
        let key = StreamKey::new(WorkloadSpec::Benchmark(Benchmark::Gcc), ops, 11);
        let stream_bytes = ops * std::mem::size_of::<MicroOp>();
        let direct: Vec<MicroOp> = key.spec.stream(key.ops, key.seed).expect("opens").collect();

        let at_cap = SharedStream::materialize_capped(&key, stream_bytes).expect("fits");
        assert!(!at_cap.is_spilled(), "exactly-at-cap must stay resident");
        assert_eq!(drain(&at_cap), direct);

        let below_cap = SharedStream::materialize_capped(&key, stream_bytes - 1).expect("spills");
        assert!(below_cap.is_spilled(), "cap minus one byte must spill");
        assert_eq!(drain(&below_cap), direct, "spilled replay is bit-exact");

        let above_cap = SharedStream::materialize_capped(&key, stream_bytes + 1).expect("fits");
        assert!(!above_cap.is_spilled(), "cap plus one byte must not spill");
        assert_eq!(drain(&above_cap), direct);
    }

    #[test]
    fn env_cap_parser_falls_back_on_garbage() {
        use std::ffi::OsStr;
        assert_eq!(super::cap_from_env_value(None), DEFAULT_STREAM_MEMORY_CAP);
        assert_eq!(
            super::cap_from_env_value(Some(OsStr::new(""))),
            DEFAULT_STREAM_MEMORY_CAP
        );
        assert_eq!(
            super::cap_from_env_value(Some(OsStr::new("not-a-number"))),
            DEFAULT_STREAM_MEMORY_CAP
        );
        assert_eq!(super::cap_from_env_value(Some(OsStr::new("4096"))), 4096);
        assert_eq!(super::cap_from_env_value(Some(OsStr::new(" 80 "))), 80);
    }

    #[test]
    fn stream_keys_hash_by_identity() {
        use std::collections::HashSet;
        let spec = WorkloadSpec::Benchmark(Benchmark::Gcc);
        let mut set = HashSet::new();
        assert!(set.insert(StreamKey::new(spec.clone(), 100, 1)));
        assert!(!set.insert(StreamKey::new(spec.clone(), 100, 1)));
        assert!(set.insert(StreamKey::new(spec.clone(), 200, 1)));
        assert!(set.insert(StreamKey::new(spec, 100, 2)));
        assert!(set.insert(StreamKey::new(
            WorkloadSpec::Benchmark(Benchmark::Li),
            100,
            1
        )));
    }
}
