//! A unified handle over every reference-stream source: the synthetic SPEC
//! profiles, the parameterised stress scenarios, and recorded trace files.
//!
//! [`WorkloadSpec`] is the *identity* of a workload — hashable and
//! comparable, so the experiment engine can use it (together with the
//! machine and run options) as a simulation dedup key. For trace files the
//! identity is the content digest, not the path. [`WorkloadSpec::stream`]
//! turns the identity into a concrete [`MicroOp`] iterator.
//!
//! # Example
//!
//! ```
//! use wp_workloads::{Benchmark, Scenario, WorkloadSpec};
//!
//! let gcc = WorkloadSpec::parse("gcc").expect("a paper benchmark");
//! let chase = WorkloadSpec::parse("pointer_chase").expect("a scenario");
//! assert_eq!(gcc, WorkloadSpec::Benchmark(Benchmark::Gcc));
//! assert_eq!(chase, WorkloadSpec::Scenario(Scenario::pointer_chase()));
//!
//! let trace: Vec<_> = chase.stream(500, 42).expect("not a file").collect();
//! assert_eq!(trace.len(), 500);
//! ```

use crate::batch::{fill_from_iter, OpBlockSource, OpBuffer};
use crate::generator::{TraceConfig, TraceGenerator};
use crate::op::MicroOp;
use crate::profile::Benchmark;
use crate::scenario::{Scenario, ScenarioGenerator};
use crate::trace::{TraceError, TraceHandle, TraceReplay};

/// Any source of a reference stream.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WorkloadSpec {
    /// A synthetic SPEC CPU95-like profile from the paper's Table 2.
    Benchmark(Benchmark),
    /// A parameterised stress scenario.
    Scenario(Scenario),
    /// A recorded trace file (identified by content, not path).
    Trace(TraceHandle),
}

impl WorkloadSpec {
    /// Looks up a generated workload by name: a benchmark (`gcc`, `swim`,
    /// …) or a default-parameter scenario (`pointer_chase`,
    /// `strided_stream`, `phase_mix`). Trace files are opened with
    /// [`WorkloadSpec::from_trace_file`] instead.
    pub fn parse(name: &str) -> Option<WorkloadSpec> {
        if let Some(benchmark) = Benchmark::from_name(name) {
            return Some(WorkloadSpec::Benchmark(benchmark));
        }
        Scenario::parse(name).map(WorkloadSpec::Scenario)
    }

    /// Every named generated workload: the eleven paper benchmarks followed
    /// by the default scenarios.
    pub fn generated_names() -> Vec<&'static str> {
        Benchmark::all()
            .iter()
            .map(|b| b.name())
            .chain(Scenario::all().iter().map(|s| s.name()))
            .collect()
    }

    /// Opens and validates a trace file as a workload.
    ///
    /// # Errors
    ///
    /// Returns any I/O or header-validation error from
    /// [`TraceHandle::open`].
    pub fn from_trace_file(path: impl Into<std::path::PathBuf>) -> Result<Self, TraceError> {
        Ok(WorkloadSpec::Trace(TraceHandle::open(path)?))
    }

    /// A short display label (`gcc`, `pointer_chase`,
    /// `trace:<stem>#<digest>`).
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Benchmark(b) => b.name().to_string(),
            WorkloadSpec::Scenario(s) => s.name().to_string(),
            WorkloadSpec::Trace(h) => h.label(),
        }
    }

    /// The benchmark, if this is a benchmark workload.
    pub fn benchmark(&self) -> Option<Benchmark> {
        match self {
            WorkloadSpec::Benchmark(b) => Some(*b),
            _ => None,
        }
    }

    /// Opens the reference stream: at most `ops` micro-ops, generated with
    /// `seed` for the synthetic sources. A trace replays its recorded
    /// stream (the seed is irrelevant) truncated to `ops` if the recording
    /// is longer.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if a trace-file workload cannot be
    /// re-opened; generated workloads never fail.
    pub fn stream(&self, ops: usize, seed: u64) -> Result<WorkloadStream, TraceError> {
        Ok(match self {
            WorkloadSpec::Benchmark(benchmark) => WorkloadStream::Generated(Box::new(
                TraceGenerator::new(TraceConfig::new(*benchmark).with_ops(ops).with_seed(seed)),
            )),
            WorkloadSpec::Scenario(scenario) => {
                WorkloadStream::Scenario(ScenarioGenerator::new(*scenario, ops, seed))
            }
            WorkloadSpec::Trace(handle) => WorkloadStream::Replay(handle.replay()?.take(ops)),
        })
    }
}

impl std::fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl From<Benchmark> for WorkloadSpec {
    fn from(benchmark: Benchmark) -> Self {
        WorkloadSpec::Benchmark(benchmark)
    }
}

impl From<Scenario> for WorkloadSpec {
    fn from(scenario: Scenario) -> Self {
        WorkloadSpec::Scenario(scenario)
    }
}

impl From<TraceHandle> for WorkloadSpec {
    fn from(handle: TraceHandle) -> Self {
        WorkloadSpec::Trace(handle)
    }
}

/// The concrete [`MicroOp`] stream behind a [`WorkloadSpec`]: the processor
/// consumes all three variants identically.
#[derive(Debug)]
pub enum WorkloadStream {
    /// A live synthetic benchmark generator (boxed: the generator holds the
    /// whole static program, much larger than the other variants).
    Generated(Box<TraceGenerator>),
    /// A live scenario generator.
    Scenario(ScenarioGenerator),
    /// A streaming trace-file replay, truncated to the requested ops.
    Replay(std::iter::Take<TraceReplay>),
}

impl Iterator for WorkloadStream {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        match self {
            WorkloadStream::Generated(g) => g.next(),
            WorkloadStream::Scenario(s) => s.next(),
            WorkloadStream::Replay(r) => r.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            WorkloadStream::Generated(g) => g.size_hint(),
            WorkloadStream::Scenario(s) => s.size_hint(),
            WorkloadStream::Replay(r) => r.size_hint(),
        }
    }
}

impl OpBlockSource for WorkloadStream {
    /// Refills `buf` resolving the source variant once per block rather
    /// than once per op, so the processor's block loop runs monomorphic
    /// against the concrete generator.
    fn fill(&mut self, buf: &mut OpBuffer) -> usize {
        match self {
            WorkloadStream::Generated(g) => fill_from_iter(g.as_mut(), buf),
            WorkloadStream::Scenario(s) => fill_from_iter(s, buf),
            WorkloadStream::Replay(r) => fill_from_iter(r, buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_generated_name_parses() {
        let names = WorkloadSpec::generated_names();
        assert_eq!(names.len(), 17); // 11 benchmarks + 6 scenarios
        for name in names {
            let spec = WorkloadSpec::parse(name).expect("listed names parse");
            assert_eq!(spec.label(), name);
        }
        assert_eq!(WorkloadSpec::parse("unknown"), None);
    }

    #[test]
    fn benchmark_streams_match_the_generator() {
        let spec = WorkloadSpec::Benchmark(Benchmark::Li);
        let via_spec: Vec<_> = spec.stream(2_000, 9).expect("generated").collect();
        let direct: Vec<_> =
            TraceGenerator::new(TraceConfig::new(Benchmark::Li).with_ops(2_000).with_seed(9))
                .collect();
        assert_eq!(via_spec, direct);
        assert_eq!(spec.benchmark(), Some(Benchmark::Li));
    }

    #[test]
    fn scenario_streams_match_the_generator() {
        let spec = WorkloadSpec::Scenario(Scenario::strided_stream());
        let via_spec: Vec<_> = spec.stream(2_000, 9).expect("generated").collect();
        let direct: Vec<_> = ScenarioGenerator::new(Scenario::strided_stream(), 2_000, 9).collect();
        assert_eq!(via_spec, direct);
        assert_eq!(spec.benchmark(), None);
    }

    #[test]
    fn specs_hash_by_identity() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        assert!(set.insert(WorkloadSpec::Benchmark(Benchmark::Gcc)));
        assert!(!set.insert(WorkloadSpec::Benchmark(Benchmark::Gcc)));
        assert!(set.insert(WorkloadSpec::Scenario(Scenario::pointer_chase())));
        assert!(set.insert(WorkloadSpec::Scenario(Scenario::PointerChase {
            nodes: 8,
            node_stride: 64,
        })));
    }
}
