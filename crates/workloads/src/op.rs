//! The micro-op trace format shared by the cache controllers and the
//! processor timing model.

use wp_mem::Addr;

/// The class of a control-transfer instruction, used by the fetch engine to
/// pick the right way-prediction source (BTB, SAWP, or RAS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchClass {
    /// A conditional branch.
    Conditional,
    /// A function call (always taken; pushes a return address).
    Call,
    /// A function return (always taken; pops the return address stack).
    Return,
    /// An unconditional direct jump.
    Jump,
}

/// What a micro-op does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// An integer ALU operation.
    IntAlu,
    /// A floating-point operation.
    FpAlu,
    /// A load from memory.
    Load {
        /// The effective address.
        addr: Addr,
        /// The XOR approximation of the address available before the full
        /// address add completes (Section 2.2.1); usually but not always
        /// equal to `addr`.
        approx_addr: Addr,
    },
    /// A store to memory.
    Store {
        /// The effective address.
        addr: Addr,
    },
    /// A control transfer.
    Branch {
        /// Whether the branch is taken in this dynamic instance.
        taken: bool,
        /// The target address if taken.
        target: Addr,
        /// The branch class.
        class: BranchClass,
    },
}

impl OpKind {
    /// True for loads and stores.
    pub fn is_mem(&self) -> bool {
        matches!(self, OpKind::Load { .. } | OpKind::Store { .. })
    }

    /// True for loads.
    pub fn is_load(&self) -> bool {
        matches!(self, OpKind::Load { .. })
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, OpKind::Store { .. })
    }

    /// True for control transfers.
    pub fn is_branch(&self) -> bool {
        matches!(self, OpKind::Branch { .. })
    }
}

/// One dynamic micro-op of the committed execution path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MicroOp {
    /// Program counter of the instruction.
    pub pc: Addr,
    /// What the instruction does.
    pub kind: OpKind,
    /// Distances (in dynamic instructions, looking backwards) to the
    /// producers of this op's source operands; `0` means "no dependence /
    /// value was ready long ago". At most two register sources are modelled.
    pub src_deps: [u16; 2],
}

impl MicroOp {
    /// Convenience constructor for an op with no register dependences.
    pub fn independent(pc: Addr, kind: OpKind) -> Self {
        Self {
            pc,
            kind,
            src_deps: [0, 0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        let load = OpKind::Load {
            addr: 0x10,
            approx_addr: 0x10,
        };
        let store = OpKind::Store { addr: 0x20 };
        let branch = OpKind::Branch {
            taken: true,
            target: 0x400,
            class: BranchClass::Conditional,
        };
        assert!(load.is_mem() && load.is_load() && !load.is_store());
        assert!(store.is_mem() && store.is_store() && !store.is_load());
        assert!(branch.is_branch() && !branch.is_mem());
        assert!(!OpKind::IntAlu.is_mem() && !OpKind::IntAlu.is_branch());
        assert!(!OpKind::FpAlu.is_load());
    }

    #[test]
    fn independent_op_has_no_deps() {
        let op = MicroOp::independent(0x100, OpKind::IntAlu);
        assert_eq!(op.src_deps, [0, 0]);
        assert_eq!(op.pc, 0x100);
    }
}
