//! Synthetic SPEC CPU95-like workloads for the wpsdm reproduction of
//! *Reducing Set-Associative Cache Energy via Way-Prediction and Selective
//! Direct-Mapping* (Powell et al., MICRO 2001).
//!
//! The paper evaluates eleven SPEC CPU95 applications (Table 2). We do not
//! have the binaries, inputs, or an Alpha ISA toolchain, so this crate
//! synthesises micro-op traces whose *statistical properties* match what the
//! techniques are sensitive to:
//!
//! * d-cache miss rates under direct-mapped and 4-way set-associative
//!   organisations (Table 4), including swim's pathological behaviour where
//!   the 4-way cache misses *more* than the direct-mapped one,
//! * per-instruction block locality (drives PC-based way-prediction
//!   accuracy, ~60 % on average),
//! * the accuracy of the XOR approximation of the load address (~70 %),
//! * the fraction of non-conflicting accesses captured by selective
//!   direct-mapping (~77 %),
//! * instruction-stream structure — basic-block lengths, call/return
//!   behaviour, branch bias, and code footprint (fpppp's footprint thrashes
//!   a 16 KB i-cache, every other benchmark fits comfortably).
//!
//! Traces are produced by [`TraceGenerator`], an iterator of [`MicroOp`]s
//! that is fully deterministic given a [`TraceConfig`] seed.
//!
//! Beyond the paper's profiles, the crate provides two more reference-stream
//! sources, unified behind [`WorkloadSpec`]:
//!
//! * [`scenario`] — parameterised stress scenarios (pointer chasing, strided
//!   streaming with configurable conflict pressure, a phase-switching mix);
//! * [`trace`] — a versioned on-disk trace format with capture
//!   ([`TraceWriter`]) and streaming replay ([`TraceReplay`]), so predictor
//!   policies can be compared on bit-identical recorded streams.
//!
//! # Example
//!
//! ```
//! use wp_workloads::{Benchmark, TraceConfig, TraceGenerator};
//!
//! let config = TraceConfig::new(Benchmark::Gcc).with_ops(10_000).with_seed(7);
//! let trace: Vec<_> = TraceGenerator::new(config).collect();
//! assert_eq!(trace.len(), 10_000);
//! // Identical configurations produce identical traces.
//! let again: Vec<_> = TraceGenerator::new(config).collect();
//! assert_eq!(trace, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod generator;
mod op;
mod profile;
pub mod profile_spec;
pub mod scenario;
pub mod shared;
pub mod trace;
mod workload;

pub use batch::{
    fill_from_iter, BlockSourceIter, IterBlockSource, OpBlockSource, OpBuffer, DEFAULT_OP_BLOCK,
};
pub use generator::{TraceConfig, TraceGenerator};
pub use op::{BranchClass, MicroOp, OpKind};
pub use profile::{Benchmark, BenchmarkProfile};
pub use profile_spec::{ProfileError, ProfileSpec, ProfileTier, PROFILE_VERSION};
pub use scenario::{Scenario, ScenarioGenerator, REF_ASSOC};
pub use shared::{
    stream_memory_cap, SharedStream, SharedStreamReader, StreamKey, DEFAULT_STREAM_MEMORY_CAP,
    STREAM_MEMORY_CAP_ENV,
};
pub use trace::{
    capture_to_file, file_digest, Fnv1a, TextTraceReader, TextTraceWriter, TraceError, TraceHandle,
    TraceId, TraceReader, TraceReplay, TraceWriter, TRACE_MAGIC, TRACE_VERSION,
};
pub use workload::{WorkloadSpec, WorkloadStream};
