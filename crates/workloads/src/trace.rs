//! On-disk reference traces: a versioned, compact binary format with a
//! human-readable text twin.
//!
//! The paper's evaluation — like the related way-memoization and
//! cache-level-prediction work — is driven by recorded reference streams.
//! This module lets any workload's [`MicroOp`] stream be captured once and
//! replayed bit-identically, so predictor policies can be compared on the
//! *same* accesses rather than regenerated synthetic ones.
//!
//! Three layers:
//!
//! * [`TraceWriter`] / [`TraceReader`] — the binary codec (format `WPTR`
//!   version 1, documented in `docs/TRACE_FORMAT.md`): a fixed little-endian
//!   header followed by one variable-length record per op, with
//!   delta+varint-compressed program counters and addresses;
//! * [`TextTraceWriter`] / [`TextTraceReader`] — the text twin, one op per
//!   line, for inspection, diffing, and hand-written fixtures;
//! * [`TraceHandle`] / [`TraceReplay`] — a validated reference to a trace
//!   *file* (identity = version + record count + content digest, used by the
//!   experiment engine's dedup key) and the streaming iterator that replays
//!   it without materializing the trace in memory.
//!
//! # Example
//!
//! Capture a generator's stream into an in-memory buffer and replay it:
//!
//! ```
//! use std::io::Cursor;
//! use wp_workloads::{Benchmark, TraceConfig, TraceGenerator};
//! use wp_workloads::{TraceReader, TraceWriter};
//!
//! # fn main() -> Result<(), wp_workloads::TraceError> {
//! let config = TraceConfig::new(Benchmark::Gcc).with_ops(1_000);
//! let live: Vec<_> = TraceGenerator::new(config).collect();
//!
//! let mut writer = TraceWriter::new(Cursor::new(Vec::new()), "gcc demo")?;
//! for op in &live {
//!     writer.write_op(op)?;
//! }
//! let buffer = writer.finish()?.into_inner();
//!
//! let reader = TraceReader::new(Cursor::new(buffer))?;
//! assert_eq!(reader.records(), 1_000);
//! assert_eq!(reader.source(), "gcc demo");
//! let replayed: Vec<_> = reader.collect::<Result<_, _>>()?;
//! assert_eq!(replayed, live);
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use wp_mem::Addr;

use crate::op::{BranchClass, MicroOp, OpKind};

/// Magic bytes opening every binary trace file.
pub const TRACE_MAGIC: [u8; 4] = *b"WPTR";

/// The binary format version this build writes and the only one it reads.
pub const TRACE_VERSION: u16 = 1;

/// Byte offset of the record-count field in the binary header (patched by
/// [`TraceWriter::finish`]).
const COUNT_OFFSET: u64 = 8;

/// Record tag values (low three bits of the tag byte).
const TAG_INT: u8 = 0;
const TAG_FP: u8 = 1;
const TAG_LOAD: u8 = 2;
const TAG_STORE: u8 = 3;
const TAG_BRANCH: u8 = 4;
/// Branch class field (tag bits 3–4) and taken flag (tag bit 5).
const BRANCH_CLASS_SHIFT: u8 = 3;
const BRANCH_TAKEN_BIT: u8 = 1 << 5;

/// Errors produced by the trace codec.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `WPTR` magic.
    BadMagic([u8; 4]),
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u16),
    /// The byte stream violates the format (context explains where).
    Corrupt(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic(m) => {
                write!(f, "not a wpsdm trace (magic {m:02x?}, expected \"WPTR\")")
            }
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this build reads version {TRACE_VERSION})"
                )
            }
            TraceError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// varint / zigzag primitives
// ---------------------------------------------------------------------------

/// LEB128-encodes `value` into `out`.
fn write_varint<W: Write>(out: &mut W, mut value: u64) -> io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            return out.write_all(&[byte]);
        }
        out.write_all(&[byte | 0x80])?;
    }
}

/// Decodes one LEB128 value (at most ten bytes for a u64).
fn read_varint<R: Read>(input: &mut R) -> Result<u64, TraceError> {
    let mut value: u64 = 0;
    for shift in 0..10 {
        let mut byte = [0u8; 1];
        input.read_exact(&mut byte).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => {
                TraceError::Corrupt("record truncated mid-varint".into())
            }
            _ => TraceError::Io(e),
        })?;
        value |= u64::from(byte[0] & 0x7f) << (7 * shift);
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(TraceError::Corrupt("varint longer than 10 bytes".into()))
}

/// Zigzag-maps a signed delta onto an unsigned varint-friendly value.
fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// The wrapping two's-complement delta `to - from`, as a signed value.
fn delta(from: u64, to: u64) -> i64 {
    to.wrapping_sub(from) as i64
}

/// Applies a signed delta to a base value (inverse of [`delta`]).
fn apply_delta(from: u64, d: i64) -> u64 {
    from.wrapping_add(d as u64)
}

// ---------------------------------------------------------------------------
// Binary writer
// ---------------------------------------------------------------------------

/// Streaming binary trace writer.
///
/// Records are encoded as they arrive; [`TraceWriter::finish`] patches the
/// record count into the header, so the op count need not be known up front
/// and any `Write + Seek` sink works (files, `Cursor<Vec<u8>>`).
#[derive(Debug)]
pub struct TraceWriter<W: Write + Seek> {
    out: W,
    records: u64,
    prev_pc: Addr,
    prev_data_addr: Addr,
}

impl TraceWriter<BufWriter<File>> {
    /// Creates a trace file at `path` (truncating any existing file) with
    /// the given human-readable source label.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file, or
    /// [`TraceError::Corrupt`] if `label` exceeds 65 535 bytes.
    pub fn create(path: &Path, label: &str) -> Result<Self, TraceError> {
        Self::new(BufWriter::new(File::create(path)?), label)
    }
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Starts a trace on `out`, writing the header with a zero record count
    /// (patched on [`TraceWriter::finish`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O error, or [`TraceError::Corrupt`] if `label` exceeds
    /// 65 535 bytes.
    pub fn new(mut out: W, label: &str) -> Result<Self, TraceError> {
        let label_len = u16::try_from(label.len())
            .map_err(|_| TraceError::Corrupt("source label longer than 65535 bytes".into()))?;
        out.write_all(&TRACE_MAGIC)?;
        out.write_all(&TRACE_VERSION.to_le_bytes())?;
        out.write_all(&0u16.to_le_bytes())?; // reserved flags
        out.write_all(&0u64.to_le_bytes())?; // record count, patched later
        out.write_all(&label_len.to_le_bytes())?;
        out.write_all(label.as_bytes())?;
        Ok(Self {
            out,
            records: 0,
            prev_pc: 0,
            prev_data_addr: 0,
        })
    }

    /// Appends one op.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying sink.
    pub fn write_op(&mut self, op: &MicroOp) -> Result<(), TraceError> {
        let (tag, payload): (u8, [Option<i64>; 2]) = match op.kind {
            OpKind::IntAlu => (TAG_INT, [None, None]),
            OpKind::FpAlu => (TAG_FP, [None, None]),
            OpKind::Load { addr, approx_addr } => (
                TAG_LOAD,
                [
                    Some(delta(self.prev_data_addr, addr)),
                    Some(delta(addr, approx_addr)),
                ],
            ),
            OpKind::Store { addr } => (TAG_STORE, [Some(delta(self.prev_data_addr, addr)), None]),
            OpKind::Branch {
                taken,
                target,
                class,
            } => {
                let class_bits = match class {
                    BranchClass::Conditional => 0u8,
                    BranchClass::Call => 1,
                    BranchClass::Return => 2,
                    BranchClass::Jump => 3,
                };
                let tag = TAG_BRANCH
                    | (class_bits << BRANCH_CLASS_SHIFT)
                    | if taken { BRANCH_TAKEN_BIT } else { 0 };
                (tag, [Some(delta(op.pc, target)), None])
            }
        };
        self.out.write_all(&[tag])?;
        write_varint(&mut self.out, zigzag(delta(self.prev_pc, op.pc)))?;
        for field in payload.into_iter().flatten() {
            write_varint(&mut self.out, zigzag(field))?;
        }
        write_varint(&mut self.out, u64::from(op.src_deps[0]))?;
        write_varint(&mut self.out, u64::from(op.src_deps[1]))?;

        self.prev_pc = op.pc;
        if let OpKind::Load { addr, .. } | OpKind::Store { addr } = op.kind {
            self.prev_data_addr = addr;
        }
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Patches the record count into the header, flushes, and returns the
    /// underlying sink.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from seeking, writing, or flushing.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.out.seek(SeekFrom::Start(COUNT_OFFSET))?;
        self.out.write_all(&self.records.to_le_bytes())?;
        self.out.seek(SeekFrom::End(0))?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Captures every op of `ops` into a new trace file at `path`, returning the
/// number of records written.
///
/// # Errors
///
/// Returns any error from creating or writing the file.
pub fn capture_to_file(
    ops: impl IntoIterator<Item = MicroOp>,
    path: &Path,
    label: &str,
) -> Result<u64, TraceError> {
    let mut writer = TraceWriter::create(path, label)?;
    for op in ops {
        writer.write_op(&op)?;
    }
    let records = writer.records();
    writer.finish()?;
    Ok(records)
}

// ---------------------------------------------------------------------------
// Binary reader
// ---------------------------------------------------------------------------

/// Streaming binary trace reader: an iterator of `Result<MicroOp, TraceError>`
/// that never materializes the whole trace.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    records: u64,
    read: u64,
    source: String,
    prev_pc: Addr,
    prev_data_addr: Addr,
}

impl TraceReader<BufReader<File>> {
    /// Opens the trace file at `path` and validates its header.
    ///
    /// # Errors
    ///
    /// Returns an I/O error, [`TraceError::BadMagic`],
    /// [`TraceError::UnsupportedVersion`], or [`TraceError::Corrupt`] for a
    /// malformed header.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> TraceReader<R> {
    /// Starts reading a trace from `input`, validating the header.
    ///
    /// # Errors
    ///
    /// Returns an I/O error, [`TraceError::BadMagic`],
    /// [`TraceError::UnsupportedVersion`], or [`TraceError::Corrupt`] for a
    /// malformed header.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 4];
        input.read_exact(&mut magic)?;
        if magic != TRACE_MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        let mut u16buf = [0u8; 2];
        input.read_exact(&mut u16buf)?;
        let version = u16::from_le_bytes(u16buf);
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        input.read_exact(&mut u16buf)?; // reserved flags
        let mut u64buf = [0u8; 8];
        input.read_exact(&mut u64buf)?;
        let records = u64::from_le_bytes(u64buf);
        input.read_exact(&mut u16buf)?;
        let mut label = vec![0u8; usize::from(u16::from_le_bytes(u16buf))];
        input.read_exact(&mut label)?;
        let source = String::from_utf8(label)
            .map_err(|_| TraceError::Corrupt("source label is not UTF-8".into()))?;
        Ok(Self {
            input,
            records,
            read: 0,
            source,
            prev_pc: 0,
            prev_data_addr: 0,
        })
    }

    /// Total records the header declares.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The human-readable source label recorded at capture time.
    pub fn source(&self) -> &str {
        &self.source
    }

    fn read_op(&mut self) -> Result<MicroOp, TraceError> {
        let mut tag = [0u8; 1];
        self.input
            .read_exact(&mut tag)
            .map_err(|e| match e.kind() {
                io::ErrorKind::UnexpectedEof => TraceError::Corrupt(format!(
                    "file ends after {} of {} records",
                    self.read, self.records
                )),
                _ => TraceError::Io(e),
            })?;
        let tag = tag[0];
        let pc = apply_delta(self.prev_pc, unzigzag(read_varint(&mut self.input)?));
        let kind = match tag & 0x07 {
            TAG_INT => OpKind::IntAlu,
            TAG_FP => OpKind::FpAlu,
            TAG_LOAD => {
                let addr =
                    apply_delta(self.prev_data_addr, unzigzag(read_varint(&mut self.input)?));
                let approx_addr = apply_delta(addr, unzigzag(read_varint(&mut self.input)?));
                self.prev_data_addr = addr;
                OpKind::Load { addr, approx_addr }
            }
            TAG_STORE => {
                let addr =
                    apply_delta(self.prev_data_addr, unzigzag(read_varint(&mut self.input)?));
                self.prev_data_addr = addr;
                OpKind::Store { addr }
            }
            TAG_BRANCH => {
                let class = match (tag >> BRANCH_CLASS_SHIFT) & 0x03 {
                    0 => BranchClass::Conditional,
                    1 => BranchClass::Call,
                    2 => BranchClass::Return,
                    _ => BranchClass::Jump,
                };
                let target = apply_delta(pc, unzigzag(read_varint(&mut self.input)?));
                OpKind::Branch {
                    taken: tag & BRANCH_TAKEN_BIT != 0,
                    target,
                    class,
                }
            }
            other => {
                return Err(TraceError::Corrupt(format!(
                    "unknown record tag {other} at record {}",
                    self.read
                )))
            }
        };
        let dep = |v: u64, read: u64| -> Result<u16, TraceError> {
            u16::try_from(v).map_err(|_| {
                TraceError::Corrupt(format!("dependence distance {v} at record {read}"))
            })
        };
        let src_deps = [
            dep(read_varint(&mut self.input)?, self.read)?,
            dep(read_varint(&mut self.input)?, self.read)?,
        ];
        self.prev_pc = pc;
        Ok(MicroOp { pc, kind, src_deps })
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<MicroOp, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.read >= self.records {
            return None;
        }
        let op = self.read_op();
        self.read += 1;
        if op.is_err() {
            // Do not keep decoding past a corrupt record.
            self.read = self.records;
        }
        Some(op)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.records - self.read) as usize;
        (remaining, Some(remaining))
    }
}

// ---------------------------------------------------------------------------
// Text twin
// ---------------------------------------------------------------------------

/// Writer for the human-readable text twin of the binary format: a
/// `wptrace v1` header line, a `# source:` comment, then one op per line
/// (see `docs/TRACE_FORMAT.md`).
#[derive(Debug)]
pub struct TextTraceWriter<W: Write> {
    out: W,
    records: u64,
}

impl<W: Write> TextTraceWriter<W> {
    /// Starts a text trace on `out`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the sink, or [`TraceError::Corrupt`] if
    /// `label` contains control characters — the format is line-oriented,
    /// so an embedded newline would inject phantom records.
    pub fn new(mut out: W, label: &str) -> Result<Self, TraceError> {
        if label.chars().any(|c| c.is_control()) {
            return Err(TraceError::Corrupt(
                "source label must not contain control characters".into(),
            ));
        }
        writeln!(out, "wptrace v{TRACE_VERSION}")?;
        if !label.is_empty() {
            writeln!(out, "# source: {label}")?;
        }
        Ok(Self { out, records: 0 })
    }

    /// Appends one op as a text line.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the sink.
    pub fn write_op(&mut self, op: &MicroOp) -> Result<(), TraceError> {
        let [d0, d1] = op.src_deps;
        match op.kind {
            OpKind::IntAlu => writeln!(self.out, "I {:#x} {d0} {d1}", op.pc)?,
            OpKind::FpAlu => writeln!(self.out, "F {:#x} {d0} {d1}", op.pc)?,
            OpKind::Load { addr, approx_addr } => writeln!(
                self.out,
                "L {:#x} {addr:#x} {approx_addr:#x} {d0} {d1}",
                op.pc
            )?,
            OpKind::Store { addr } => writeln!(self.out, "S {:#x} {addr:#x} {d0} {d1}", op.pc)?,
            OpKind::Branch {
                taken,
                target,
                class,
            } => {
                let class = match class {
                    BranchClass::Conditional => 'c',
                    BranchClass::Call => 'C',
                    BranchClass::Return => 'R',
                    BranchClass::Jump => 'J',
                };
                let taken = if taken { 'T' } else { 'N' };
                writeln!(
                    self.out,
                    "B {:#x} {target:#x} {taken} {class} {d0} {d1}",
                    op.pc
                )?
            }
        }
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from flushing.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming reader for the text twin; an iterator of
/// `Result<MicroOp, TraceError>`.
#[derive(Debug)]
pub struct TextTraceReader<R: BufRead> {
    lines: io::Lines<R>,
    source: String,
    line_no: u64,
    failed: bool,
}

impl<R: BufRead> TextTraceReader<R> {
    /// Starts reading a text trace, validating the `wptrace` header line and
    /// capturing the `# source:` comment if present.
    ///
    /// # Errors
    ///
    /// Returns an I/O error, [`TraceError::UnsupportedVersion`], or
    /// [`TraceError::Corrupt`] for a malformed header.
    pub fn new(input: R) -> Result<Self, TraceError> {
        let mut lines = input.lines();
        let header = lines
            .next()
            .ok_or_else(|| TraceError::Corrupt("empty text trace".into()))??;
        let version = header
            .strip_prefix("wptrace v")
            .and_then(|v| v.trim().parse::<u16>().ok())
            .ok_or_else(|| TraceError::Corrupt(format!("bad text header `{header}`")))?;
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        Ok(Self {
            lines,
            source: String::new(),
            line_no: 1,
            failed: false,
        })
    }

    /// The `# source:` label, if one preceded the records read so far.
    pub fn source(&self) -> &str {
        &self.source
    }

    fn parse_line(&self, line: &str) -> Result<MicroOp, TraceError> {
        let corrupt = |what: &str| TraceError::Corrupt(format!("line {}: {what}", self.line_no));
        let mut fields = line.split_whitespace();
        let kind_tag = fields.next().ok_or_else(|| corrupt("empty record"))?;
        let mut addr_field = |name: &str| -> Result<u64, TraceError> {
            let field = fields
                .next()
                .ok_or_else(|| corrupt(&format!("missing {name}")))?;
            let digits = field.strip_prefix("0x").unwrap_or(field);
            u64::from_str_radix(digits, 16).map_err(|_| corrupt(&format!("bad {name} `{field}`")))
        };
        let kind = match kind_tag {
            "I" => OpKind::IntAlu,
            "F" => OpKind::FpAlu,
            "L" => OpKind::Load {
                addr: 0,
                approx_addr: 0,
            },
            "S" => OpKind::Store { addr: 0 },
            "B" => OpKind::Branch {
                taken: false,
                target: 0,
                class: BranchClass::Conditional,
            },
            other => return Err(corrupt(&format!("unknown record kind `{other}`"))),
        };
        let pc = addr_field("pc")?;
        let kind = match kind {
            OpKind::Load { .. } => {
                let addr = addr_field("address")?;
                let approx_addr = addr_field("approximate address")?;
                OpKind::Load { addr, approx_addr }
            }
            OpKind::Store { .. } => OpKind::Store {
                addr: addr_field("address")?,
            },
            OpKind::Branch { .. } => {
                let target = addr_field("target")?;
                let taken = match fields.next() {
                    Some("T") => true,
                    Some("N") => false,
                    _ => return Err(corrupt("bad taken flag (expected T or N)")),
                };
                let class = match fields.next() {
                    Some("c") => BranchClass::Conditional,
                    Some("C") => BranchClass::Call,
                    Some("R") => BranchClass::Return,
                    Some("J") => BranchClass::Jump,
                    _ => return Err(corrupt("bad branch class (expected c, C, R, or J)")),
                };
                OpKind::Branch {
                    taken,
                    target,
                    class,
                }
            }
            other => other,
        };
        let mut dep = |name: &str| -> Result<u16, TraceError> {
            fields
                .next()
                .ok_or_else(|| corrupt(&format!("missing {name}")))?
                .parse()
                .map_err(|_| corrupt(&format!("bad {name}")))
        };
        let src_deps = [dep("first dependence")?, dep("second dependence")?];
        if fields.next().is_some() {
            return Err(corrupt("trailing fields"));
        }
        Ok(MicroOp { pc, kind, src_deps })
    }
}

impl<R: BufRead> Iterator for TextTraceReader<R> {
    type Item = Result<MicroOp, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            self.line_no += 1;
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(TraceError::Io(e)));
                }
            };
            let trimmed = line.trim();
            if let Some(label) = trimmed.strip_prefix("# source:") {
                self.source = label.trim().to_string();
                continue;
            }
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let op = self.parse_line(trimmed);
            if op.is_err() {
                self.failed = true;
            }
            return Some(op);
        }
    }
}

// ---------------------------------------------------------------------------
// File identity and replay
// ---------------------------------------------------------------------------

/// The content identity of a trace: format version, record count, and an
/// FNV-1a digest of the file's bytes. Two copies of the same capture — even
/// at different paths — have equal identities, which is what the experiment
/// engine's dedup key uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId {
    /// Format version of the file.
    pub version: u16,
    /// Number of records the header declares.
    pub records: u64,
    /// FNV-1a (64-bit) digest over the entire file contents.
    pub digest: u64,
}

/// A validated reference to a binary trace file: the path it was opened
/// from plus its content [`TraceId`].
///
/// Equality and hashing use the **identity only**, not the path, so a trace
/// copied to two locations deduplicates to one simulation in the experiment
/// engine.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    path: PathBuf,
    id: TraceId,
    source: String,
}

impl PartialEq for TraceHandle {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for TraceHandle {}

impl std::hash::Hash for TraceHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl TraceHandle {
    /// Opens and validates the trace at `path`: checks the header and
    /// computes the content digest (one streaming pass over the file).
    ///
    /// # Errors
    ///
    /// Returns an I/O error or any header-validation error from
    /// [`TraceReader::open`].
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, TraceError> {
        let path = path.into();
        let reader = TraceReader::open(&path)?;
        let records = reader.records();
        let source = reader.source().to_string();
        let digest = file_digest(&path)?;
        Ok(Self {
            path,
            id: TraceId {
                version: TRACE_VERSION,
                records,
                digest,
            },
            source,
        })
    }

    /// The path the handle was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The content identity used for dedup.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Number of records in the trace.
    pub fn records(&self) -> u64 {
        self.id.records
    }

    /// The source label recorded at capture time.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// A short display label: the file stem plus the digest prefix.
    pub fn label(&self) -> String {
        let stem = self
            .path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".to_string());
        format!("trace:{stem}#{:08x}", self.id.digest as u32)
    }

    /// Opens a streaming replay of this trace.
    ///
    /// # Errors
    ///
    /// Returns an I/O or header-validation error from re-opening the file.
    pub fn replay(&self) -> Result<TraceReplay, TraceError> {
        Ok(TraceReplay {
            reader: TraceReader::open(&self.path)?,
            path: self.path.clone(),
        })
    }
}

/// A deterministic, Rust-version-stable 64-bit FNV-1a hasher — the one
/// content-identity hash of the workspace, shared by the trace digest and
/// the experiment engine's on-disk result cache. (The standard library's
/// default hasher is randomly keyed per process, which would make on-disk
/// identities unstable.)
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    // The integer methods are overridden with explicit little-endian
    // encodings (usize widened to u64): the std defaults feed native-endian,
    // pointer-width-dependent bytes and are documented as unstable across
    // releases, which would break on-disk identities derived through
    // `#[derive(Hash)]`.

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// FNV-1a (64-bit) digest over a file's bytes, streamed in 64 KiB chunks.
///
/// # Errors
///
/// Returns any I/O error from reading the file.
pub fn file_digest(path: &Path) -> Result<u64, TraceError> {
    use std::hash::Hasher as _;
    let mut file = File::open(path)?;
    let mut hash = Fnv1a::new();
    let mut buffer = [0u8; 64 * 1024];
    loop {
        let n = file.read(&mut buffer)?;
        if n == 0 {
            return Ok(hash.finish());
        }
        hash.write(&buffer[..n]);
    }
}

/// A trace-file workload: streams [`MicroOp`]s off disk without
/// materializing the trace, so it plugs into [`wp_cpu`-style]
/// `run(impl IntoIterator<Item = MicroOp>)` consumers exactly like a live
/// generator.
///
/// [`wp_cpu`-style]: crate::TraceGenerator
///
/// # Panics
///
/// Iteration panics if the file is corrupt or truncated mid-record — the
/// header was validated when the [`TraceHandle`] was opened, so a mid-stream
/// decode failure means the file changed underneath the simulation and the
/// run's results would be meaningless.
#[derive(Debug)]
pub struct TraceReplay {
    reader: TraceReader<BufReader<File>>,
    path: PathBuf,
}

impl TraceReplay {
    /// Opens a replay directly from a path (validating the header).
    ///
    /// # Errors
    ///
    /// Returns an I/O or header-validation error.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, TraceError> {
        let path = path.into();
        Ok(Self {
            reader: TraceReader::open(&path)?,
            path,
        })
    }

    /// Total records the trace declares.
    pub fn records(&self) -> u64 {
        self.reader.records()
    }

    /// The source label recorded at capture time.
    pub fn source(&self) -> &str {
        self.reader.source()
    }
}

impl Iterator for TraceReplay {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        self.reader.next().map(|op| {
            op.unwrap_or_else(|e| panic!("trace {} failed mid-replay: {e}", self.path.display()))
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.reader.size_hint()
    }
}

impl ExactSizeIterator for TraceReplay {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Benchmark, TraceConfig, TraceGenerator};
    use std::io::Cursor;

    fn sample_ops() -> Vec<MicroOp> {
        TraceGenerator::generate(TraceConfig::new(Benchmark::Li).with_ops(5_000))
    }

    fn write_binary(ops: &[MicroOp]) -> Vec<u8> {
        let mut writer = TraceWriter::new(Cursor::new(Vec::new()), "test").expect("header");
        for op in ops {
            writer.write_op(op).expect("record");
        }
        writer.finish().expect("finish").into_inner()
    }

    #[test]
    fn binary_round_trip_is_bit_identical() {
        let ops = sample_ops();
        let bytes = write_binary(&ops);
        let reader = TraceReader::new(Cursor::new(bytes)).expect("header");
        assert_eq!(reader.records(), ops.len() as u64);
        assert_eq!(reader.source(), "test");
        let replayed: Vec<_> = reader.collect::<Result<_, _>>().expect("decode");
        assert_eq!(replayed, ops);
    }

    #[test]
    fn binary_format_is_compact() {
        let ops = sample_ops();
        let bytes = write_binary(&ops);
        // A naive fixed-width encoding of MicroOp costs >= 21 bytes/record
        // (tag + pc + one address + deps); delta+varint should beat half of
        // that comfortably on real streams.
        assert!(
            bytes.len() < ops.len() * 10,
            "encoding too large: {} bytes for {} ops",
            bytes.len(),
            ops.len()
        );
    }

    #[test]
    fn text_round_trip_is_bit_identical() {
        let ops = sample_ops();
        let mut writer = TextTraceWriter::new(Vec::new(), "text test").expect("header");
        for op in &ops {
            writer.write_op(op).expect("record");
        }
        let text = writer.finish().expect("finish");
        let reader = TextTraceReader::new(Cursor::new(text)).expect("header");
        let replayed: Vec<_> = reader.collect::<Result<_, _>>().expect("decode");
        assert_eq!(replayed, ops);
    }

    #[test]
    fn text_reader_captures_source_and_skips_comments() {
        let text = "wptrace v1\n# source: hand-written\n\n# a comment\nI 0x400000 0 0\n";
        let mut reader = TextTraceReader::new(Cursor::new(text)).expect("header");
        let op = reader.next().expect("one op").expect("valid");
        assert_eq!(op.kind, OpKind::IntAlu);
        assert_eq!(reader.source(), "hand-written");
        assert!(reader.next().is_none());
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let err = TraceReader::new(Cursor::new(b"NOPE\x01\x00".to_vec())).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic(_)));

        let mut bytes = write_binary(&sample_ops()[..4]);
        bytes[4] = 99; // version field
        let err = TraceReader::new(Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion(99)));

        let err = TextTraceReader::new(Cursor::new("wptrace v9\n")).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion(9)));
    }

    #[test]
    fn truncated_records_are_reported_once() {
        let ops = sample_ops();
        let mut bytes = write_binary(&ops);
        bytes.truncate(bytes.len() / 2);
        let reader = TraceReader::new(Cursor::new(bytes)).expect("header survives");
        let decoded: Vec<_> = reader.collect();
        assert!(decoded.last().expect("some records").is_err());
        assert_eq!(decoded.iter().filter(|r| r.is_err()).count(), 1);
    }

    #[test]
    fn text_writer_rejects_labels_with_control_characters() {
        let err = TextTraceWriter::new(Vec::new(), "demo\nI 0x0 0 0").unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)));
        assert!(TextTraceWriter::new(Vec::new(), "plain label").is_ok());
    }

    #[test]
    fn corrupt_text_lines_are_reported_with_line_numbers() {
        let text = "wptrace v1\nL 0x400000 zzz 0x0 0 0\n";
        let mut reader = TextTraceReader::new(Cursor::new(text)).expect("header");
        let err = reader.next().expect("one result").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(reader.next().is_none());
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for n in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(n)), n);
        }
        for (from, to) in [(0u64, u64::MAX), (u64::MAX, 0), (5, 3), (3, 5)] {
            assert_eq!(apply_delta(from, delta(from, to)), to);
        }
    }

    #[test]
    fn varint_round_trips() {
        for value in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, value).expect("write");
            let decoded = read_varint(&mut Cursor::new(buf)).expect("read");
            assert_eq!(decoded, value);
        }
    }
}
