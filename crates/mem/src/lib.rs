//! Memory-hierarchy substrate for the wpsdm reproduction of
//! *Reducing Set-Associative Cache Energy via Way-Prediction and Selective
//! Direct-Mapping* (Powell et al., MICRO 2001).
//!
//! This crate provides the structures the paper's techniques are built on
//! top of, but which are not themselves the contribution:
//!
//! * [`CacheGeometry`] — size / block / associativity arithmetic, including
//!   the *direct-mapping way* derived from index bits extended with bits
//!   borrowed from the tag (Section 2.1 of the paper).
//! * [`SetAssocCache`] — a set-associative tag store with LRU replacement,
//!   explicit placement control (set-associative position vs. direct-mapped
//!   position) and eviction reporting, as required by selective-DM.
//! * [`MemoryHierarchy`] — the L2 + main-memory latency model of Table 1
//!   (1 M 8-way 12-cycle L2, 80 cycles + 4 cycles per 8 bytes memory).
//! * [`CacheStats`] — hit/miss/eviction accounting shared by all levels.
//!
//! # Example
//!
//! ```
//! use wp_mem::{CacheGeometry, SetAssocCache, AccessKind, Placement};
//!
//! # fn main() -> Result<(), wp_mem::GeometryError> {
//! let geom = CacheGeometry::new(16 * 1024, 32, 4)?;
//! let mut cache = SetAssocCache::new(geom);
//! let addr = 0x1000;
//! assert!(cache.access(addr, AccessKind::Read, Placement::SetAssociative).is_miss());
//! assert!(cache.access(addr, AccessKind::Read, Placement::SetAssociative).is_hit());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod geometry;
mod hierarchy;
pub mod lane;
mod stats;
pub mod swar;

pub use cache::{AccessKind, AccessResult, CacheLine, Placement, SetAssocCache};
pub use geometry::{CacheGeometry, GeometryError};
pub use hierarchy::{HierarchyConfig, HierarchyOutcome, MemoryHierarchy};
pub use lane::{LaneTagStore, MAX_LANES};
pub use stats::CacheStats;

/// A byte address as seen by the processor.
///
/// The simulators in this workspace are trace driven, so addresses are plain
/// 64-bit values; no translation is modelled (the paper's caches are
/// virtually-indexed small L1s and the techniques are insensitive to
/// translation).
pub type Addr = u64;

/// A cache-block-aligned address (the address with the block offset cleared,
/// *not* shifted).
pub type BlockAddr = u64;

/// A way index within a set (`0..associativity`).
pub type WayIndex = usize;
