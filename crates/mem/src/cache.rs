//! A set-associative tag store with LRU replacement and explicit placement
//! control.
//!
//! The cache tracks *which way* every resident block occupies and whether it
//! was placed in its direct-mapping position or in a set-associative
//! (LRU-chosen) position — the distinction selective direct-mapping rests on.

use crate::geometry::CacheGeometry;
use crate::stats::CacheStats;
use crate::{Addr, BlockAddr, WayIndex};

/// Whether an access reads or writes the block.
///
/// Writes never use prediction in the paper (stores check the tag array
/// first and then write only the matching way); the distinction matters for
/// energy accounting and for dirty-bit bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load or an instruction fetch.
    Read,
    /// A store.
    Write,
}

/// Where a newly filled block is placed within its set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Conventional placement: the LRU way of the set is victimised.
    SetAssociative,
    /// Selective-DM placement: the block goes to its direct-mapping way
    /// regardless of recency, evicting whatever lives there.
    DirectMapped,
}

/// A resident cache block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLine {
    /// Block-aligned address of the resident block.
    pub block_addr: BlockAddr,
    /// True if the block has been written since it was filled.
    pub dirty: bool,
    /// True if the block was placed in its direct-mapping way.
    pub direct_mapped: bool,
}

/// A plain bit vector used for the per-way valid/dirty/direct-mapped flags.
///
/// The tag store keeps flags out of the tag array so the hot lookup loop
/// touches only the contiguous `tags` slice plus one flag word per set.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    #[inline]
    fn get(&self, index: usize) -> bool {
        (self.words[index / 64] >> (index % 64)) & 1 != 0
    }

    /// The `len` bits starting at `base`, as the low bits of one word.
    /// `base` is always `set * assoc` with both powers of two, so for
    /// `len <= 64` the range never straddles a word boundary.
    #[inline]
    fn range_mask(&self, base: usize, len: usize) -> u64 {
        debug_assert!(len <= 64 && base % len == 0);
        let word = self.words[base / 64];
        let mask = if len == 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        };
        (word >> (base % 64)) & mask
    }

    #[inline]
    fn set(&mut self, index: usize, value: bool) {
        let word = &mut self.words[index / 64];
        let bit = 1u64 << (index % 64);
        if value {
            *word |= bit;
        } else {
            *word &= !bit;
        }
    }

    fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// What one fused pass over a set observed: the hit way (scan stops there),
/// or — when the tag missed and the whole set was necessarily visited — the
/// LRU victim the set-associative fill would choose (first invalid way,
/// else the first way with the minimum LRU stamp).
struct SetScan {
    hit_way: Option<WayIndex>,
    victim_way: WayIndex,
}

/// The block was written since it was filled. Shared with the lane-strided
/// tag store ([`crate::lane::LaneTagStore`]), which uses the same flag-byte
/// encoding per (block, lane).
pub(crate) const FLAG_DIRTY: u8 = 1;
/// The block sits in its direct-mapping way.
pub(crate) const FLAG_DM: u8 = 2;

/// Result of a cache access or fill.
///
/// The `Default` value (a miss of way 0 with nothing evicted) exists so
/// lane-batched callers can size their per-lane result buffers without an
/// `Option` per slot; every slot is overwritten before it is read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessResult {
    /// True if the block was resident.
    pub hit: bool,
    /// The way that hit, or the way that was (or would be) filled.
    pub way: WayIndex,
    /// True if the block that hit (or was filled) sits in its direct-mapping
    /// way.
    pub in_direct_mapped_way: bool,
    /// The block evicted to make room, if any (only on fills).
    pub evicted: Option<CacheLine>,
}

impl AccessResult {
    /// True if the access hit.
    pub fn is_hit(&self) -> bool {
        self.hit
    }

    /// True if the access missed.
    pub fn is_miss(&self) -> bool {
        !self.hit
    }
}

/// A set-associative cache tag store with LRU replacement.
///
/// The cache stores no data payload — the workspace is a timing and energy
/// simulator, so only residency, way position, and dirtiness matter.
///
/// The tag store is laid out structure-of-arrays: contiguous `tags` and
/// `lru_stamps` slices plus valid/dirty/direct-mapped bitsets, all indexed
/// by `set * associativity + way`, with dirty/direct-mapped sharing one
/// flag byte per block. Block addresses are reconstructed from
/// `(set, tag)` on demand, so the lookup loop touches the minimum of
/// memory, and one fused scan serves the probe, hit, and victim-selection
/// paths (see `docs/PERFORMANCE.md`).
///
/// # Example
///
/// ```
/// use wp_mem::{AccessKind, CacheGeometry, Placement, SetAssocCache};
///
/// # fn main() -> Result<(), wp_mem::GeometryError> {
/// let mut cache = SetAssocCache::new(CacheGeometry::new(16 * 1024, 32, 4)?);
/// let miss = cache.access(0x40, AccessKind::Read, Placement::DirectMapped);
/// assert!(miss.is_miss());
/// let hit = cache.access(0x44, AccessKind::Read, Placement::DirectMapped);
/// assert!(hit.is_hit() && hit.in_direct_mapped_way);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    /// Ways per set, cached out of the geometry for the hot loop.
    assoc: usize,
    /// Tag of the block in `(set, way)`, at index `set * assoc + way`.
    tags: Vec<u64>,
    /// LRU stamp of `(set, way)`; larger is more recently used.
    lru_stamps: Vec<u64>,
    valid: BitSet,
    /// Per-block dirty / direct-mapped flag byte ([`FLAG_DIRTY`] |
    /// [`FLAG_DM`]): the fill path overwrites the whole byte in one store
    /// and the eviction path reads both flags in one load.
    flags: Vec<u8>,
    stats: CacheStats,
    clock: u64,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let blocks = geometry.num_blocks();
        Self {
            geometry,
            assoc: geometry.associativity(),
            tags: vec![0; blocks],
            lru_stamps: vec![0; blocks],
            valid: BitSet::new(blocks),
            flags: vec![0; blocks],
            stats: CacheStats::default(),
            clock: 0,
        }
    }

    /// One fused pass over `set`'s ways: the hot loop walks the contiguous
    /// tag lane with a scalar early-exit compare against the set's
    /// valid-bitset word. At L1 associativities (2–8 ways) the early exit
    /// wins: most probes hit, usually in a hot way, and the branch-free
    /// SWAR mask ([`crate::swar::tag_match_mask`]) that briefly replaced
    /// this loop always pays for the whole lane — the committed bench
    /// measured it at 0.797× the scalar scan, so the SWAR path is retired
    /// to a reference module (its lane-compare idea pays off on the
    /// config axis instead; see `wp-mem`'s `LaneTagStore`). On a miss —
    /// where the whole set was necessarily visited — the scan also reports
    /// the victim a set-associative fill would choose (first invalid way,
    /// else the first way with the minimum LRU stamp), so the fill path
    /// never re-scans the tags.
    #[inline(always)]
    fn scan(&self, base: usize, tag: u64) -> SetScan {
        if self.assoc > 64 {
            return self.scan_wide(base, tag);
        }
        let valid_mask = self.valid.range_mask(base, self.assoc);
        let tags = &self.tags[base..base + self.assoc];
        for (way, &lane) in tags.iter().enumerate() {
            if lane == tag && valid_mask & (1 << way) != 0 {
                return SetScan {
                    hit_way: Some(way),
                    victim_way: 0,
                };
            }
        }
        let full = if self.assoc == 64 {
            u64::MAX
        } else {
            (1u64 << self.assoc) - 1
        };
        let victim_way = if valid_mask != full {
            // First invalid way.
            (!valid_mask).trailing_zeros() as usize
        } else {
            // All valid: first way with the minimum LRU stamp.
            let stamps = &self.lru_stamps[base..base + self.assoc];
            let mut lru_way = 0;
            let mut lru_stamp = stamps[0];
            for (way, &stamp) in stamps.iter().enumerate().skip(1) {
                if stamp < lru_stamp {
                    lru_stamp = stamp;
                    lru_way = way;
                }
            }
            lru_way
        };
        SetScan {
            hit_way: None,
            victim_way,
        }
    }

    /// Bit-at-a-time variant of [`SetAssocCache::scan`] for associativities
    /// beyond one mask word (cold: no realistic configuration needs it).
    #[cold]
    fn scan_wide(&self, base: usize, tag: u64) -> SetScan {
        let mut first_invalid = None;
        let mut lru_way = 0;
        let mut lru_stamp = u64::MAX;
        for way in 0..self.assoc {
            let index = base + way;
            if !self.valid.get(index) {
                if first_invalid.is_none() {
                    first_invalid = Some(way);
                }
                continue;
            }
            if self.tags[index] == tag {
                return SetScan {
                    hit_way: Some(way),
                    victim_way: 0,
                };
            }
            if self.lru_stamps[index] < lru_stamp {
                lru_stamp = self.lru_stamps[index];
                lru_way = way;
            }
        }
        SetScan {
            hit_way: None,
            victim_way: first_invalid.unwrap_or(lru_way),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the accumulated statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Looks up `addr` without modifying replacement state or statistics.
    ///
    /// Returns the way holding the block if it is resident. This models a
    /// pure tag-array probe.
    #[inline]
    pub fn probe(&self, addr: Addr) -> Option<WayIndex> {
        let base = self.geometry.set_index(addr) * self.assoc;
        self.scan(base, self.geometry.tag(addr)).hit_way
    }

    /// Returns the resident line at (`set`, `way`), if any.
    pub fn line(&self, set: usize, way: WayIndex) -> Option<CacheLine> {
        let index = set * self.assoc + way;
        self.valid.get(index).then_some(CacheLine {
            block_addr: self.geometry.block_addr_from_parts(set, self.tags[index]),
            dirty: self.flags[index] & FLAG_DIRTY != 0,
            direct_mapped: self.flags[index] & FLAG_DM != 0,
        })
    }

    /// Performs a full access: looks up `addr`, fills on a miss using the
    /// requested `placement`, updates LRU state and statistics.
    ///
    /// On a miss the returned [`AccessResult::evicted`] carries the victim
    /// block so callers (e.g. the selective-DM victim list) can observe
    /// replacements.
    #[inline(always)]
    pub fn access(&mut self, addr: Addr, kind: AccessKind, placement: Placement) -> AccessResult {
        self.clock += 1;
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let dm_way = self.geometry.direct_mapped_way(addr);
        let base = set * self.assoc;

        let scan = self.scan(base, tag);
        if let Some(way) = scan.hit_way {
            let index = base + way;
            self.lru_stamps[index] = self.clock;
            if kind == AccessKind::Write {
                self.flags[index] |= FLAG_DIRTY;
            }
            self.stats.record_hit(kind);
            return AccessResult {
                hit: true,
                way,
                in_direct_mapped_way: way == dm_way,
                evicted: None,
            };
        }

        self.stats.record_miss(kind);
        let (way, evicted) = self.fill_scanned(set, tag, dm_way, placement, scan.victim_way);
        if kind == AccessKind::Write {
            self.flags[base + way] |= FLAG_DIRTY;
        }
        AccessResult {
            hit: false,
            way,
            in_direct_mapped_way: way == dm_way,
            evicted,
        }
    }

    /// Fills `addr` into the cache (used by callers that separate the miss
    /// lookup from the fill, e.g. when the fill returns from L2 later).
    ///
    /// Returns the way filled and the evicted block, if any. If the block is
    /// already resident the call only refreshes its LRU state.
    #[inline]
    pub fn fill(&mut self, addr: Addr, placement: Placement) -> (WayIndex, Option<CacheLine>) {
        self.clock += 1;
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let dm_way = self.geometry.direct_mapped_way(addr);
        let base = set * self.assoc;
        let scan = self.scan(base, tag);
        if let Some(way) = scan.hit_way {
            self.lru_stamps[base + way] = self.clock;
            return (way, None);
        }
        self.fill_scanned(set, tag, dm_way, placement, scan.victim_way)
    }

    /// Invalidates `addr` if resident, returning the line that was removed.
    pub fn invalidate(&mut self, addr: Addr) -> Option<CacheLine> {
        let set = self.geometry.set_index(addr);
        let base = set * self.assoc;
        let way = self.scan(base, self.geometry.tag(addr)).hit_way?;
        let line = self.line(set, way);
        let index = base + way;
        self.valid.set(index, false);
        self.flags[index] = 0;
        self.tags[index] = 0;
        self.lru_stamps[index] = 0;
        line
    }

    /// Number of valid blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.valid.count_ones()
    }

    /// Fills `(set, tag)` after a miss whose set scan already chose the
    /// set-associative victim (`scanned_victim`); direct-mapped placement
    /// overrides it with the DM way.
    fn fill_scanned(
        &mut self,
        set: usize,
        tag: u64,
        dm_way: WayIndex,
        placement: Placement,
        scanned_victim: WayIndex,
    ) -> (WayIndex, Option<CacheLine>) {
        let victim_way = match placement {
            Placement::DirectMapped => dm_way,
            Placement::SetAssociative => scanned_victim,
        };
        let index = set * self.assoc + victim_way;
        let evicted = self.valid.get(index).then(|| CacheLine {
            block_addr: self.geometry.block_addr_from_parts(set, self.tags[index]),
            dirty: self.flags[index] & FLAG_DIRTY != 0,
            direct_mapped: self.flags[index] & FLAG_DM != 0,
        });
        if evicted.is_some() {
            self.stats.record_eviction();
        }
        self.valid.set(index, true);
        self.flags[index] = if victim_way == dm_way { FLAG_DM } else { 0 };
        self.tags[index] = tag;
        self.lru_stamps[index] = self.clock;
        (victim_way, evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(assoc: usize) -> SetAssocCache {
        // 4 sets of `assoc` 32-byte blocks.
        SetAssocCache::new(CacheGeometry::new(4 * assoc * 32, 32, assoc).expect("valid geometry"))
    }

    /// Addresses that land in set 0 with distinct tags.
    fn set0_addr(cache: &SetAssocCache, i: u64) -> Addr {
        let g = cache.geometry();
        i * (g.num_sets() * g.block_bytes()) as u64
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache(4);
        assert!(c
            .access(0x100, AccessKind::Read, Placement::SetAssociative)
            .is_miss());
        assert!(c
            .access(0x100, AccessKind::Read, Placement::SetAssociative)
            .is_hit());
        assert_eq!(c.stats().reads, 2);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn same_block_different_word_hits() {
        let mut c = small_cache(4);
        c.access(0x100, AccessKind::Read, Placement::SetAssociative);
        assert!(c
            .access(0x11c, AccessKind::Read, Placement::SetAssociative)
            .is_hit());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache(2);
        let a = set0_addr(&c, 0);
        let b = set0_addr(&c, 1);
        let d = set0_addr(&c, 2);
        c.access(a, AccessKind::Read, Placement::SetAssociative);
        c.access(b, AccessKind::Read, Placement::SetAssociative);
        // Touch `a` so `b` is LRU.
        c.access(a, AccessKind::Read, Placement::SetAssociative);
        let res = c.access(d, AccessKind::Read, Placement::SetAssociative);
        assert!(res.is_miss());
        let evicted = res.evicted.expect("a block must be evicted");
        assert_eq!(evicted.block_addr, c.geometry().block_addr(b));
        // `a` must still hit.
        assert!(c
            .access(a, AccessKind::Read, Placement::SetAssociative)
            .is_hit());
    }

    #[test]
    fn direct_mapped_placement_goes_to_dm_way() {
        let mut c = small_cache(4);
        for i in 0..4u64 {
            let addr = set0_addr(&c, i);
            let res = c.access(addr, AccessKind::Read, Placement::DirectMapped);
            assert!(res.is_miss());
            assert_eq!(res.way, c.geometry().direct_mapped_way(addr));
            assert!(res.in_direct_mapped_way);
        }
        // All four live in distinct DM ways of set 0, so all still hit.
        for i in 0..4u64 {
            assert!(c
                .access(set0_addr(&c, i), AccessKind::Read, Placement::DirectMapped)
                .is_hit());
        }
    }

    #[test]
    fn dm_placement_conflicts_when_dm_ways_collide() {
        let mut c = small_cache(4);
        // Addresses 0 and 4 share set 0 *and* DM way 0 (way bits wrap mod 4).
        let a = set0_addr(&c, 0);
        let b = set0_addr(&c, 4);
        assert_eq!(
            c.geometry().direct_mapped_way(a),
            c.geometry().direct_mapped_way(b)
        );
        c.access(a, AccessKind::Read, Placement::DirectMapped);
        let res = c.access(b, AccessKind::Read, Placement::DirectMapped);
        assert!(res.is_miss());
        assert_eq!(
            res.evicted.expect("dm conflict must evict").block_addr,
            c.geometry().block_addr(a)
        );
        // With set-associative placement the two coexist.
        let mut c = small_cache(4);
        c.access(a, AccessKind::Read, Placement::SetAssociative);
        c.access(b, AccessKind::Read, Placement::SetAssociative);
        assert!(c
            .access(a, AccessKind::Read, Placement::SetAssociative)
            .is_hit());
        assert!(c
            .access(b, AccessKind::Read, Placement::SetAssociative)
            .is_hit());
    }

    #[test]
    fn write_marks_dirty_and_eviction_reports_it() {
        let mut c = small_cache(1);
        let a = set0_addr(&c, 0);
        let b = set0_addr(&c, 1);
        c.access(a, AccessKind::Write, Placement::SetAssociative);
        let res = c.access(b, AccessKind::Read, Placement::SetAssociative);
        let evicted = res.evicted.expect("direct-mapped cache must evict");
        assert!(evicted.dirty);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = small_cache(2);
        let a = set0_addr(&c, 0);
        let b = set0_addr(&c, 1);
        let d = set0_addr(&c, 2);
        c.access(a, AccessKind::Read, Placement::SetAssociative);
        c.access(b, AccessKind::Read, Placement::SetAssociative);
        // Probing `a` must not refresh it.
        assert!(c.probe(a).is_some());
        let res = c.access(d, AccessKind::Read, Placement::SetAssociative);
        assert_eq!(
            res.evicted.expect("must evict").block_addr,
            c.geometry().block_addr(a)
        );
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = small_cache(4);
        c.access(0x100, AccessKind::Read, Placement::SetAssociative);
        assert!(c.invalidate(0x100).is_some());
        assert!(c.probe(0x100).is_none());
        assert!(c.invalidate(0x100).is_none());
    }

    #[test]
    fn fill_is_idempotent_for_resident_blocks() {
        let mut c = small_cache(4);
        c.access(0x100, AccessKind::Read, Placement::SetAssociative);
        let before = c.resident_blocks();
        let (_, evicted) = c.fill(0x100, Placement::SetAssociative);
        assert!(evicted.is_none());
        assert_eq!(c.resident_blocks(), before);
    }

    #[test]
    fn resident_blocks_never_exceeds_capacity() {
        let mut c = small_cache(2);
        for i in 0..64u64 {
            c.access(i * 32, AccessKind::Read, Placement::SetAssociative);
        }
        assert!(c.resident_blocks() <= c.geometry().num_blocks());
    }
}
