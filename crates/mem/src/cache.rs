//! A set-associative tag store with LRU replacement and explicit placement
//! control.
//!
//! The cache tracks *which way* every resident block occupies and whether it
//! was placed in its direct-mapping position or in a set-associative
//! (LRU-chosen) position — the distinction selective direct-mapping rests on.

use crate::geometry::CacheGeometry;
use crate::stats::CacheStats;
use crate::{Addr, BlockAddr, WayIndex};

/// Whether an access reads or writes the block.
///
/// Writes never use prediction in the paper (stores check the tag array
/// first and then write only the matching way); the distinction matters for
/// energy accounting and for dirty-bit bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load or an instruction fetch.
    Read,
    /// A store.
    Write,
}

/// Where a newly filled block is placed within its set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Conventional placement: the LRU way of the set is victimised.
    SetAssociative,
    /// Selective-DM placement: the block goes to its direct-mapping way
    /// regardless of recency, evicting whatever lives there.
    DirectMapped,
}

/// A resident cache block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLine {
    /// Block-aligned address of the resident block.
    pub block_addr: BlockAddr,
    /// True if the block has been written since it was filled.
    pub dirty: bool,
    /// True if the block was placed in its direct-mapping way.
    pub direct_mapped: bool,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    valid: bool,
    tag: u64,
    block_addr: BlockAddr,
    dirty: bool,
    direct_mapped: bool,
    /// Larger is more recently used.
    lru_stamp: u64,
}

impl Way {
    fn empty() -> Self {
        Self {
            valid: false,
            tag: 0,
            block_addr: 0,
            dirty: false,
            direct_mapped: false,
            lru_stamp: 0,
        }
    }
}

/// Result of a cache access or fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// True if the block was resident.
    pub hit: bool,
    /// The way that hit, or the way that was (or would be) filled.
    pub way: WayIndex,
    /// True if the block that hit (or was filled) sits in its direct-mapping
    /// way.
    pub in_direct_mapped_way: bool,
    /// The block evicted to make room, if any (only on fills).
    pub evicted: Option<CacheLine>,
}

impl AccessResult {
    /// True if the access hit.
    pub fn is_hit(&self) -> bool {
        self.hit
    }

    /// True if the access missed.
    pub fn is_miss(&self) -> bool {
        !self.hit
    }
}

/// A set-associative cache tag store with LRU replacement.
///
/// The cache stores no data payload — the workspace is a timing and energy
/// simulator, so only residency, way position, and dirtiness matter.
///
/// # Example
///
/// ```
/// use wp_mem::{AccessKind, CacheGeometry, Placement, SetAssocCache};
///
/// # fn main() -> Result<(), wp_mem::GeometryError> {
/// let mut cache = SetAssocCache::new(CacheGeometry::new(16 * 1024, 32, 4)?);
/// let miss = cache.access(0x40, AccessKind::Read, Placement::DirectMapped);
/// assert!(miss.is_miss());
/// let hit = cache.access(0x44, AccessKind::Read, Placement::DirectMapped);
/// assert!(hit.is_hit() && hit.in_direct_mapped_way);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    sets: Vec<Vec<Way>>,
    stats: CacheStats,
    clock: u64,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = vec![vec![Way::empty(); geometry.associativity()]; geometry.num_sets()];
        Self {
            geometry,
            sets,
            stats: CacheStats::default(),
            clock: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the accumulated statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Looks up `addr` without modifying replacement state or statistics.
    ///
    /// Returns the way holding the block if it is resident. This models a
    /// pure tag-array probe.
    pub fn probe(&self, addr: Addr) -> Option<WayIndex> {
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        self.sets[set].iter().position(|w| w.valid && w.tag == tag)
    }

    /// Returns the resident line at (`set`, `way`), if any.
    pub fn line(&self, set: usize, way: WayIndex) -> Option<CacheLine> {
        let w = &self.sets[set][way];
        w.valid.then_some(CacheLine {
            block_addr: w.block_addr,
            dirty: w.dirty,
            direct_mapped: w.direct_mapped,
        })
    }

    /// Performs a full access: looks up `addr`, fills on a miss using the
    /// requested `placement`, updates LRU state and statistics.
    ///
    /// On a miss the returned [`AccessResult::evicted`] carries the victim
    /// block so callers (e.g. the selective-DM victim list) can observe
    /// replacements.
    pub fn access(&mut self, addr: Addr, kind: AccessKind, placement: Placement) -> AccessResult {
        self.clock += 1;
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let dm_way = self.geometry.direct_mapped_way(addr);

        if let Some(way) = self.sets[set].iter().position(|w| w.valid && w.tag == tag) {
            let entry = &mut self.sets[set][way];
            entry.lru_stamp = self.clock;
            if kind == AccessKind::Write {
                entry.dirty = true;
            }
            let in_dm = way == dm_way;
            self.stats.record_hit(kind);
            return AccessResult {
                hit: true,
                way,
                in_direct_mapped_way: in_dm,
                evicted: None,
            };
        }

        self.stats.record_miss(kind);
        let (way, evicted) = self.fill_at(set, tag, addr, dm_way, placement);
        if kind == AccessKind::Write {
            self.sets[set][way].dirty = true;
        }
        AccessResult {
            hit: false,
            way,
            in_direct_mapped_way: way == dm_way,
            evicted,
        }
    }

    /// Fills `addr` into the cache (used by callers that separate the miss
    /// lookup from the fill, e.g. when the fill returns from L2 later).
    ///
    /// Returns the way filled and the evicted block, if any. If the block is
    /// already resident the call only refreshes its LRU state.
    pub fn fill(&mut self, addr: Addr, placement: Placement) -> (WayIndex, Option<CacheLine>) {
        self.clock += 1;
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let dm_way = self.geometry.direct_mapped_way(addr);
        if let Some(way) = self.sets[set].iter().position(|w| w.valid && w.tag == tag) {
            self.sets[set][way].lru_stamp = self.clock;
            return (way, None);
        }
        self.fill_at(set, tag, addr, dm_way, placement)
    }

    /// Invalidates `addr` if resident, returning the line that was removed.
    pub fn invalidate(&mut self, addr: Addr) -> Option<CacheLine> {
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let way = self.sets[set]
            .iter()
            .position(|w| w.valid && w.tag == tag)?;
        let line = self.line(set, way);
        self.sets[set][way] = Way::empty();
        line
    }

    /// Number of valid blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|w| w.valid).count())
            .sum()
    }

    fn fill_at(
        &mut self,
        set: usize,
        tag: u64,
        addr: Addr,
        dm_way: WayIndex,
        placement: Placement,
    ) -> (WayIndex, Option<CacheLine>) {
        let victim_way = match placement {
            Placement::DirectMapped => dm_way,
            Placement::SetAssociative => self.choose_victim(set),
        };
        let victim = &self.sets[set][victim_way];
        let evicted = victim.valid.then_some(CacheLine {
            block_addr: victim.block_addr,
            dirty: victim.dirty,
            direct_mapped: victim.direct_mapped,
        });
        if evicted.is_some() {
            self.stats.record_eviction();
        }
        self.sets[set][victim_way] = Way {
            valid: true,
            tag,
            block_addr: self.geometry.block_addr(addr),
            dirty: false,
            direct_mapped: victim_way == dm_way,
            lru_stamp: self.clock,
        };
        (victim_way, evicted)
    }

    fn choose_victim(&self, set: usize) -> WayIndex {
        // Prefer an invalid way; otherwise evict the least recently used.
        if let Some(way) = self.sets[set].iter().position(|w| !w.valid) {
            return way;
        }
        self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.lru_stamp)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(assoc: usize) -> SetAssocCache {
        // 4 sets of `assoc` 32-byte blocks.
        SetAssocCache::new(CacheGeometry::new(4 * assoc * 32, 32, assoc).expect("valid geometry"))
    }

    /// Addresses that land in set 0 with distinct tags.
    fn set0_addr(cache: &SetAssocCache, i: u64) -> Addr {
        let g = cache.geometry();
        i * (g.num_sets() * g.block_bytes()) as u64
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache(4);
        assert!(c
            .access(0x100, AccessKind::Read, Placement::SetAssociative)
            .is_miss());
        assert!(c
            .access(0x100, AccessKind::Read, Placement::SetAssociative)
            .is_hit());
        assert_eq!(c.stats().reads, 2);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn same_block_different_word_hits() {
        let mut c = small_cache(4);
        c.access(0x100, AccessKind::Read, Placement::SetAssociative);
        assert!(c
            .access(0x11c, AccessKind::Read, Placement::SetAssociative)
            .is_hit());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache(2);
        let a = set0_addr(&c, 0);
        let b = set0_addr(&c, 1);
        let d = set0_addr(&c, 2);
        c.access(a, AccessKind::Read, Placement::SetAssociative);
        c.access(b, AccessKind::Read, Placement::SetAssociative);
        // Touch `a` so `b` is LRU.
        c.access(a, AccessKind::Read, Placement::SetAssociative);
        let res = c.access(d, AccessKind::Read, Placement::SetAssociative);
        assert!(res.is_miss());
        let evicted = res.evicted.expect("a block must be evicted");
        assert_eq!(evicted.block_addr, c.geometry().block_addr(b));
        // `a` must still hit.
        assert!(c
            .access(a, AccessKind::Read, Placement::SetAssociative)
            .is_hit());
    }

    #[test]
    fn direct_mapped_placement_goes_to_dm_way() {
        let mut c = small_cache(4);
        for i in 0..4u64 {
            let addr = set0_addr(&c, i);
            let res = c.access(addr, AccessKind::Read, Placement::DirectMapped);
            assert!(res.is_miss());
            assert_eq!(res.way, c.geometry().direct_mapped_way(addr));
            assert!(res.in_direct_mapped_way);
        }
        // All four live in distinct DM ways of set 0, so all still hit.
        for i in 0..4u64 {
            assert!(c
                .access(set0_addr(&c, i), AccessKind::Read, Placement::DirectMapped)
                .is_hit());
        }
    }

    #[test]
    fn dm_placement_conflicts_when_dm_ways_collide() {
        let mut c = small_cache(4);
        // Addresses 0 and 4 share set 0 *and* DM way 0 (way bits wrap mod 4).
        let a = set0_addr(&c, 0);
        let b = set0_addr(&c, 4);
        assert_eq!(
            c.geometry().direct_mapped_way(a),
            c.geometry().direct_mapped_way(b)
        );
        c.access(a, AccessKind::Read, Placement::DirectMapped);
        let res = c.access(b, AccessKind::Read, Placement::DirectMapped);
        assert!(res.is_miss());
        assert_eq!(
            res.evicted.expect("dm conflict must evict").block_addr,
            c.geometry().block_addr(a)
        );
        // With set-associative placement the two coexist.
        let mut c = small_cache(4);
        c.access(a, AccessKind::Read, Placement::SetAssociative);
        c.access(b, AccessKind::Read, Placement::SetAssociative);
        assert!(c
            .access(a, AccessKind::Read, Placement::SetAssociative)
            .is_hit());
        assert!(c
            .access(b, AccessKind::Read, Placement::SetAssociative)
            .is_hit());
    }

    #[test]
    fn write_marks_dirty_and_eviction_reports_it() {
        let mut c = small_cache(1);
        let a = set0_addr(&c, 0);
        let b = set0_addr(&c, 1);
        c.access(a, AccessKind::Write, Placement::SetAssociative);
        let res = c.access(b, AccessKind::Read, Placement::SetAssociative);
        let evicted = res.evicted.expect("direct-mapped cache must evict");
        assert!(evicted.dirty);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = small_cache(2);
        let a = set0_addr(&c, 0);
        let b = set0_addr(&c, 1);
        let d = set0_addr(&c, 2);
        c.access(a, AccessKind::Read, Placement::SetAssociative);
        c.access(b, AccessKind::Read, Placement::SetAssociative);
        // Probing `a` must not refresh it.
        assert!(c.probe(a).is_some());
        let res = c.access(d, AccessKind::Read, Placement::SetAssociative);
        assert_eq!(
            res.evicted.expect("must evict").block_addr,
            c.geometry().block_addr(a)
        );
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = small_cache(4);
        c.access(0x100, AccessKind::Read, Placement::SetAssociative);
        assert!(c.invalidate(0x100).is_some());
        assert!(c.probe(0x100).is_none());
        assert!(c.invalidate(0x100).is_none());
    }

    #[test]
    fn fill_is_idempotent_for_resident_blocks() {
        let mut c = small_cache(4);
        c.access(0x100, AccessKind::Read, Placement::SetAssociative);
        let before = c.resident_blocks();
        let (_, evicted) = c.fill(0x100, Placement::SetAssociative);
        assert!(evicted.is_none());
        assert_eq!(c.resident_blocks(), before);
    }

    #[test]
    fn resident_blocks_never_exceeds_capacity() {
        let mut c = small_cache(2);
        for i in 0..64u64 {
            c.access(i * 32, AccessKind::Read, Placement::SetAssociative);
        }
        assert!(c.resident_blocks() <= c.geometry().num_blocks());
    }
}
