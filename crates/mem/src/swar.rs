//! SWAR (SIMD-within-a-register) tag matching — reference module.
//!
//! [`tag_match_mask`] reduces each lane's equality against a probe tag to
//! one bit with XOR / negate / shift (no compare-and-branch) and packs the
//! bits into a way mask, walking the lane in u64-wide chunks of four.
//!
//! This module used to sit on the hot path: the fused set scan in
//! [`crate::SetAssocCache`] probed a set's contiguous tag lane through
//! [`first_hit`]. That turned out to be a measured regression — at L1
//! associativities (2–8 ways) the scalar early-exit scan wins because most
//! probes hit early while the branch-free mask always pays for the whole
//! lane (`bench_report` put SWAR at 0.797× scalar), so the per-probe
//! default is scalar again and the *way*-axis SWAR path is retired.
//!
//! The primitives stay, for two reasons. First, as documented reference
//! code: the property tests (`tests/properties.rs` and this module's
//! tests) still demand bit-identical masks from [`tag_match_mask`] and
//! [`tag_match_mask_scalar`] over arbitrary lanes. Second, the underlying
//! idea — compare one splatted value against a contiguous u64 lane without
//! branching — is exactly what pays off when the lane axis is
//! *configurations* instead of ways: `LaneTagStore` lays the same (set,
//! way) slot of N gang-scheduled configs out contiguously and probes all N
//! with one pass, where every lane genuinely needs an answer and no early
//! exit is possible. See `docs/PERFORMANCE.md` ("Config-parallel lanes").

/// One lane's equality as a single bit, branch-free: `x == 0` iff neither
/// `x` nor `-x` has the sign bit set.
#[inline(always)]
fn eq_bit(lane: u64, tag: u64) -> u64 {
    let x = lane ^ tag;
    1 ^ ((x | x.wrapping_neg()) >> 63)
}

/// Compares every lane of `tags` against `tag` and returns a mask with bit
/// `way` set iff `tags[way] == tag`, computed without per-way branching.
///
/// Lanes beyond bit 63 are not representable in the mask; callers pass one
/// set's tag lane (`associativity` lanes), and the cache falls back to a
/// scalar wide scan above 64 ways.
///
/// # Example
///
/// ```
/// use wp_mem::swar::tag_match_mask;
///
/// let lane = [0x7, 0x3, 0x7, 0x9];
/// assert_eq!(tag_match_mask(&lane, 0x7), 0b0101);
/// assert_eq!(tag_match_mask(&lane, 0x1), 0);
/// // Fold a valid mask in and take trailing_zeros for the hit way:
/// let valid = 0b1110u64; // way 0 holds a stale tag
/// assert_eq!((tag_match_mask(&lane, 0x7) & valid).trailing_zeros(), 2);
/// ```
#[inline(always)]
pub fn tag_match_mask(tags: &[u64], tag: u64) -> u64 {
    debug_assert!(tags.len() <= 64);
    let mut mask = 0u64;
    let mut way = 0u32;
    let mut chunks = tags.chunks_exact(4);
    for lanes in &mut chunks {
        let packed = eq_bit(lanes[0], tag)
            | (eq_bit(lanes[1], tag) << 1)
            | (eq_bit(lanes[2], tag) << 2)
            | (eq_bit(lanes[3], tag) << 3);
        mask |= packed << way;
        way += 4;
    }
    for &lane in chunks.remainder() {
        mask |= eq_bit(lane, tag) << way;
        way += 1;
    }
    mask
}

/// The scalar reference implementation of [`tag_match_mask`], retained so
/// the property tests always have a straightforward mask builder to
/// compare against.
#[inline]
pub fn tag_match_mask_scalar(tags: &[u64], tag: u64) -> u64 {
    debug_assert!(tags.len() <= 64);
    let mut mask = 0u64;
    for (way, &lane) in tags.iter().enumerate() {
        if lane == tag {
            mask |= 1 << way;
        }
    }
    mask
}

/// The hit way of one set probe, SWAR path: match the whole lane, fold
/// the valid mask in, take the lowest set bit. This is what the cache's
/// fused scan computed on its hit path while the SWAR experiment was the
/// per-probe default; kept as the benchmark/property-test counterpart of
/// [`first_hit_scalar`].
#[inline(always)]
pub fn first_hit(tags: &[u64], tag: u64, valid_mask: u64) -> Option<usize> {
    let hits = tag_match_mask(tags, tag) & valid_mask;
    if hits != 0 {
        Some(hits.trailing_zeros() as usize)
    } else {
        None
    }
}

/// The scalar hit scan — the shape the cache's fused scan uses as its
/// per-probe default: walk the lane and early-exit at the first valid
/// match, one data-dependent branch per way.
#[inline]
pub fn first_hit_scalar(tags: &[u64], tag: u64, valid_mask: u64) -> Option<usize> {
    debug_assert!(tags.len() <= 64);
    for (way, &lane) in tags.iter().enumerate() {
        if lane == tag && valid_mask & (1 << way) != 0 {
            return Some(way);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_lane_matches_nothing() {
        assert_eq!(tag_match_mask(&[], 0), 0);
        assert_eq!(tag_match_mask_scalar(&[], 0), 0);
    }

    #[test]
    fn chunked_and_remainder_ways_are_positioned_correctly() {
        // 7 lanes: one full chunk of 4 plus a remainder of 3.
        let lane = [9, 1, 9, 2, 9, 3, 9];
        assert_eq!(tag_match_mask(&lane, 9), 0b1010101);
        assert_eq!(tag_match_mask(&lane, 3), 0b0100000);
        assert_eq!(tag_match_mask(&lane, 7), 0);
    }

    #[test]
    fn extreme_tag_values_compare_exactly() {
        for tag in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63] {
            let lane = [tag, !tag, tag.wrapping_add(1), tag];
            assert_eq!(
                tag_match_mask(&lane, tag),
                tag_match_mask_scalar(&lane, tag)
            );
            assert_eq!(tag_match_mask(&lane, tag) & 0b1001, 0b1001);
        }
    }

    #[test]
    fn swar_equals_scalar_over_dense_lanes() {
        // Deterministic pseudo-random lanes of every length 0..=16 with a
        // high duplicate rate, probing both present and absent tags.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in 0..=16usize {
            for _ in 0..64 {
                let lane: Vec<u64> = (0..len).map(|_| next() % 5).collect();
                let tag = next() % 5;
                assert_eq!(
                    tag_match_mask(&lane, tag),
                    tag_match_mask_scalar(&lane, tag),
                    "lane {lane:?} tag {tag}"
                );
            }
        }
    }

    #[test]
    fn full_64_lane_mask_uses_every_bit() {
        let lane = vec![42u64; 64];
        assert_eq!(tag_match_mask(&lane, 42), u64::MAX);
        assert_eq!(tag_match_mask(&lane, 41), 0);
    }

    #[test]
    fn first_hit_agrees_with_the_scalar_scan() {
        let lane = [5u64, 7, 7, 5];
        for valid in 0u64..16 {
            for tag in 0u64..9 {
                assert_eq!(
                    first_hit(&lane, tag, valid),
                    first_hit_scalar(&lane, tag, valid),
                    "lane {lane:?} tag {tag} valid {valid:04b}"
                );
            }
        }
        assert_eq!(first_hit(&lane, 7, 0b1111), Some(1));
        assert_eq!(first_hit(&lane, 7, 0b0100), Some(2));
        assert_eq!(first_hit(&lane, 9, 0b1111), None);
    }
}
