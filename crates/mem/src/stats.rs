//! Hit/miss accounting shared by every cache level.

use crate::cache::AccessKind;

/// Access counters for a single cache.
///
/// All counters are raw event counts; derived ratios are provided as
/// methods so they are always consistent with the counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of read (load / fetch) accesses.
    pub reads: u64,
    /// Number of read accesses that missed.
    pub read_misses: u64,
    /// Number of write (store) accesses.
    pub writes: u64,
    /// Number of write accesses that missed.
    pub write_misses: u64,
    /// Number of blocks evicted to make room for fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Total number of accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total number of misses (read + write).
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Overall miss ratio in `[0, 1]`; zero if there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        ratio(self.misses(), self.accesses())
    }

    /// Read miss ratio in `[0, 1]`; zero if there were no reads.
    pub fn read_miss_ratio(&self) -> f64 {
        ratio(self.read_misses, self.reads)
    }

    /// Overall miss rate expressed as a percentage, as the paper's Table 4
    /// reports it.
    pub fn miss_rate_percent(&self) -> f64 {
        self.miss_ratio() * 100.0
    }

    /// Records a hit of the given kind.
    #[inline]
    pub fn record_hit(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
    }

    /// Records a miss of the given kind.
    #[inline]
    pub fn record_miss(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::Read => {
                self.reads += 1;
                self.read_misses += 1;
            }
            AccessKind::Write => {
                self.writes += 1;
                self.write_misses += 1;
            }
        }
    }

    /// Records an eviction.
    #[inline]
    pub fn record_eviction(&mut self) {
        self.evictions += 1;
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.reads += other.reads;
        self.read_misses += other.read_misses;
        self.writes += other.writes;
        self.write_misses += other.write_misses;
        self.evictions += other.evictions;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_have_zero_ratios() {
        let s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.read_miss_ratio(), 0.0);
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn ratios_follow_counts() {
        let mut s = CacheStats::default();
        for _ in 0..3 {
            s.record_hit(AccessKind::Read);
        }
        s.record_miss(AccessKind::Read);
        s.record_hit(AccessKind::Write);
        s.record_miss(AccessKind::Write);
        assert_eq!(s.accesses(), 6);
        assert_eq!(s.misses(), 2);
        assert!((s.miss_ratio() - 2.0 / 6.0).abs() < 1e-12);
        assert!((s.read_miss_ratio() - 0.25).abs() < 1e-12);
        assert!((s.miss_rate_percent() - 100.0 * 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CacheStats {
            reads: 10,
            read_misses: 2,
            writes: 5,
            write_misses: 1,
            evictions: 3,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.reads, 20);
        assert_eq!(a.misses(), 6);
        assert_eq!(a.evictions, 6);
    }
}
