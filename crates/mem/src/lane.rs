//! A config-parallel tag store: N structurally identical caches probed as
//! SIMD lanes.
//!
//! Gang-scheduled sweeps broadcast one workload stream to many
//! configurations. Configurations that share a *structural shape* (sets,
//! ways, block size) decompose every address identically — same set index,
//! same tag, same direct-mapping way — so the only thing that differs
//! between them is mutable state: which tags are resident where. The
//! [`LaneTagStore`] lays that state out
//! structure-of-arrays *across configs*: the `(set, way)` slot of all N
//! lanes is contiguous (`tags[(set * assoc + way) * lanes + lane]`), so one
//! probe compares the splatted probe tag against N resident tags with a
//! straight-line pass — the SWAR idea from [`crate::swar`], pointed along
//! the config axis, where every lane genuinely needs an answer and no
//! early exit exists to lose to.
//!
//! Per lane, the semantics are *exactly* [`crate::SetAssocCache`]: LRU
//! stamps from a shared clock (each lane performs one access per call, so
//! the shared clock assigns every lane the same stamp sequence a private
//! clock would), first-invalid-else-first-minimum-LRU victim selection,
//! explicit placement control, and per-lane hit/miss/eviction statistics.
//! The gang engine's conformance harness holds the lane path bit-identical
//! to the scalar path.

use crate::cache::{AccessKind, AccessResult, CacheLine, Placement, FLAG_DIRTY, FLAG_DM};
use crate::geometry::CacheGeometry;
use crate::stats::CacheStats;
use crate::{Addr, WayIndex};

/// Maximum number of configurations one lane batch carries. Eight keeps the
/// per-way lane row at one cache line of tags (8 × 8 bytes) and bounds the
/// scheduler state a batch touches per op.
pub const MAX_LANES: usize = 8;

/// `SetAssocCache` × N with the mutable state lane-strided across configs.
///
/// # Example
///
/// ```
/// use wp_mem::lane::LaneTagStore;
/// use wp_mem::{AccessKind, AccessResult, CacheGeometry, Placement};
///
/// # fn main() -> Result<(), wp_mem::GeometryError> {
/// let geometry = CacheGeometry::new(16 * 1024, 32, 4)?;
/// let mut lanes = LaneTagStore::new(geometry, 2);
/// let placements = [Placement::SetAssociative; 2];
/// let mut results = [AccessResult::default(); 2];
/// lanes.access(0x40, AccessKind::Read, &placements, &mut results);
/// assert!(results.iter().all(|r| r.is_miss()));
/// lanes.access(0x44, AccessKind::Read, &placements, &mut results);
/// assert!(results.iter().all(|r| r.is_hit()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LaneTagStore {
    geometry: CacheGeometry,
    /// Ways per set, cached out of the geometry for the hot loop.
    assoc: usize,
    lanes: usize,
    /// Tag of the block in `(set, way)` for each lane, at index
    /// `(set * assoc + way) * lanes + lane` — the lane-strided SoA layout.
    tags: Vec<u64>,
    /// LRU stamp of `(set, way, lane)`; larger is more recently used.
    /// Stamps only ever compare within one lane.
    lru_stamps: Vec<u64>,
    /// 1 if `(set, way, lane)` holds a valid block. A byte per slot keeps
    /// the probe loop's valid test on the same contiguous lane row as the
    /// tags.
    valid: Vec<u8>,
    /// Per-slot dirty / direct-mapped flag byte (same encoding as the
    /// scalar tag store).
    flags: Vec<u8>,
    stats: Vec<CacheStats>,
    /// One clock for all lanes: every lane performs exactly one access per
    /// [`LaneTagStore::access`] call, so each lane sees the same stamp
    /// sequence a per-lane clock would produce.
    clock: u64,
}

impl LaneTagStore {
    /// Creates `lanes` empty caches of the given shared geometry.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or exceeds [`MAX_LANES`], or if the
    /// geometry's associativity does not fit the probe accumulator
    /// (> 255 ways — far beyond any L1 the sweeps explore).
    pub fn new(geometry: CacheGeometry, lanes: usize) -> Self {
        assert!(
            lanes > 0 && lanes <= MAX_LANES,
            "lanes {lanes} out of range"
        );
        assert!(geometry.associativity() < u8::MAX as usize);
        let slots = geometry.num_blocks() * lanes;
        Self {
            geometry,
            assoc: geometry.associativity(),
            lanes,
            tags: vec![0; slots],
            lru_stamps: vec![0; slots],
            valid: vec![0; slots],
            flags: vec![0; slots],
            stats: vec![CacheStats::default(); lanes],
            clock: 0,
        }
    }

    /// The shared geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Number of config lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Accumulated statistics of one lane.
    pub fn stats(&self, lane: usize) -> &CacheStats {
        &self.stats[lane]
    }

    /// Performs one full access *per lane*: look up `addr`, fill misses
    /// using the lane's requested placement, update LRU state and per-lane
    /// statistics. `out[lane]` receives exactly what
    /// [`crate::SetAssocCache::access`] would have returned for that lane's
    /// private cache.
    ///
    /// The probe is the vectorizable part: one pass over `assoc` contiguous
    /// lane rows compares every lane's resident tag against the splatted
    /// probe tag (at most one way per lane can match — tags are unique
    /// within a set). Hit bookkeeping and the minority miss/fill path then
    /// run per lane.
    #[inline]
    pub fn access(
        &mut self,
        addr: Addr,
        kind: AccessKind,
        placements: &[Placement],
        out: &mut [AccessResult],
    ) {
        let lanes = self.lanes;
        debug_assert_eq!(placements.len(), lanes);
        debug_assert_eq!(out.len(), lanes);
        self.clock += 1;
        let set = self.geometry.set_index(addr);
        let tag = self.geometry.tag(addr);
        let dm_way = self.geometry.direct_mapped_way(addr);
        let base = set * self.assoc;

        // Cross-lane probe: for each way, one contiguous lane row of tags
        // and valid bytes against the splatted tag. No early exit — every
        // lane needs an answer — so the loop is branch-free per element
        // and auto-vectorizes.
        const NO_WAY: u8 = u8::MAX;
        let mut hit_way = [NO_WAY; MAX_LANES];
        for way in 0..self.assoc {
            let row = (base + way) * lanes;
            let tag_row = &self.tags[row..row + lanes];
            let valid_row = &self.valid[row..row + lanes];
            for lane in 0..lanes {
                if tag_row[lane] == tag && valid_row[lane] != 0 {
                    hit_way[lane] = way as u8;
                }
            }
        }

        for lane in 0..lanes {
            out[lane] = if hit_way[lane] != NO_WAY {
                let way = hit_way[lane] as WayIndex;
                let index = (base + way) * lanes + lane;
                self.lru_stamps[index] = self.clock;
                if kind == AccessKind::Write {
                    self.flags[index] |= FLAG_DIRTY;
                }
                self.stats[lane].record_hit(kind);
                AccessResult {
                    hit: true,
                    way,
                    in_direct_mapped_way: way == dm_way,
                    evicted: None,
                }
            } else {
                self.stats[lane].record_miss(kind);
                let victim = self.scan_victim(base, lane);
                let (way, evicted) = self.fill(set, lane, tag, dm_way, placements[lane], victim);
                if kind == AccessKind::Write {
                    self.flags[(base + way) * lanes + lane] |= FLAG_DIRTY;
                }
                AccessResult {
                    hit: false,
                    way,
                    in_direct_mapped_way: way == dm_way,
                    evicted,
                }
            };
        }
    }

    /// The set-associative victim of one lane's set: first invalid way,
    /// else the first way with the minimum LRU stamp — the same choice the
    /// scalar scan reports on a miss.
    fn scan_victim(&self, base: usize, lane: usize) -> WayIndex {
        let lanes = self.lanes;
        for way in 0..self.assoc {
            if self.valid[(base + way) * lanes + lane] == 0 {
                return way;
            }
        }
        let mut lru_way = 0;
        let mut lru_stamp = self.lru_stamps[base * lanes + lane];
        for way in 1..self.assoc {
            let stamp = self.lru_stamps[(base + way) * lanes + lane];
            if stamp < lru_stamp {
                lru_stamp = stamp;
                lru_way = way;
            }
        }
        lru_way
    }

    /// Fills `(set, tag)` in one lane after a miss whose victim scan
    /// already ran; direct-mapped placement overrides the scanned victim
    /// with the DM way.
    fn fill(
        &mut self,
        set: usize,
        lane: usize,
        tag: u64,
        dm_way: WayIndex,
        placement: Placement,
        scanned_victim: WayIndex,
    ) -> (WayIndex, Option<CacheLine>) {
        let victim_way = match placement {
            Placement::DirectMapped => dm_way,
            Placement::SetAssociative => scanned_victim,
        };
        let index = (set * self.assoc + victim_way) * self.lanes + lane;
        let evicted = (self.valid[index] != 0).then(|| CacheLine {
            block_addr: self.geometry.block_addr_from_parts(set, self.tags[index]),
            dirty: self.flags[index] & FLAG_DIRTY != 0,
            direct_mapped: self.flags[index] & FLAG_DM != 0,
        });
        if evicted.is_some() {
            self.stats[lane].record_eviction();
        }
        self.valid[index] = 1;
        self.flags[index] = if victim_way == dm_way { FLAG_DM } else { 0 };
        self.tags[index] = tag;
        self.lru_stamps[index] = self.clock;
        (victim_way, evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;

    fn geometry() -> CacheGeometry {
        CacheGeometry::new(4 * 4 * 32, 32, 4).expect("valid geometry")
    }

    /// Addresses that land in set 0 with distinct tags (and cycling DM
    /// ways).
    fn set0_addr(i: u64) -> Addr {
        i * (4 * 32)
    }

    /// A deterministic little address/kind/placement script.
    fn script(len: usize, salt: u64) -> Vec<(Addr, AccessKind, Placement)> {
        let mut state = 0x2545_f491_4f6c_dd1d ^ salt;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..len)
            .map(|_| {
                let addr = set0_addr(next() % 9) + (next() % 4) * 8;
                let kind = if next() % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let placement = if next() % 2 == 0 {
                    Placement::DirectMapped
                } else {
                    Placement::SetAssociative
                };
                (addr, kind, placement)
            })
            .collect()
    }

    #[test]
    fn every_lane_matches_a_private_scalar_cache() {
        // Each lane runs a *different* placement stream; its results and
        // final statistics must match a private SetAssocCache fed the same
        // stream.
        let lanes = 3;
        let mut store = LaneTagStore::new(geometry(), lanes);
        let mut scalars: Vec<_> = (0..lanes).map(|_| SetAssocCache::new(geometry())).collect();
        let mut results = vec![AccessResult::default(); lanes];
        for (i, (addr, kind, placement)) in script(500, 7).into_iter().enumerate() {
            // Lane `l` flips the scripted placement when `(i + l)` is odd,
            // so lanes genuinely diverge.
            let placements: Vec<Placement> = (0..lanes)
                .map(|l| {
                    if (i + l) % 2 == 0 {
                        placement
                    } else {
                        Placement::SetAssociative
                    }
                })
                .collect();
            store.access(addr, kind, &placements, &mut results);
            for (l, scalar) in scalars.iter_mut().enumerate() {
                let expect = scalar.access(addr, kind, placements[l]);
                assert_eq!(results[l], expect, "lane {l} diverged at access {i}");
            }
        }
        for (l, scalar) in scalars.iter().enumerate() {
            assert_eq!(store.stats(l), scalar.stats(), "lane {l} stats diverged");
        }
    }

    #[test]
    fn lanes_are_isolated() {
        // A block filled in lane 0 only must not hit in lane 1.
        let mut store = LaneTagStore::new(geometry(), 2);
        let mut results = [AccessResult::default(); 2];
        let probe = set0_addr(0);
        store.access(
            probe,
            AccessKind::Read,
            &[Placement::SetAssociative, Placement::SetAssociative],
            &mut results,
        );
        assert!(results[0].is_miss() && results[1].is_miss());
        // Both lanes now hold it; evict it from lane 1 only by filling
        // conflicting set-0 tags through DM placement into the same way.
        // Three fills keep lane 0 within its three free ways, so only the
        // DM lane ever evicts.
        let dm = results[1].way;
        for i in 1..4 {
            let addr = set0_addr(4 * i + dm as u64);
            store.access(
                addr,
                AccessKind::Read,
                &[Placement::SetAssociative, Placement::DirectMapped],
                &mut results,
            );
        }
        store.access(
            probe,
            AccessKind::Read,
            &[Placement::SetAssociative, Placement::SetAssociative],
            &mut results,
        );
        assert!(results[0].is_hit(), "lane 0 should have kept the block");
        assert!(results[1].is_miss(), "lane 1 should have evicted it");
    }

    #[test]
    fn width_one_is_legal() {
        let mut store = LaneTagStore::new(geometry(), 1);
        let mut result = [AccessResult::default()];
        store.access(
            0x80,
            AccessKind::Write,
            &[Placement::DirectMapped],
            &mut result,
        );
        assert!(result[0].is_miss());
        assert_eq!(store.stats(0).write_misses, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_lanes_panics() {
        LaneTagStore::new(geometry(), MAX_LANES + 1);
    }
}
