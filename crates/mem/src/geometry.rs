//! Cache geometry arithmetic: sets, tags, indices, and the direct-mapping way.

use core::fmt;

use crate::{Addr, BlockAddr, WayIndex};

/// Error returned when a [`CacheGeometry`] is constructed from inconsistent
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// The total size is zero or not a multiple of `block_bytes * associativity`.
    SizeNotDivisible {
        /// Requested total capacity in bytes.
        size_bytes: usize,
        /// Requested block size in bytes.
        block_bytes: usize,
        /// Requested associativity.
        associativity: usize,
    },
    /// A parameter that must be a power of two is not.
    NotPowerOfTwo {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// The offending value.
        value: usize,
    },
    /// A parameter is zero.
    Zero {
        /// Name of the offending parameter.
        parameter: &'static str,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::SizeNotDivisible {
                size_bytes,
                block_bytes,
                associativity,
            } => write!(
                f,
                "cache size {size_bytes} is not divisible into sets of \
                 {associativity} ways of {block_bytes}-byte blocks"
            ),
            GeometryError::NotPowerOfTwo { parameter, value } => {
                write!(f, "{parameter} must be a power of two, got {value}")
            }
            GeometryError::Zero { parameter } => write!(f, "{parameter} must be non-zero"),
        }
    }
}

impl std::error::Error for GeometryError {}

/// Size, block size, and associativity of a cache, plus the derived address
/// arithmetic.
///
/// The geometry also defines the *direct-mapping way* of an address
/// (Section 2.1 of the paper): the way an address would occupy if the cache
/// were treated as direct-mapped, identified by the index bits extended with
/// `log2(associativity)` bits borrowed from the tag.
///
/// # Example
///
/// ```
/// use wp_mem::CacheGeometry;
///
/// # fn main() -> Result<(), wp_mem::GeometryError> {
/// let geom = CacheGeometry::new(16 * 1024, 32, 4)?;
/// assert_eq!(geom.num_sets(), 128);
/// assert_eq!(geom.index_bits(), 7);
/// // Two addresses one "cache-worth/assoc" apart map to the same set but
/// // different direct-mapping ways.
/// let a = 0x0000;
/// let b = a + (geom.num_sets() * geom.block_bytes()) as u64;
/// assert_eq!(geom.set_index(a), geom.set_index(b));
/// assert_ne!(geom.direct_mapped_way(a), geom.direct_mapped_way(b));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: usize,
    block_bytes: usize,
    associativity: usize,
    num_sets: usize,
    block_offset_bits: u32,
    index_bits: u32,
    // Precomputed shift/mask values so no per-access address decomposition
    // re-derives them (all parameters are enforced powers of two at
    // construction, so every operation below is a shift or a mask).
    /// `!(block_bytes - 1)`: clears the offset bits.
    block_mask: u64,
    /// `num_sets - 1`: selects the index bits after the offset shift.
    set_mask: u64,
    /// `associativity - 1`: selects the DM-way bits after the tag shift.
    way_mask: u64,
    /// `block_offset_bits + index_bits`: the tag shift.
    tag_shift: u32,
}

impl CacheGeometry {
    /// Creates a geometry for a cache of `size_bytes` capacity, `block_bytes`
    /// blocks, and `associativity` ways per set.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if any parameter is zero, if block size or
    /// the derived number of sets is not a power of two, or if the size is
    /// not divisible into whole sets.
    pub fn new(
        size_bytes: usize,
        block_bytes: usize,
        associativity: usize,
    ) -> Result<Self, GeometryError> {
        for (parameter, value) in [
            ("size_bytes", size_bytes),
            ("block_bytes", block_bytes),
            ("associativity", associativity),
        ] {
            if value == 0 {
                return Err(GeometryError::Zero { parameter });
            }
        }
        if !block_bytes.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo {
                parameter: "block_bytes",
                value: block_bytes,
            });
        }
        if !associativity.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo {
                parameter: "associativity",
                value: associativity,
            });
        }
        let set_bytes = block_bytes * associativity;
        if size_bytes % set_bytes != 0 {
            return Err(GeometryError::SizeNotDivisible {
                size_bytes,
                block_bytes,
                associativity,
            });
        }
        let num_sets = size_bytes / set_bytes;
        if !num_sets.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo {
                parameter: "num_sets",
                value: num_sets,
            });
        }
        let block_offset_bits = block_bytes.trailing_zeros();
        let index_bits = num_sets.trailing_zeros();
        Ok(Self {
            size_bytes,
            block_bytes,
            associativity,
            num_sets,
            block_offset_bits,
            index_bits,
            block_mask: !((block_bytes as u64) - 1),
            set_mask: (num_sets as u64) - 1,
            way_mask: (associativity as u64) - 1,
            tag_shift: block_offset_bits + index_bits,
        })
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Block (line) size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Number of ways per set.
    pub fn associativity(&self) -> usize {
        self.associativity
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Number of bits used for the block offset.
    pub fn block_offset_bits(&self) -> u32 {
        self.block_offset_bits
    }

    /// Number of bits used for the set index.
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// Number of bits borrowed from the tag to identify the direct-mapping
    /// way (`log2(associativity)`).
    pub fn way_bits(&self) -> u32 {
        self.associativity.trailing_zeros()
    }

    /// Number of tag bits assuming 48-bit physical addresses.
    pub fn tag_bits(&self) -> u32 {
        48u32.saturating_sub(self.block_offset_bits + self.index_bits)
    }

    /// The block-aligned address of `addr` (offset bits cleared).
    #[inline]
    pub fn block_addr(&self, addr: Addr) -> BlockAddr {
        addr & self.block_mask
    }

    /// The set index of `addr`.
    #[inline]
    pub fn set_index(&self, addr: Addr) -> usize {
        ((addr >> self.block_offset_bits) & self.set_mask) as usize
    }

    /// The tag of `addr` (everything above the index bits).
    #[inline]
    pub fn tag(&self, addr: Addr) -> u64 {
        addr >> self.tag_shift
    }

    /// The direct-mapping way of `addr`: the way the address would occupy in
    /// an equal-capacity direct-mapped cache, identified by the
    /// `log2(associativity)` address bits just above the set index
    /// (Section 2.1: "the address's index bits extended with log2 N bits
    /// borrowed from the tag").
    #[inline]
    pub fn direct_mapped_way(&self, addr: Addr) -> WayIndex {
        ((addr >> self.tag_shift) & self.way_mask) as WayIndex
    }

    /// Reconstructs the block-aligned address of the block with `tag`
    /// resident in `set` — the inverse of [`CacheGeometry::tag`] /
    /// [`CacheGeometry::set_index`], used by the tag store so it never has
    /// to keep full block addresses alongside the tags.
    #[inline]
    pub fn block_addr_from_parts(&self, set: usize, tag: u64) -> BlockAddr {
        (tag << self.tag_shift) | ((set as u64) << self.block_offset_bits)
    }

    /// Number of blocks the cache can hold in total.
    pub fn num_blocks(&self) -> usize {
        self.num_sets * self.associativity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_l1_geometry() {
        let geom = CacheGeometry::new(16 * 1024, 32, 4).expect("valid geometry");
        assert_eq!(geom.num_sets(), 128);
        assert_eq!(geom.index_bits(), 7);
        assert_eq!(geom.block_offset_bits(), 5);
        assert_eq!(geom.way_bits(), 2);
        assert_eq!(geom.num_blocks(), 512);
    }

    #[test]
    fn table1_l2_geometry() {
        let geom = CacheGeometry::new(1024 * 1024, 64, 8).expect("valid geometry");
        assert_eq!(geom.num_sets(), 2048);
        assert_eq!(geom.associativity(), 8);
    }

    #[test]
    fn direct_mapped_degenerate() {
        let geom = CacheGeometry::new(16 * 1024, 32, 1).expect("valid geometry");
        assert_eq!(geom.way_bits(), 0);
        assert_eq!(geom.direct_mapped_way(0xdead_beef), 0);
        assert_eq!(geom.num_sets(), 512);
    }

    #[test]
    fn rejects_zero_parameters() {
        assert!(matches!(
            CacheGeometry::new(0, 32, 4),
            Err(GeometryError::Zero {
                parameter: "size_bytes"
            })
        ));
        assert!(matches!(
            CacheGeometry::new(16384, 0, 4),
            Err(GeometryError::Zero {
                parameter: "block_bytes"
            })
        ));
        assert!(matches!(
            CacheGeometry::new(16384, 32, 0),
            Err(GeometryError::Zero {
                parameter: "associativity"
            })
        ));
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            CacheGeometry::new(16384, 48, 4),
            Err(GeometryError::NotPowerOfTwo {
                parameter: "block_bytes",
                ..
            })
        ));
        assert!(matches!(
            CacheGeometry::new(16384, 32, 3),
            Err(GeometryError::NotPowerOfTwo {
                parameter: "associativity",
                ..
            })
        ));
        assert!(matches!(
            CacheGeometry::new(3 * 16384, 32, 4),
            Err(GeometryError::NotPowerOfTwo {
                parameter: "num_sets",
                ..
            })
        ));
    }

    #[test]
    fn rejects_indivisible_size() {
        assert!(matches!(
            CacheGeometry::new(100, 32, 4),
            Err(GeometryError::SizeNotDivisible { .. })
        ));
    }

    #[test]
    fn block_addr_round_trips_through_parts() {
        let geom = CacheGeometry::new(16 * 1024, 32, 4).expect("valid geometry");
        for addr in [0u64, 0x1234_5678, 0xdead_beef, 0xffff_ffff_ffc0] {
            let set = geom.set_index(addr);
            let tag = geom.tag(addr);
            assert_eq!(geom.block_addr_from_parts(set, tag), geom.block_addr(addr));
        }
    }

    #[test]
    fn block_addr_clears_offset_only() {
        let geom = CacheGeometry::new(16 * 1024, 32, 4).expect("valid geometry");
        assert_eq!(geom.block_addr(0x1234_5678), 0x1234_5660);
        assert_eq!(geom.block_addr(0x1234_5660), 0x1234_5660);
    }

    #[test]
    fn same_set_different_dm_way() {
        let geom = CacheGeometry::new(16 * 1024, 32, 4).expect("valid geometry");
        let stride = (geom.num_sets() * geom.block_bytes()) as u64;
        let base = 0x4_0000;
        let ways: Vec<_> = (0..4)
            .map(|i| {
                let a = base + i * stride;
                assert_eq!(geom.set_index(a), geom.set_index(base));
                geom.direct_mapped_way(a)
            })
            .collect();
        assert_eq!(ways, vec![0, 1, 2, 3]);
    }

    #[test]
    fn tag_ignores_index_and_offset() {
        let geom = CacheGeometry::new(16 * 1024, 32, 4).expect("valid geometry");
        let a = 0xABCD_0000u64;
        for off in 0..(geom.num_sets() * geom.block_bytes()) as u64 {
            assert_eq!(geom.tag(a), geom.tag(a + off));
        }
    }
}
