//! The L2 + main-memory latency model of Table 1.
//!
//! The paper's system configuration (Table 1) places a 1 MB, 8-way, 12-cycle
//! L2 behind the L1s, and main memory at 80 cycles plus 4 cycles per 8 bytes
//! transferred. [`MemoryHierarchy`] models exactly that: it answers "how many
//! cycles does an L1 miss take to fill, and which lower-level events did it
//! cause".

use crate::cache::{AccessKind, Placement, SetAssocCache};
use crate::geometry::{CacheGeometry, GeometryError};
use crate::stats::CacheStats;
use crate::Addr;

/// Configuration of the levels behind L1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyConfig {
    /// L2 capacity in bytes (Table 1: 1 MB).
    pub l2_size_bytes: usize,
    /// L2 block size in bytes.
    pub l2_block_bytes: usize,
    /// L2 associativity (Table 1: 8).
    pub l2_associativity: usize,
    /// L2 hit latency in cycles (Table 1: 12).
    pub l2_latency: u64,
    /// Fixed main-memory latency in cycles (Table 1: 80).
    pub memory_latency: u64,
    /// Additional cycles per 8 bytes transferred from memory (Table 1: 4).
    pub memory_cycles_per_8_bytes: u64,
    /// Size of the block transferred from memory on an L2 miss, in bytes
    /// (the L1 block size; Table 1's L1s use 32-byte blocks).
    pub transfer_block_bytes: usize,
}

impl Default for HierarchyConfig {
    /// The paper's Table 1 configuration.
    fn default() -> Self {
        Self {
            l2_size_bytes: 1024 * 1024,
            l2_block_bytes: 64,
            l2_associativity: 8,
            l2_latency: 12,
            memory_latency: 80,
            memory_cycles_per_8_bytes: 4,
            transfer_block_bytes: 32,
        }
    }
}

/// Which level ultimately supplied the data for an L1 miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HierarchyOutcome {
    /// The L2 held the block.
    L2Hit,
    /// The access went to main memory.
    MemoryAccess,
}

/// The levels of the memory system behind the L1 caches.
///
/// # Example
///
/// ```
/// use wp_mem::{AccessKind, HierarchyConfig, MemoryHierarchy};
///
/// # fn main() -> Result<(), wp_mem::GeometryError> {
/// let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::default())?;
/// // A cold access goes to memory: 12 (L2) + 80 + 4 * 32/8 cycles.
/// let (latency, _) = hierarchy.access(0x8000, AccessKind::Read);
/// assert_eq!(latency, 12 + 80 + 16);
/// // The refill leaves the block in L2, so the next miss to it is an L2 hit.
/// let (latency, _) = hierarchy.access(0x8000, AccessKind::Read);
/// assert_eq!(latency, 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l2: SetAssocCache,
    memory_accesses: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if the L2 parameters do not describe a
    /// valid cache geometry.
    pub fn new(config: HierarchyConfig) -> Result<Self, GeometryError> {
        let geometry = CacheGeometry::new(
            config.l2_size_bytes,
            config.l2_block_bytes,
            config.l2_associativity,
        )?;
        Ok(Self {
            config,
            l2: SetAssocCache::new(geometry),
            memory_accesses: 0,
        })
    }

    /// The configuration the hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Number of accesses that reached main memory.
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }

    /// Latency of transferring one L1 block from main memory.
    pub fn memory_transfer_latency(&self) -> u64 {
        self.config.memory_latency
            + self.config.memory_cycles_per_8_bytes
                * (self.config.transfer_block_bytes as u64).div_ceil(8)
    }

    /// Services an L1 miss for `addr`.
    ///
    /// Returns the number of cycles beyond the L1 access itself, and which
    /// level supplied the data. The L2 is updated (fills on miss) so locality
    /// across L1 misses is captured.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> (u64, HierarchyOutcome) {
        let result = self.l2.access(addr, kind, Placement::SetAssociative);
        if result.is_hit() {
            (self.config.l2_latency, HierarchyOutcome::L2Hit)
        } else {
            self.memory_accesses += 1;
            (
                self.config.l2_latency + self.memory_transfer_latency(),
                HierarchyOutcome::MemoryAccess,
            )
        }
    }

    /// Resets L2 statistics and the memory access counter (contents are
    /// preserved, mirroring a warm-up / measurement split).
    pub fn reset_stats(&mut self) {
        self.l2.reset_stats();
        self.memory_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = HierarchyConfig::default();
        assert_eq!(c.l2_size_bytes, 1024 * 1024);
        assert_eq!(c.l2_associativity, 8);
        assert_eq!(c.l2_latency, 12);
        assert_eq!(c.memory_latency, 80);
        assert_eq!(c.memory_cycles_per_8_bytes, 4);
    }

    #[test]
    fn memory_latency_includes_transfer() {
        let h = MemoryHierarchy::new(HierarchyConfig::default()).expect("valid config");
        // 32-byte L1 block: 80 + 4 * 4 = 96 cycles.
        assert_eq!(h.memory_transfer_latency(), 96);
    }

    #[test]
    fn l2_captures_reuse() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default()).expect("valid config");
        let (first, outcome) = h.access(0x1_0000, AccessKind::Read);
        assert_eq!(outcome, HierarchyOutcome::MemoryAccess);
        let (second, outcome) = h.access(0x1_0000, AccessKind::Read);
        assert_eq!(outcome, HierarchyOutcome::L2Hit);
        assert!(second < first);
        assert_eq!(h.memory_accesses(), 1);
    }

    #[test]
    fn distinct_l2_blocks_each_go_to_memory_once() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default()).expect("valid config");
        for i in 0..10u64 {
            h.access(i * 64, AccessKind::Read);
        }
        assert_eq!(h.memory_accesses(), 10);
        for i in 0..10u64 {
            let (_, outcome) = h.access(i * 64, AccessKind::Read);
            assert_eq!(outcome, HierarchyOutcome::L2Hit);
        }
        assert_eq!(h.memory_accesses(), 10);
    }

    #[test]
    fn invalid_l2_geometry_is_rejected() {
        let config = HierarchyConfig {
            l2_associativity: 3,
            ..HierarchyConfig::default()
        };
        assert!(MemoryHierarchy::new(config).is_err());
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::default()).expect("valid config");
        h.access(0x2_0000, AccessKind::Read);
        h.reset_stats();
        assert_eq!(h.memory_accesses(), 0);
        let (_, outcome) = h.access(0x2_0000, AccessKind::Read);
        assert_eq!(outcome, HierarchyOutcome::L2Hit);
    }
}
