//! Protocol v2 sweep streaming against an in-process daemon: the full
//! `run_all` plan streams one frame per point, byte-identical to the batch
//! renderer, executes through one gang-scheduled engine pass when cold,
//! replays warm from the cache without re-executing, and coexists with
//! interactive v1 point requests on other connections (fairness lanes plus
//! the sweep worker reservation).

use std::time::{Duration, Instant};

use serde::Value;
use wp_experiments::{
    simulate_workload, MachineConfig, MatrixCache, PointService, RunOptions, SimPoint,
};
use wp_serve::protocol::{self, SweepPlanSpec};
use wp_serve::server::{self, Listen, RunningServer, ServerConfig};
use wp_serve::Client;
use wp_workloads::Benchmark;

/// Sweep-level ops: small enough that the full 253-point plan simulates in
/// seconds, large enough to exercise the real engine.
const SWEEP_OPS: u64 = 2_000;

fn start(configure: impl FnOnce(&mut ServerConfig)) -> RunningServer {
    let mut config = ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), PointService::new());
    config.workers = 2;
    configure(&mut config);
    server::start(config).expect("daemon starts on an ephemeral port")
}

fn client(server: &RunningServer) -> Client {
    let client = Client::connect(server.addr()).expect("client connects");
    client
        .set_timeout(Duration::from_secs(300))
        .expect("timeout set");
    client
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wpsdm-sweep-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stop(server: RunningServer) {
    server.shutdown();
    server.join();
}

/// The plan the daemon expands for `{"plan":"run_all"}` at these ops: the
/// deduplicated points in first-seen order, plus the duplicate-inclusive
/// request count.
fn run_all_points(ops: u64) -> (usize, Vec<SimPoint>) {
    let options = RunOptions::default().with_ops(ops as usize).with_seed(42);
    let plan = wp_experiments::run_all_plan(&options);
    (plan.len(), plan.unique_points())
}

/// Streams one sweep, returning `(frames sorted by plan index, terminal)`.
fn run_sweep(client: &mut Client, request: &str) -> (Vec<String>, String) {
    let mut frames: Vec<(u64, String)> = Vec::new();
    let terminal = client
        .sweep(request, |frame| {
            let index = serde_json::from_str(frame)
                .ok()
                .and_then(|v| v.get("index").and_then(Value::as_u64))
                .expect("stream frames carry an index");
            frames.push((index, frame.to_string()));
        })
        .expect("sweep streams to completion");
    frames.sort_by_key(|(index, _)| *index);
    (
        frames.into_iter().map(|(_, frame)| frame).collect(),
        terminal,
    )
}

fn metric(metrics: &Value, path: &[&str]) -> u64 {
    let mut value = metrics;
    for key in path {
        value = value
            .get(key)
            .unwrap_or_else(|| panic!("metrics field {path:?}"));
    }
    value
        .as_u64()
        .unwrap_or_else(|| panic!("metrics field {path:?} is numeric"))
}

#[test]
fn a_cold_run_all_sweep_streams_byte_identical_frames_in_one_engine_pass() {
    let dir = temp_dir("cold");
    let server = start(|config| {
        config.service = PointService::with_cache(MatrixCache::new(&dir));
    });
    let (requested, points) = run_all_points(SWEEP_OPS);
    assert_eq!(points.len(), 253, "the full plan is the acceptance bar");

    // The reference bytes: every point simulated by the batch path and
    // rendered by the same stream renderer.
    let expected: Vec<String> = points
        .iter()
        .enumerate()
        .map(|(index, point)| {
            let result = simulate_workload(&point.workload, &point.machine, &point.options);
            protocol::stream_point_response(9, index, &result)
        })
        .collect();

    let request = protocol::sweep_request(9, &SweepPlanSpec::RunAll, SWEEP_OPS, 42, None, None);
    let mut client = client(&server);
    let (frames, terminal) = run_sweep(&mut client, &request);
    assert_eq!(
        terminal,
        protocol::sweep_summary_response(9, requested, points.len(), points.len()),
        "a completed sweep ends with the exact summary frame"
    );
    assert_eq!(frames.len(), points.len(), "one frame per unique point");
    for (index, (frame, expected)) in frames.iter().zip(&expected).enumerate() {
        assert_eq!(
            frame, expected,
            "streamed point {index} diverges from batch"
        );
    }
    assert_eq!(
        server.service().executed(),
        points.len() as u64,
        "a cold sweep executes every point exactly once"
    );

    let metrics = client
        .request(&protocol::metrics_request(10))
        .expect("metrics responds");
    let metrics = serde_json::from_str(&metrics).expect("metrics is JSON");
    let metrics = metrics.get("metrics").expect("metrics envelope");
    assert_eq!(
        metric(metrics, &["sweeps", "engine_passes"]),
        1,
        "a cold, uncontended sweep gang-schedules exactly once"
    );
    assert_eq!(metric(metrics, &["sweeps", "completed"]), 1);
    assert_eq!(
        metric(metrics, &["sweeps", "points_streamed"]),
        points.len() as u64
    );

    // Warm replay: the same sweep again must stream the same bytes from
    // the cache without executing or gang-scheduling anything new.
    let (warm_frames, warm_terminal) = run_sweep(&mut client, &request);
    assert_eq!(warm_frames, frames, "warm frames are byte-identical");
    assert_eq!(warm_terminal, terminal);
    assert_eq!(
        server.service().executed(),
        points.len() as u64,
        "the warm replay executes nothing"
    );
    let metrics = client
        .request(&protocol::metrics_request(11))
        .expect("metrics responds");
    let metrics = serde_json::from_str(&metrics).expect("metrics is JSON");
    let metrics = metrics.get("metrics").expect("metrics envelope");
    assert_eq!(
        metric(metrics, &["sweeps", "engine_passes"]),
        1,
        "a fully warm sweep never touches the engine"
    );
    assert_eq!(metric(metrics, &["sweeps", "completed"]), 2);

    stop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_v1_point_request_completes_while_a_sweep_streams() {
    let dir = temp_dir("fairness");
    let server = start(|config| {
        config.service = PointService::with_cache(MatrixCache::new(&dir));
    });
    // Enough work per point that the sweep is still streaming when the
    // interactive request lands.
    let sweep_request =
        protocol::sweep_request(1, &SweepPlanSpec::RunAll, 60_000, 42, None, Some(9));
    let summary = std::thread::scope(|scope| {
        let sweeper = scope.spawn(|| {
            let mut sweep_client = client(&server);
            run_sweep(&mut sweep_client, &sweep_request)
        });
        // Let the sweep get admitted and start executing.
        std::thread::sleep(Duration::from_millis(200));

        // An interactive v1 request on its own connection, for a point
        // outside the plan, with its own deadline. The reserved worker
        // must serve it long before the sweep drains.
        let point = SimPoint::new(
            Benchmark::Gcc,
            MachineConfig::baseline(),
            RunOptions::default().with_ops(3_000).with_seed(7),
        );
        let mut point_client = client(&server);
        let started = Instant::now();
        let response = point_client
            .request(&protocol::simulate_request(2, &point, Some(30_000)))
            .expect("the point request responds mid-sweep");
        let elapsed = started.elapsed();
        let local = simulate_workload(&point.workload, &point.machine, &point.options);
        assert_eq!(
            response,
            protocol::ok_response(2, &local),
            "the v1 response is byte-identical even while a sweep streams"
        );
        assert!(
            elapsed < Duration::from_secs(30),
            "the point request met its deadline during the sweep ({elapsed:?})"
        );
        sweeper.join().expect("sweep thread panicked")
    });
    let (frames, terminal) = summary;
    assert_eq!(frames.len(), 253);
    assert!(
        terminal.contains("\"stream\":\"summary\"") && terminal.contains("\"complete\":true"),
        "the sweep still completes: {terminal}"
    );
    stop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_expired_sweep_deadline_ends_the_stream_with_a_typed_error() {
    let server = start(|_| {});
    // Ops large enough that stream materialization alone outlives a 1 ms
    // deadline; the engine's claim loop then stops at unit granularity.
    let request = protocol::sweep_request(3, &SweepPlanSpec::RunAll, 200_000, 42, Some(1), None);
    let mut client = client(&server);
    let mut streamed = 0usize;
    let terminal = client
        .sweep(&request, |_| streamed += 1)
        .expect("the deadline terminal arrives");
    assert!(
        terminal.contains("\"code\":\"deadline_exceeded\"")
            && terminal.contains("\"points_total\":253"),
        "an expired sweep reports its progress: {terminal}"
    );
    assert!(streamed < 253, "the sweep must not have finished");
    let metrics = client
        .request(&protocol::metrics_request(4))
        .expect("metrics responds");
    let metrics = serde_json::from_str(&metrics).expect("metrics is JSON");
    let metrics = metrics.get("metrics").expect("metrics envelope");
    assert_eq!(metric(metrics, &["sweeps", "cancelled"]), 1);
    stop(server);
}

#[test]
fn sweep_points_coalesce_with_concurrent_point_requests() {
    let dir = temp_dir("coalesce");
    let server = start(|config| {
        config.service = PointService::with_cache(MatrixCache::new(&dir));
    });
    // Warm exactly one plan point through the v1 path first; the sweep
    // must serve it from the cache, not re-execute it.
    let (_, points) = run_all_points(SWEEP_OPS);
    let warm_point = points[0].clone();
    let mut point_client = client(&server);
    let response = point_client
        .request(&protocol::simulate_request(5, &warm_point, None))
        .expect("the warm-up point simulates");
    assert!(response.contains("\"ok\":true"), "{response}");
    let executed_before = server.service().executed();

    let request = protocol::sweep_request(6, &SweepPlanSpec::RunAll, SWEEP_OPS, 42, None, None);
    let mut sweep_client = client(&server);
    let (frames, terminal) = run_sweep(&mut sweep_client, &request);
    assert_eq!(frames.len(), points.len());
    assert!(terminal.contains("\"complete\":true"), "{terminal}");
    assert_eq!(
        server.service().executed(),
        executed_before + points.len() as u64 - 1,
        "the pre-warmed point is a cache hit, not a re-execution"
    );
    stop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
