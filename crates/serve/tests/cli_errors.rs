//! Command-line error paths of the `serve` and `serve_client` binaries,
//! asserted against the exact messages — same contract as the experiment
//! binaries (`error: <message>` plus usage on stderr, exit 2) — plus the
//! protocol client's id-echo verification against a misbehaving daemon.

use std::process::Command;
use std::time::Duration;

use wp_serve::protocol;
use wp_serve::Client;

/// Runs a binary with `args`; returns `(exit_code, stderr)`.
fn run(binary: &str, args: &[&str]) -> (i32, String) {
    let output = Command::new(binary)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {binary}: {e}"));
    (
        output.status.code().expect("binary exited with a code"),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// Asserts the binary rejects `args` with exactly `message` on the first
/// stderr line, prints a usage line, and exits 2.
fn assert_cli_error(binary: &str, args: &[&str], message: &str) {
    let (code, stderr) = run(binary, args);
    assert_eq!(code, 2, "{binary} {args:?} must exit 2; stderr: {stderr}");
    let first = stderr.lines().next().unwrap_or_default();
    assert_eq!(
        first,
        format!("error: {message}"),
        "{binary} {args:?} printed the wrong error"
    );
    assert!(
        stderr.contains("usage:"),
        "{binary} {args:?} must print usage; stderr: {stderr}"
    );
}

#[test]
fn serve_rejects_bad_command_lines_with_exact_messages() {
    let bin = env!("CARGO_BIN_EXE_serve");
    assert_cli_error(bin, &["--frobnicate"], "unknown flag `--frobnicate`");
    assert_cli_error(bin, &["--listen"], "flag `--listen` requires a value");
    assert_cli_error(bin, &["--workers"], "flag `--workers` requires a value");
    assert_cli_error(
        bin,
        &["--workers", "0"],
        "invalid value `0` for flag `--workers`",
    );
    assert_cli_error(
        bin,
        &["--workers", "many"],
        "invalid value `many` for flag `--workers`",
    );
    assert_cli_error(
        bin,
        &["--queue-depth"],
        "flag `--queue-depth` requires a value",
    );
    assert_cli_error(
        bin,
        &["--queue-depth", "0"],
        "invalid value `0` for flag `--queue-depth`",
    );
    assert_cli_error(
        bin,
        &["--default-deadline-ms"],
        "flag `--default-deadline-ms` requires a value",
    );
    assert_cli_error(
        bin,
        &["--default-deadline-ms", "soon"],
        "invalid value `soon` for flag `--default-deadline-ms`",
    );
    assert_cli_error(
        bin,
        &["--max-conn-requests", "0"],
        "invalid value `0` for flag `--max-conn-requests`",
    );
    assert_cli_error(
        bin,
        &["--matrix-cache-dir"],
        "flag `--matrix-cache-dir` requires a value",
    );
    assert_cli_error(
        bin,
        &["--matrix-cache-cap", "lots"],
        "invalid value `lots` for flag `--matrix-cache-cap`",
    );
    assert_cli_error(
        bin,
        &["--lane-depth", "0"],
        "invalid value `0` for flag `--lane-depth`",
    );
    assert_cli_error(
        bin,
        &["--lane-depth"],
        "flag `--lane-depth` requires a value",
    );
    assert_cli_error(
        bin,
        &["--sweep-threads", "many"],
        "invalid value `many` for flag `--sweep-threads`",
    );
}

#[test]
fn serve_client_rejects_bad_command_lines_with_exact_messages() {
    let bin = env!("CARGO_BIN_EXE_serve_client");
    assert_cli_error(bin, &["--frobnicate"], "unknown flag `--frobnicate`");
    assert_cli_error(bin, &["--connect"], "flag `--connect` requires a value");
    assert_cli_error(bin, &[], "flag `--connect` (or `--batch`) is required");
    assert_cli_error(
        bin,
        &["--batch", "--workload", "nonesuch"],
        "invalid value `nonesuch` for flag `--workload`",
    );
    assert_cli_error(
        bin,
        &["--batch", "--ops", "0"],
        "invalid value `0` for flag `--ops`",
    );
    assert_cli_error(
        bin,
        &["--batch", "--dpolicy", "nonesuch"],
        "invalid value `nonesuch` for flag `--dpolicy`",
    );
    assert_cli_error(
        bin,
        &["--connect", "127.0.0.1:1", "--repeat", "0"],
        "invalid value `0` for flag `--repeat`",
    );
    assert_cli_error(
        bin,
        &["--connect", "127.0.0.1:1", "--deadline-ms", "0"],
        "invalid value `0` for flag `--deadline-ms`",
    );
    assert_cli_error(
        bin,
        &["--connect", "127.0.0.1:1", "--priority", "10"],
        "invalid value `10` for flag `--priority`",
    );
    assert_cli_error(
        bin,
        &["--connect", "127.0.0.1:1", "--priority"],
        "flag `--priority` requires a value",
    );
    assert_cli_error(
        bin,
        &["--connect", "127.0.0.1:1", "--sweep"],
        "flag `--sweep` requires a value",
    );
}

/// A scripted stand-in daemon: accepts one connection and plays back the
/// given `(delay, response payload)` script after reading one request per
/// entry.
fn fake_daemon(script: Vec<(Duration, Vec<String>)>) -> (String, std::thread::JoinHandle<()>) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("fake daemon binds");
    let addr = listener.local_addr().expect("bound address").to_string();
    let handle = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("client connects");
        for (delay, responses) in script {
            protocol::read_frame(&mut conn)
                .expect("request frame arrives")
                .expect("request frame is not EOF");
            std::thread::sleep(delay);
            for response in responses {
                protocol::write_frame(&mut conn, response.as_bytes()).expect("response sends");
            }
        }
    });
    (addr, handle)
}

#[test]
fn the_client_rejects_mismatched_response_ids_with_a_typed_error() {
    let (addr, daemon) = fake_daemon(vec![(
        Duration::ZERO,
        vec!["{\"v\":1,\"id\":999,\"ok\":true}".to_string()],
    )]);
    let mut client = Client::connect(&addr).expect("client connects");
    client
        .set_timeout(Duration::from_secs(10))
        .expect("timeout set");
    let err = client
        .request("{\"v\":1,\"id\":1,\"type\":\"health\"}")
        .expect_err("a response for a different request must not be delivered");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert_eq!(
        err.to_string(),
        "response id 999 does not match request id 1"
    );
    daemon.join().expect("fake daemon panicked");
}

#[test]
fn a_late_response_after_a_timeout_is_drained_not_misdelivered() {
    // The first request's response arrives only after the client has given
    // up on it; the second request's response follows immediately. Before
    // the fix, the reused connection handed request 2 the stale response
    // to request 1.
    let (addr, daemon) = fake_daemon(vec![
        (Duration::from_millis(700), Vec::new()),
        (
            Duration::ZERO,
            vec![
                "{\"v\":1,\"id\":1,\"ok\":true,\"stale\":true}".to_string(),
                "{\"v\":1,\"id\":2,\"ok\":true}".to_string(),
            ],
        ),
    ]);
    let mut client = Client::connect(&addr).expect("client connects");
    client
        .set_timeout(Duration::from_millis(250))
        .expect("short timeout set");
    let err = client
        .request("{\"v\":1,\"id\":1,\"type\":\"health\"}")
        .expect_err("request 1 times out");
    assert!(
        err.kind() == std::io::ErrorKind::WouldBlock || err.kind() == std::io::ErrorKind::TimedOut,
        "unexpected error: {err}"
    );
    client
        .set_timeout(Duration::from_secs(10))
        .expect("timeout restored");
    let response = client
        .request("{\"v\":1,\"id\":2,\"type\":\"health\"}")
        .expect("request 2 gets its own response");
    assert_eq!(
        response, "{\"v\":1,\"id\":2,\"ok\":true}",
        "the stale id-1 frame must be drained, not delivered"
    );
    daemon.join().expect("fake daemon panicked");
}
