//! Command-line error paths of the `serve` and `serve_client` binaries,
//! asserted against the exact messages — same contract as the experiment
//! binaries (`error: <message>` plus usage on stderr, exit 2).

use std::process::Command;

/// Runs a binary with `args`; returns `(exit_code, stderr)`.
fn run(binary: &str, args: &[&str]) -> (i32, String) {
    let output = Command::new(binary)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {binary}: {e}"));
    (
        output.status.code().expect("binary exited with a code"),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

/// Asserts the binary rejects `args` with exactly `message` on the first
/// stderr line, prints a usage line, and exits 2.
fn assert_cli_error(binary: &str, args: &[&str], message: &str) {
    let (code, stderr) = run(binary, args);
    assert_eq!(code, 2, "{binary} {args:?} must exit 2; stderr: {stderr}");
    let first = stderr.lines().next().unwrap_or_default();
    assert_eq!(
        first,
        format!("error: {message}"),
        "{binary} {args:?} printed the wrong error"
    );
    assert!(
        stderr.contains("usage:"),
        "{binary} {args:?} must print usage; stderr: {stderr}"
    );
}

#[test]
fn serve_rejects_bad_command_lines_with_exact_messages() {
    let bin = env!("CARGO_BIN_EXE_serve");
    assert_cli_error(bin, &["--frobnicate"], "unknown flag `--frobnicate`");
    assert_cli_error(bin, &["--listen"], "flag `--listen` requires a value");
    assert_cli_error(bin, &["--workers"], "flag `--workers` requires a value");
    assert_cli_error(
        bin,
        &["--workers", "0"],
        "invalid value `0` for flag `--workers`",
    );
    assert_cli_error(
        bin,
        &["--workers", "many"],
        "invalid value `many` for flag `--workers`",
    );
    assert_cli_error(
        bin,
        &["--queue-depth"],
        "flag `--queue-depth` requires a value",
    );
    assert_cli_error(
        bin,
        &["--queue-depth", "0"],
        "invalid value `0` for flag `--queue-depth`",
    );
    assert_cli_error(
        bin,
        &["--default-deadline-ms"],
        "flag `--default-deadline-ms` requires a value",
    );
    assert_cli_error(
        bin,
        &["--default-deadline-ms", "soon"],
        "invalid value `soon` for flag `--default-deadline-ms`",
    );
    assert_cli_error(
        bin,
        &["--max-conn-requests", "0"],
        "invalid value `0` for flag `--max-conn-requests`",
    );
    assert_cli_error(
        bin,
        &["--matrix-cache-dir"],
        "flag `--matrix-cache-dir` requires a value",
    );
    assert_cli_error(
        bin,
        &["--matrix-cache-cap", "lots"],
        "invalid value `lots` for flag `--matrix-cache-cap`",
    );
}

#[test]
fn serve_client_rejects_bad_command_lines_with_exact_messages() {
    let bin = env!("CARGO_BIN_EXE_serve_client");
    assert_cli_error(bin, &["--frobnicate"], "unknown flag `--frobnicate`");
    assert_cli_error(bin, &["--connect"], "flag `--connect` requires a value");
    assert_cli_error(bin, &[], "flag `--connect` (or `--batch`) is required");
    assert_cli_error(
        bin,
        &["--batch", "--workload", "nonesuch"],
        "invalid value `nonesuch` for flag `--workload`",
    );
    assert_cli_error(
        bin,
        &["--batch", "--ops", "0"],
        "invalid value `0` for flag `--ops`",
    );
    assert_cli_error(
        bin,
        &["--batch", "--dpolicy", "nonesuch"],
        "invalid value `nonesuch` for flag `--dpolicy`",
    );
    assert_cli_error(
        bin,
        &["--connect", "127.0.0.1:1", "--repeat", "0"],
        "invalid value `0` for flag `--repeat`",
    );
    assert_cli_error(
        bin,
        &["--connect", "127.0.0.1:1", "--deadline-ms", "0"],
        "invalid value `0` for flag `--deadline-ms`",
    );
}
