//! In-process daemon tests: one [`wp_serve::server`] instance per test on
//! an ephemeral port (or a Unix socket), driven through the real protocol
//! client. These pin the four robustness layers — byte-identity with the
//! batch path, cross-request singleflight, admission-control shedding,
//! deadline cancellation — plus the health and shutdown surfaces.

use std::time::Duration;

use wp_experiments::{
    simulate_workload, MachineConfig, MatrixCache, PointService, RunOptions, SimPoint,
};
use wp_serve::protocol;
use wp_serve::server::{self, Listen, RunningServer, ServerConfig};
use wp_serve::Client;
use wp_workloads::{Benchmark, WorkloadSpec};

/// Ops short enough to finish instantly in a test.
const QUICK_OPS: usize = 3_000;
/// Ops long enough that a sub-second deadline always fires first.
const ENDLESS_OPS: usize = 500_000_000;

fn point(benchmark: Benchmark, ops: usize) -> SimPoint {
    SimPoint::new(
        benchmark,
        MachineConfig::baseline(),
        RunOptions::default().with_ops(ops),
    )
}

fn start(configure: impl FnOnce(&mut ServerConfig)) -> RunningServer {
    let mut config = ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), PointService::new());
    config.workers = 2;
    configure(&mut config);
    server::start(config).expect("daemon starts on an ephemeral port")
}

fn client(server: &RunningServer) -> Client {
    let client = Client::connect(server.addr()).expect("client connects");
    client
        .set_timeout(Duration::from_secs(120))
        .expect("timeout set");
    client
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wpsdm-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stop(server: RunningServer) {
    server.shutdown();
    server.join();
}

#[test]
fn daemon_responses_are_byte_identical_to_the_batch_renderer() {
    let server = start(|_| {});
    let mut client = client(&server);
    let point = point(Benchmark::Gcc, QUICK_OPS);
    let response = client
        .request(&protocol::simulate_request(1, &point, None))
        .expect("simulate succeeds");
    let local = simulate_workload(&point.workload, &point.machine, &point.options);
    assert_eq!(
        response,
        protocol::ok_response(1, &local),
        "the daemon and the batch path must render the same bytes"
    );
    stop(server);
}

#[test]
fn a_stampede_of_identical_requests_executes_one_simulation() {
    let dir = temp_dir("stampede");
    let server = start(|config| {
        // The shared cache makes the executed-once property independent of
        // timing: concurrent duplicates coalesce in flight, and any
        // straggler that arrives after completion hits the cache instead.
        config.service = PointService::with_cache(MatrixCache::new(&dir));
        config.workers = 4;
    });
    let stampede = 8;
    let point = point(Benchmark::Li, 50_000);
    let request = protocol::simulate_request(1, &point, None);
    let barrier = std::sync::Barrier::new(stampede);
    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..stampede)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = client(&server);
                    barrier.wait();
                    client.request(&request).expect("simulate succeeds")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stampede thread panicked"))
            .collect()
    });
    assert_eq!(
        server.service().executed(),
        1,
        "duplicates must coalesce onto one simulation \
         (coalesced {}, cache hits {})",
        server.service().coalesced(),
        server.service().cache_hits(),
    );
    let first = &responses[0];
    assert!(first.contains("\"ok\":true"), "got: {first}");
    for response in &responses {
        assert_eq!(response, first, "every stampeder gets the same bytes");
    }
    stop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_full_queue_sheds_with_overloaded_instead_of_stalling() {
    let server = start(|config| {
        config.workers = 1;
        config.queue_depth = 1;
    });
    // Occupy the lone worker, then the lone queue slot, with simulations
    // whose deadlines do the cleanup.
    let blockers: Vec<(Client, SimPoint)> = [Benchmark::Gcc, Benchmark::Li]
        .into_iter()
        .map(|b| (client(&server), point(b, ENDLESS_OPS)))
        .collect();
    let mut responses = Vec::new();
    let mut blocked: Vec<_> = blockers
        .into_iter()
        .map(|(mut c, p)| {
            let request = protocol::simulate_request(1, &p, Some(1_000));
            std::thread::spawn(move || c.request(&request).expect("blocked request responds"))
        })
        .inspect(|_| std::thread::sleep(Duration::from_millis(300)))
        .collect();
    // Worker busy, queue full: the third distinct point sheds immediately.
    let mut shed_client = client(&server);
    let shed_point = point(Benchmark::Perl, ENDLESS_OPS);
    let started = std::time::Instant::now();
    let shed = shed_client
        .request(&protocol::simulate_request(7, &shed_point, Some(60_000)))
        .expect("shed request still gets a response");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shedding must not wait for capacity"
    );
    assert_eq!(
        shed,
        protocol::error_response(
            7,
            protocol::ErrorCode::Overloaded,
            "the request queue is full"
        )
    );
    assert_eq!(server.shed(), 1);
    for handle in blocked.drain(..) {
        let response = handle.join().expect("blocker thread panicked");
        assert!(
            response.contains("\"code\":\"deadline_exceeded\""),
            "blockers die by their own deadline: {response}"
        );
        responses.push(response);
    }
    stop(server);
}

#[test]
fn expired_deadlines_return_partial_progress() {
    let server = start(|_| {});
    let mut client = client(&server);
    let point = point(Benchmark::Gcc, ENDLESS_OPS);
    let response = client
        .request(&protocol::simulate_request(5, &point, Some(250)))
        .expect("deadline response arrives");
    let value = serde_json::from_str(&response).expect("response is JSON");
    assert_eq!(value.get("ok").and_then(serde::Value::as_bool), Some(false));
    let error = value.get("error").expect("error object");
    assert_eq!(
        error.get("code").and_then(serde::Value::as_str),
        Some("deadline_exceeded")
    );
    let completed = error
        .get("ops_completed")
        .and_then(serde::Value::as_u64)
        .expect("partial progress is reported");
    let requested = error
        .get("ops_requested")
        .and_then(serde::Value::as_u64)
        .expect("requested ops are reported");
    assert_eq!(requested, ENDLESS_OPS as u64);
    assert!(
        completed > 0 && completed < requested,
        "cancellation is cooperative mid-run: {completed} of {requested}"
    );
    stop(server);
}

#[test]
fn a_follower_with_deadline_budget_releads_after_the_leaders_cancellation() {
    let server = start(|config| config.workers = 2);
    // Calibrate an op count that simulates for roughly two seconds, so the
    // leader's 500 ms deadline always fires mid-run while the follower's
    // generous deadline never does.
    let probe = point(Benchmark::Gcc, 400_000);
    let started = std::time::Instant::now();
    simulate_workload(&probe.workload, &probe.machine, &probe.options);
    let per_op = started.elapsed().as_secs_f64() / 400_000.0;
    let ops = ((2.0 / per_op.max(1e-12)) as usize).clamp(1_000_000, 4_000_000_000);
    let slow = point(Benchmark::Gcc, ops);
    let expected = simulate_workload(&slow.workload, &slow.machine, &slow.options);

    // Client A leads the flight with a 500 ms deadline; client B joins the
    // same point 150 ms later with a two-minute deadline. Before the fix,
    // B inherited A's cancellation and returned `deadline_exceeded` with
    // most of its own budget unspent.
    let request_a = protocol::simulate_request(1, &slow, Some(500));
    let request_b = protocol::simulate_request(2, &slow, Some(120_000));
    let (response_a, response_b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| {
            let mut client = client(&server);
            client.request(&request_a).expect("A gets a response")
        });
        std::thread::sleep(Duration::from_millis(150));
        let b = scope.spawn(|| {
            let mut client = client(&server);
            client.request(&request_b).expect("B gets a response")
        });
        (a.join().expect("A panicked"), b.join().expect("B panicked"))
    });
    assert!(
        response_a.contains("\"code\":\"deadline_exceeded\""),
        "the leader dies by its own deadline: {response_a}"
    );
    assert_eq!(
        response_b,
        protocol::ok_response(2, &expected),
        "the follower re-leads a fresh flight and completes under its own deadline"
    );
    assert!(
        server.releads() >= 1,
        "the re-lead is visible in the metrics counter"
    );
    stop(server);
}

#[test]
fn malformed_requests_get_typed_bad_request_errors() {
    let server = start(|_| {});
    let mut client = client(&server);
    let response = client.request("not json").expect("error response arrives");
    assert!(response.contains("\"code\":\"bad_request\""), "{response}");
    let response = client
        .request("{\"id\":3,\"type\":\"health\"}")
        .expect("error response arrives");
    assert_eq!(
        response,
        protocol::error_response(3, protocol::ErrorCode::BadRequest, "missing field `v`"),
        "the connection survives a bad request and echoes its id"
    );
    stop(server);
}

#[test]
fn the_per_connection_budget_sheds_and_closes() {
    let server = start(|config| config.max_conn_requests = 2);
    let mut client = client(&server);
    let request = protocol::simulate_request(1, &point(Benchmark::Gcc, QUICK_OPS), None);
    for _ in 0..2 {
        let response = client.request(&request).expect("within budget");
        assert!(response.contains("\"ok\":true"), "{response}");
    }
    let response = client.request(&request).expect("budget error arrives");
    assert_eq!(
        response,
        protocol::error_response(
            1,
            protocol::ErrorCode::Overloaded,
            "per-connection request budget exhausted; reconnect to continue"
        )
    );
    assert!(
        client.request(&request).is_err(),
        "the connection is closed after the budget error"
    );
    // A fresh connection gets a fresh budget.
    let mut fresh = self::client(&server);
    let response = fresh.request(&request).expect("fresh budget");
    assert!(response.contains("\"ok\":true"), "{response}");
    stop(server);
}

#[test]
fn a_shutdown_request_acks_drains_and_rejects_new_work() {
    let server = start(|_| {});
    let mut survivor = client(&server);
    let mut shutter = client(&server);
    let ack = shutter
        .request("{\"v\":1,\"id\":9,\"type\":\"shutdown\"}")
        .expect("shutdown acks");
    assert_eq!(ack, protocol::ack_response(9));
    // The still-open connection is told the daemon is draining.
    let request = protocol::simulate_request(1, &point(Benchmark::Gcc, QUICK_OPS), None);
    let response = survivor.request(&request).expect("drain response arrives");
    assert_eq!(
        response,
        protocol::error_response(
            1,
            protocol::ErrorCode::ShuttingDown,
            "the daemon is draining for shutdown"
        )
    );
    assert!(server.shutdown_requested());
    server.join();
}

#[test]
fn health_reports_cache_and_singleflight_counters() {
    let dir = temp_dir("health");
    let server = start(|config| {
        config.service = PointService::with_cache(MatrixCache::new(&dir));
    });
    let mut client = client(&server);
    let request = protocol::simulate_request(1, &point(Benchmark::Gcc, QUICK_OPS), None);
    client.request(&request).expect("cold simulate");
    client.request(&request).expect("warm simulate");
    let health = client
        .request("{\"v\":1,\"id\":2,\"type\":\"health\"}")
        .expect("health responds");
    assert_eq!(
        health,
        protocol::health_response(2, &server.service().cache_health(), 1, 1, 0, false),
        "one executed, one cache hit, nothing coalesced"
    );
    stop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn unix_sockets_serve_and_are_unlinked_on_shutdown() {
    let path = std::env::temp_dir().join(format!("wpsdm-serve-test-{}.sock", std::process::id()));
    let server = {
        let mut config = ServerConfig::new(Listen::Unix(path.clone()), PointService::new());
        config.workers = 1;
        server::start(config).expect("daemon binds the unix socket")
    };
    let mut client = Client::connect(&path.display().to_string()).expect("unix client connects");
    let point = point(Benchmark::Li, QUICK_OPS);
    let response = client
        .request(&protocol::simulate_request(1, &point, None))
        .expect("simulate over unix socket");
    let local = simulate_workload(&point.workload, &point.machine, &point.options);
    assert_eq!(response, protocol::ok_response(1, &local));
    stop(server);
    assert!(!path.exists(), "the socket file is unlinked on shutdown");
}

#[test]
fn workload_specs_beyond_benchmarks_are_served() {
    let server = start(|_| {});
    let mut client = client(&server);
    let spec = WorkloadSpec::parse("pointer_chase").expect("scenario parses");
    let point = SimPoint::with_workload(
        spec,
        MachineConfig::baseline(),
        RunOptions::default().with_ops(QUICK_OPS),
    );
    let response = client
        .request(&protocol::simulate_request(4, &point, None))
        .expect("scenario simulate succeeds");
    let local = simulate_workload(&point.workload, &point.machine, &point.options);
    assert_eq!(response, protocol::ok_response(4, &local));
    stop(server);
}
