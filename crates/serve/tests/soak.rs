//! Chaos/soak harness against the real `serve` binary: concurrent clients
//! over duplicate points, seeded cache faults, a mid-soak `kill -9` plus
//! restart on the same cache directory, and a SIGTERM drain — asserting
//! the daemon's responses never diverge from the batch path by a byte.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use wp_experiments::{simulate_workload, MachineConfig, RunOptions, SimPoint};
use wp_serve::protocol;
use wp_serve::Client;
use wp_workloads::Benchmark;

/// The soak's point matrix; small enough to simulate in milliseconds,
/// repeated across every client so duplicates dominate.
fn soak_points() -> Vec<SimPoint> {
    [Benchmark::Gcc, Benchmark::Li, Benchmark::Swim]
        .into_iter()
        .flat_map(|benchmark| {
            [3_000usize, 4_000].into_iter().map(move |ops| {
                SimPoint::new(
                    benchmark,
                    MachineConfig::baseline(),
                    RunOptions::default().with_ops(ops),
                )
            })
        })
        .collect()
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Starts `serve` on an ephemeral port over `cache_dir` with the given
    /// seeded fault plan, and parses the bound address off stdout.
    fn start(cache_dir: &std::path::Path, fault_seed: Option<&str>) -> Daemon {
        let mut command = Command::new(env!("CARGO_BIN_EXE_serve"));
        command
            .args([
                "--listen",
                "127.0.0.1:0",
                "--workers",
                "4",
                "--matrix-cache-dir",
            ])
            .arg(cache_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        match fault_seed {
            Some(seed) => command.env("WPSDM_MATRIX_CACHE_FAULT_SEED", seed),
            None => command.env_remove("WPSDM_MATRIX_CACHE_FAULT_SEED"),
        };
        let mut child = command.spawn().expect("serve binary spawns");
        let stdout = child.stdout.take().expect("stdout is piped");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("serve announces its address");
        let addr = line
            .trim()
            .strip_prefix("wp-serve: listening on tcp://")
            .unwrap_or_else(|| panic!("unexpected announcement: {line}"))
            .to_string();
        Daemon { child, addr }
    }

    fn client(&self) -> Client {
        // The daemon is already accepting by the time it announces, but a
        // freshly killed predecessor can leave the port briefly wedged.
        for _ in 0..50 {
            if let Ok(client) = Client::connect(&self.addr) {
                let _ = client.set_timeout(Duration::from_secs(120));
                return client;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("could not connect to {}", self.addr);
    }

    /// The crash: SIGKILL, no drain, no cleanup.
    fn kill(mut self) {
        self.child.kill().expect("kill -9 the daemon");
        self.child.wait().expect("reap the killed daemon");
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wpsdm-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Eight concurrent clients, each requesting every point (so every point is
/// requested eight times), returning each client's responses in point
/// order.
fn storm(daemon: &Daemon, points: &[SimPoint]) -> Vec<Vec<String>> {
    let clients = 8;
    let barrier = std::sync::Barrier::new(clients);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = daemon.client();
                    barrier.wait();
                    points
                        .iter()
                        .map(|point| {
                            client
                                .request(&protocol::simulate_request(1, point, None))
                                .expect("soak request succeeds")
                        })
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak client panicked"))
            .collect()
    })
}

#[test]
fn soak_with_faults_survives_kill_dash_nine_and_stays_byte_identical() {
    let dir = temp_dir("chaos");
    let points = soak_points();
    // The reference bytes: the batch path, rendered by the same renderer.
    let expected: Vec<String> = points
        .iter()
        .map(|point| {
            let result = simulate_workload(&point.workload, &point.machine, &point.options);
            protocol::ok_response(1, &result)
        })
        .collect();

    // Phase 1: cold daemon, seeded cache faults, 8 concurrent clients over
    // duplicate points.
    let daemon = Daemon::start(&dir, Some("7"));
    for responses in storm(&daemon, &points) {
        assert_eq!(responses, expected, "cold responses match the batch path");
    }
    // Mid-soak crash: no drain, cache directory left as-is.
    daemon.kill();

    // Phase 2: restart over the same directory (faults off, so every
    // surviving cache record is actually read). Warm or recomputed, the
    // bytes must not change.
    let daemon = Daemon::start(&dir, None);
    for responses in storm(&daemon, &points) {
        assert_eq!(responses, expected, "post-crash responses are identical");
    }
    let health = daemon
        .client()
        .request("{\"v\":1,\"id\":1,\"type\":\"health\"}")
        .expect("health responds");
    assert!(health.contains("\"ok\":true"), "{health}");
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs a mixed storm: `point_clients` v1 clients each requesting every
/// point (returning their responses in point order plus the slowest single
/// request), alongside `sweep_clients` v2 clients each streaming one sweep
/// over the same points (returning `(frames sorted by index, terminal)`).
#[allow(clippy::type_complexity)]
fn mixed_storm(
    daemon: &Daemon,
    points: &[SimPoint],
    point_clients: usize,
    sweep_clients: usize,
) -> (Vec<(Vec<String>, Duration)>, Vec<(Vec<String>, String)>) {
    // The sweep-level ops/seed are defaults only; every explicit point
    // carries its own, so the values here never reach the plan.
    let sweep_request = protocol::sweep_request(
        4,
        &protocol::SweepPlanSpec::Points(points.to_vec()),
        3_000,
        42,
        None,
        None,
    );
    let barrier = std::sync::Barrier::new(point_clients + sweep_clients);
    std::thread::scope(|scope| {
        let point_handles: Vec<_> = (0..point_clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = daemon.client();
                    barrier.wait();
                    let mut slowest = Duration::ZERO;
                    let responses = points
                        .iter()
                        .map(|point| {
                            let started = std::time::Instant::now();
                            let response = client
                                .request(&protocol::simulate_request(1, point, Some(60_000)))
                                .expect("storm point request succeeds");
                            slowest = slowest.max(started.elapsed());
                            response
                        })
                        .collect::<Vec<String>>();
                    (responses, slowest)
                })
            })
            .collect();
        let sweep_handles: Vec<_> = (0..sweep_clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = daemon.client();
                    barrier.wait();
                    let mut frames: Vec<(u64, String)> = Vec::new();
                    let terminal = client
                        .sweep(&sweep_request, |frame| {
                            let index = frame
                                .split("\"index\":")
                                .nth(1)
                                .and_then(|rest| {
                                    rest.split([',', '}']).next()?.trim().parse::<u64>().ok()
                                })
                                .expect("stream frames carry an index");
                            frames.push((index, frame.to_string()));
                        })
                        .expect("storm sweep streams to completion");
                    frames.sort_by_key(|(index, _)| *index);
                    (
                        frames.into_iter().map(|(_, frame)| frame).collect(),
                        terminal,
                    )
                })
            })
            .collect();
        (
            point_handles
                .into_iter()
                .map(|h| h.join().expect("storm point client panicked"))
                .collect(),
            sweep_handles
                .into_iter()
                .map(|h| h.join().expect("storm sweep client panicked"))
                .collect(),
        )
    })
}

#[test]
fn a_mixed_v1_and_v2_storm_survives_kill_dash_nine_byte_identically() {
    let dir = temp_dir("mixed");
    let points = soak_points();
    // Reference bytes for both protocols, rendered by the same functions
    // the daemon uses: v1 point responses and v2 stream frames per point.
    let results: Vec<_> = points
        .iter()
        .map(|point| simulate_workload(&point.workload, &point.machine, &point.options))
        .collect();
    let expected_points: Vec<String> = results
        .iter()
        .map(|result| protocol::ok_response(1, result))
        .collect();
    let expected_frames: Vec<String> = results
        .iter()
        .enumerate()
        .map(|(index, result)| protocol::stream_point_response(4, index, result))
        .collect();
    let expected_summary =
        protocol::sweep_summary_response(4, points.len(), points.len(), points.len());

    // Phase 1: cold daemon with seeded cache faults; four v1 clients and
    // two concurrent v2 sweeps fight over the same six points.
    let daemon = Daemon::start(&dir, Some("11"));
    let (point_runs, sweep_runs) = mixed_storm(&daemon, &points, 4, 2);
    for (responses, slowest) in &point_runs {
        assert_eq!(
            responses, &expected_points,
            "cold v1 responses match the batch path"
        );
        // The fairness bound: interactive points stay responsive while
        // sweeps stream. Generous for CI noise, but far below a serialized
        // whole-sweep wait.
        assert!(
            *slowest < Duration::from_secs(20),
            "a point request stalled behind the sweeps ({slowest:?})"
        );
    }
    for (frames, terminal) in &sweep_runs {
        assert_eq!(frames, &expected_frames, "cold sweep frames match batch");
        assert_eq!(terminal, &expected_summary);
    }
    // Mid-storm crash: no drain, cache directory left as-is.
    daemon.kill();

    // Phase 2: restart over the same directory with faults off. Warm or
    // recomputed, both protocols' bytes must not change.
    let daemon = Daemon::start(&dir, None);
    let (point_runs, sweep_runs) = mixed_storm(&daemon, &points, 4, 2);
    for (responses, _) in &point_runs {
        assert_eq!(
            responses, &expected_points,
            "post-crash v1 responses are identical"
        );
    }
    for (frames, terminal) in &sweep_runs {
        assert_eq!(
            frames, &expected_frames,
            "post-crash sweep frames are identical"
        );
        assert_eq!(terminal, &expected_summary);
    }
    daemon.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn sigterm_drains_and_exits_zero() {
    let dir = temp_dir("sigterm");
    let mut daemon = Daemon::start(&dir, None);
    // Prove it serves, then ask the OS to stop it.
    let mut client = daemon.client();
    let point = SimPoint::new(
        Benchmark::Gcc,
        MachineConfig::baseline(),
        RunOptions::default().with_ops(2_000),
    );
    let response = client
        .request(&protocol::simulate_request(1, &point, None))
        .expect("simulate before the signal");
    assert!(response.contains("\"ok\":true"), "{response}");

    let status = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("kill -TERM runs");
    assert!(status.success());
    let exit = daemon.child.wait().expect("daemon exits");
    assert!(exit.success(), "SIGTERM must drain and exit 0, got {exit}");
    let _ = std::fs::remove_dir_all(&dir);
}
