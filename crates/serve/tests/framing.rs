//! Regression tests for resumable frame decoding (the framing-desync
//! bugfix): a client that dribbles a frame one byte at a time, with pauses
//! longer than the daemon's 250 ms read timeout, must still get its
//! request parsed — the handler's persistent [`protocol::FrameReader`]
//! holds the partial bytes across timeouts instead of discarding them.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use wp_experiments::PointService;
use wp_serve::protocol::{self, FrameReader};
use wp_serve::server::{self, Listen, RunningServer, ServerConfig};

/// Longer than the daemon's 250 ms idle read timeout, so every byte of the
/// dribble forces a mid-frame timeout in the handler.
const DRIBBLE_PAUSE: Duration = Duration::from_millis(300);

fn start() -> RunningServer {
    let mut config = ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), PointService::new());
    config.workers = 1;
    server::start(config).expect("daemon starts on an ephemeral port")
}

/// Encodes `payload` as one wire frame (length prefix plus body).
fn frame_bytes(payload: &str) -> Vec<u8> {
    let mut framed = Vec::new();
    protocol::write_frame(&mut framed, payload.as_bytes()).expect("in-memory frame");
    framed
}

/// Reads one response payload off the raw socket.
fn read_response(stream: &mut TcpStream) -> String {
    let mut frames = FrameReader::new();
    loop {
        match frames.read(stream) {
            Ok(Some(payload)) => {
                return String::from_utf8(payload).expect("response is UTF-8");
            }
            Ok(None) => panic!("the daemon closed the connection without responding"),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

#[test]
fn a_frame_dribbled_one_byte_per_300ms_still_parses() {
    let server = start();
    let mut stream = TcpStream::connect(server.addr()).expect("raw client connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout set");

    // Dribble the whole frame — 4-byte length prefix and payload alike —
    // one byte per 300 ms. Before the fix, every 250 ms handler timeout
    // threw away the bytes read so far, so this frame could never complete.
    let payload = "{\"v\":1,\"id\":21,\"type\":\"health\"}";
    for &byte in &frame_bytes(payload) {
        stream.write_all(&[byte]).expect("dribbled byte sends");
        stream.flush().expect("dribbled byte flushes");
        std::thread::sleep(DRIBBLE_PAUSE);
    }
    let response = read_response(&mut stream);
    assert_eq!(
        response,
        protocol::health_response(21, &server.service().cache_health(), 0, 0, 0, false),
        "the dribbled frame must parse as if sent in one write"
    );

    // The connection state is clean afterwards: a normal request on the
    // same socket still round-trips.
    stream
        .write_all(&frame_bytes("{\"v\":1,\"id\":22,\"type\":\"health\"}"))
        .expect("follow-up frame sends");
    let response = read_response(&mut stream);
    assert!(
        response.contains("\"id\":22"),
        "the follow-up request gets its own response: {response}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn a_mid_frame_pause_straddling_many_timeouts_keeps_the_payload_intact() {
    let server = start();
    let mut stream = TcpStream::connect(server.addr()).expect("raw client connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout set");

    // Split a frame at the worst spot — inside the length prefix — and
    // again mid-payload, pausing over a second each time (4+ timeouts).
    let framed = frame_bytes("{\"v\":1,\"id\":23,\"type\":\"health\"}");
    let cuts = [2, 10, framed.len()];
    let mut sent = 0;
    for cut in cuts {
        stream.write_all(&framed[sent..cut]).expect("chunk sends");
        stream.flush().expect("chunk flushes");
        sent = cut;
        if sent < framed.len() {
            std::thread::sleep(Duration::from_millis(1_100));
        }
    }
    let response = read_response(&mut stream);
    assert!(
        response.contains("\"id\":23") && response.contains("\"ok\":true"),
        "the split frame parses whole: {response}"
    );

    server.shutdown();
    server.join();
}
