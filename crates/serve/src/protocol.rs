//! The wire protocol: length-prefixed JSON frames, versioned requests, and
//! deterministic response rendering.
//!
//! A frame is a 4-byte little-endian payload length followed by that many
//! bytes of UTF-8 JSON; frames above [`MAX_FRAME_BYTES`] are rejected
//! before allocation. Every request carries `{"v": 1, "id": N, "type":
//! ...}`; see `docs/SERVICE.md` for the full request/response taxonomy.
//!
//! Response rendering is centralised here — the daemon's workers and the
//! `serve_client --batch` local path call the same [`ok_response`], so
//! "daemon bytes equal batch bytes for the same point" is a property of
//! this module, not of two renderers kept manually in sync. Simulation
//! results travel as the [`SimResult::fields`] name → IEEE-754-bit map,
//! the crate's canonical exact-equality contract.

use std::io::{self, Read, Write};

use serde::Value;
use wp_cpu::{Processor, SimResult};
use wp_experiments::matrix_cache::CacheHealth;
use wp_experiments::{MachineConfig, RunOptions, SimPoint};
use wp_workloads::WorkloadSpec;

/// The protocol version this build speaks; requests with any other `v` are
/// rejected with `bad_request`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on one frame's payload, checked before allocating.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Writes one length-prefixed frame.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` is a clean end-of-stream
/// (EOF before any length byte); EOF mid-frame is an error.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match reader.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(mut got) => {
            while got < len.len() {
                let more = reader.read(&mut len[got..])?;
                if more == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ));
                }
                got += more;
            }
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// The typed error taxonomy every non-`ok` response carries; see
/// `docs/SERVICE.md` for when each fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The admission queue (or a per-connection budget) is full; retry
    /// later, against the shed request only — nothing partially ran.
    Overloaded,
    /// The request's deadline expired; partial-progress counters ride
    /// along.
    DeadlineExceeded,
    /// The daemon is draining for shutdown and admits nothing new.
    ShuttingDown,
    /// The request frame did not parse or validate.
    BadRequest,
    /// The daemon failed internally (worker died mid-flight).
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A parsed, validated request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Simulate one point, bounded by a deadline.
    Simulate {
        /// Client-chosen request id, echoed in the response.
        id: u64,
        /// The full simulation configuration (boxed to keep the request
        /// enum's variants close in size).
        point: Box<SimPoint>,
        /// Deadline override in milliseconds (`None` = server default).
        deadline_ms: Option<u64>,
    },
    /// Report the daemon's health counters.
    Health {
        /// Client-chosen request id, echoed in the response.
        id: u64,
    },
    /// Ask the daemon to drain and exit (the portable twin of SIGTERM).
    Shutdown {
        /// Client-chosen request id, echoed in the response.
        id: u64,
    },
}

/// Parses and validates one request payload. On error, returns the
/// best-effort request id (0 if the frame never got that far) and the
/// `bad_request` message.
pub fn parse_request(payload: &[u8]) -> Result<Request, (u64, String)> {
    let text = std::str::from_utf8(payload).map_err(|_| (0, "frame is not UTF-8".to_string()))?;
    let value = serde_json::from_str(text).map_err(|e| (0, format!("invalid JSON: {e}")))?;
    let Some(fields) = value.as_object() else {
        return Err((0, "request must be a JSON object".to_string()));
    };
    let id = value.get("id").and_then(Value::as_u64).unwrap_or(0);
    let fail = |message: String| Err((id, message));

    match value.get("v").and_then(Value::as_u64) {
        Some(PROTOCOL_VERSION) => {}
        Some(v) => return fail(format!("unsupported protocol version `{v}`")),
        None => return fail("missing field `v`".to_string()),
    }
    if value.get("id").and_then(Value::as_u64).is_none() {
        return fail("missing field `id`".to_string());
    }
    let Some(kind) = value.get("type").and_then(Value::as_str) else {
        return fail("missing field `type`".to_string());
    };

    let allowed: &[&str] = match kind {
        "simulate" => &[
            "v",
            "id",
            "type",
            "workload",
            "ops",
            "seed",
            "deadline_ms",
            "machine",
        ],
        "health" | "shutdown" => &["v", "id", "type"],
        other => return fail(format!("unknown request type `{other}`")),
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return fail(format!("unknown field `{key}`"));
        }
    }

    match kind {
        "health" => Ok(Request::Health { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "simulate" => {
            let Some(name) = value.get("workload").and_then(Value::as_str) else {
                return fail("missing field `workload`".to_string());
            };
            let Some(workload) = WorkloadSpec::parse(name) else {
                return fail(format!("unknown workload `{name}`"));
            };
            let Some(ops) = value.get("ops").and_then(Value::as_u64) else {
                return fail("missing field `ops`".to_string());
            };
            if ops == 0 {
                return fail("field `ops` must be positive".to_string());
            }
            let seed = match value.get("seed") {
                None => 42,
                Some(seed) => match seed.as_u64() {
                    Some(seed) => seed,
                    None => return fail("field `seed` must be an unsigned integer".to_string()),
                },
            };
            let deadline_ms = match value.get("deadline_ms") {
                None => None,
                Some(deadline) => match deadline.as_u64() {
                    Some(0) | None => {
                        return fail("field `deadline_ms` must be positive".to_string())
                    }
                    Some(ms) => Some(ms),
                },
            };
            let machine = match value.get("machine") {
                None => MachineConfig::baseline(),
                Some(machine) => parse_machine(machine).map_err(|message| (id, message))?,
            };
            let options = RunOptions::default().with_ops(ops as usize).with_seed(seed);
            let point = SimPoint::with_workload(workload, machine, options);
            Ok(Request::Simulate {
                id,
                point: Box::new(point),
                deadline_ms,
            })
        }
        _ => unreachable!("type was matched against the allowed list"),
    }
}

/// Parses the optional `machine` object — policy labels plus a d-cache
/// associativity override on the paper baseline — and validates the
/// result by constructing the processor it describes, so an invalid
/// configuration is a `bad_request` here and never a panic in a worker.
fn parse_machine(value: &Value) -> Result<MachineConfig, String> {
    let Some(fields) = value.as_object() else {
        return Err("field `machine` must be an object".to_string());
    };
    for (key, _) in fields {
        if !["dpolicy", "ipolicy", "assoc"].contains(&key.as_str()) {
            return Err(format!("unknown machine field `{key}`"));
        }
    }
    let mut machine = MachineConfig::baseline();
    if let Some(label) = value.get("dpolicy") {
        let Some(label) = label.as_str() else {
            return Err("machine field `dpolicy` must be a string".to_string());
        };
        let Some(dpolicy) = wp_cache::DCachePolicy::parse(label) else {
            return Err(format!("unknown d-cache policy `{label}`"));
        };
        machine = machine.with_dpolicy(dpolicy);
    }
    if let Some(label) = value.get("ipolicy") {
        let Some(label) = label.as_str() else {
            return Err("machine field `ipolicy` must be a string".to_string());
        };
        let Some(ipolicy) = wp_cache::ICachePolicy::parse(label) else {
            return Err(format!("unknown i-cache policy `{label}`"));
        };
        machine = machine.with_ipolicy(ipolicy);
    }
    if let Some(assoc) = value.get("assoc") {
        let Some(assoc) = assoc.as_u64() else {
            return Err("machine field `assoc` must be an unsigned integer".to_string());
        };
        machine = machine.with_l1d(machine.l1d.with_associativity(assoc as usize));
    }
    Processor::with_l1(
        machine.cpu,
        machine.l1d,
        machine.dpolicy,
        machine.l1i,
        machine.ipolicy,
    )
    .map_err(|e| format!("invalid machine configuration: {e}"))?;
    Ok(machine)
}

/// A hand-built [`Value`] serialised as-is.
struct Raw(Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn render(value: Value) -> String {
    serde_json::to_string(&Raw(value)).expect("JSON rendering is infallible")
}

fn envelope(id: u64, ok: bool) -> Vec<(String, Value)> {
    vec![
        ("v".to_string(), Value::UInt(PROTOCOL_VERSION)),
        ("id".to_string(), Value::UInt(id)),
        ("ok".to_string(), Value::Bool(ok)),
    ]
}

/// Renders a successful simulation response: the [`SimResult::fields`]
/// name → u64-bits map, in the canonical field order. Deterministic down
/// to the byte for equal results — the property the soak harness diffs.
pub fn ok_response(id: u64, result: &SimResult) -> String {
    let fields = result
        .fields()
        .iter()
        .map(|&(name, bits)| (name.to_string(), Value::UInt(bits)))
        .collect();
    let mut response = envelope(id, true);
    response.push(("result".to_string(), Value::Object(fields)));
    render(Value::Object(response))
}

/// Renders a bare acknowledgement (the `shutdown` response).
pub fn ack_response(id: u64) -> String {
    render(Value::Object(envelope(id, true)))
}

/// Renders the `health` response: the same [`CacheHealth`] struct
/// `run_all --health-json` writes, under `health.cache`, plus the
/// daemon's singleflight counters and lifecycle state.
pub fn health_response(
    id: u64,
    cache: &CacheHealth,
    executed: u64,
    cache_hits: u64,
    coalesced: u64,
    shutting_down: bool,
) -> String {
    let health = vec![
        ("cache".to_string(), serde::Serialize::to_value(cache)),
        ("degraded".to_string(), Value::Bool(cache.degraded)),
        ("executed".to_string(), Value::UInt(executed)),
        ("cache_hits".to_string(), Value::UInt(cache_hits)),
        ("coalesced".to_string(), Value::UInt(coalesced)),
        ("shutting_down".to_string(), Value::Bool(shutting_down)),
    ];
    let mut response = envelope(id, true);
    response.push(("health".to_string(), Value::Object(health)));
    render(Value::Object(response))
}

/// Renders a typed error response.
pub fn error_response(id: u64, code: ErrorCode, message: &str) -> String {
    let error = vec![
        ("code".to_string(), Value::Str(code.as_str().to_string())),
        ("message".to_string(), Value::Str(message.to_string())),
    ];
    let mut response = envelope(id, false);
    response.push(("error".to_string(), Value::Object(error)));
    render(Value::Object(response))
}

/// Renders a `deadline_exceeded` error with partial-progress counters.
pub fn deadline_response(id: u64, ops_completed: u64, ops_requested: u64) -> String {
    let error = vec![
        (
            "code".to_string(),
            Value::Str(ErrorCode::DeadlineExceeded.as_str().to_string()),
        ),
        (
            "message".to_string(),
            Value::Str(format!(
                "deadline exceeded after {ops_completed} of {ops_requested} ops"
            )),
        ),
        ("ops_completed".to_string(), Value::UInt(ops_completed)),
        ("ops_requested".to_string(), Value::UInt(ops_requested)),
    ];
    let mut response = envelope(id, false);
    response.push(("error".to_string(), Value::Object(error)));
    render(Value::Object(response))
}

/// Builds the `simulate` request JSON for `point` — the client-side twin
/// of [`parse_request`], shared by `serve_client` and the test harnesses.
/// Only baseline-derived machines expressible in the protocol's `machine`
/// object (d-policy, i-policy, d-cache associativity) round-trip; that is
/// exactly the shape `serve_client` can ask for.
pub fn simulate_request(id: u64, point: &SimPoint, deadline_ms: Option<u64>) -> String {
    let mut request = vec![
        ("v".to_string(), Value::UInt(PROTOCOL_VERSION)),
        ("id".to_string(), Value::UInt(id)),
        ("type".to_string(), Value::Str("simulate".to_string())),
        ("workload".to_string(), Value::Str(point.workload.label())),
        ("ops".to_string(), Value::UInt(point.options.ops as u64)),
        ("seed".to_string(), Value::UInt(point.options.seed)),
    ];
    if let Some(ms) = deadline_ms {
        request.push(("deadline_ms".to_string(), Value::UInt(ms)));
    }
    let baseline = MachineConfig::baseline();
    let mut machine = Vec::new();
    if point.machine.dpolicy != baseline.dpolicy {
        machine.push((
            "dpolicy".to_string(),
            Value::Str(point.machine.dpolicy.label().to_string()),
        ));
    }
    if point.machine.ipolicy != baseline.ipolicy {
        machine.push((
            "ipolicy".to_string(),
            Value::Str(point.machine.ipolicy.label().to_string()),
        ));
    }
    if point.machine.l1d.associativity != baseline.l1d.associativity {
        machine.push((
            "assoc".to_string(),
            Value::UInt(point.machine.l1d.associativity as u64),
        ));
    }
    if !machine.is_empty() {
        request.push(("machine".to_string(), Value::Object(machine)));
    }
    render(Value::Object(request))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_cache::DCachePolicy;
    use wp_workloads::Benchmark;

    fn parse(json: &str) -> Result<Request, (u64, String)> {
        parse_request(json.as_bytes())
    }

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"v\":1}").expect("write");
        write_frame(&mut wire, b"").expect("write");
        let mut reader = wire.as_slice();
        assert_eq!(
            read_frame(&mut reader).expect("read"),
            Some(b"{\"v\":1}".to_vec())
        );
        assert_eq!(read_frame(&mut reader).expect("read"), Some(Vec::new()));
        assert_eq!(read_frame(&mut reader).expect("read"), None);
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        assert!(read_frame(&mut wire.as_slice()).is_err());
        let mut truncated = Vec::new();
        truncated.extend_from_slice(&8u32.to_le_bytes());
        truncated.extend_from_slice(b"abc");
        assert!(read_frame(&mut truncated.as_slice()).is_err());
    }

    #[test]
    fn simulate_requests_round_trip_through_the_builder() {
        let point = SimPoint::new(
            Benchmark::Gcc,
            MachineConfig::baseline().with_dpolicy(DCachePolicy::SelDmWayPredict),
            RunOptions::quick().with_ops(4_000).with_seed(7),
        );
        let json = simulate_request(3, &point, Some(500));
        let Request::Simulate {
            id,
            point: parsed,
            deadline_ms,
        } = parse(&json).expect("round trip")
        else {
            panic!("a simulate request parses as simulate");
        };
        assert_eq!(id, 3);
        assert_eq!(deadline_ms, Some(500));
        assert_eq!(*parsed, point);
    }

    #[test]
    fn version_and_shape_violations_are_rejected_with_the_offending_detail() {
        let cases = [
            ("{\"id\":1,\"type\":\"health\"}", "missing field `v`"),
            (
                "{\"v\":2,\"id\":1,\"type\":\"health\"}",
                "unsupported protocol version `2`",
            ),
            ("{\"v\":1,\"type\":\"health\"}", "missing field `id`"),
            ("{\"v\":1,\"id\":1}", "missing field `type`"),
            (
                "{\"v\":1,\"id\":1,\"type\":\"frobnicate\"}",
                "unknown request type `frobnicate`",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"health\",\"extra\":0}",
                "unknown field `extra`",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"ops\":100}",
                "missing field `workload`",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"workload\":\"nonesuch\",\"ops\":100}",
                "unknown workload `nonesuch`",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"workload\":\"gcc\"}",
                "missing field `ops`",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"workload\":\"gcc\",\"ops\":0}",
                "field `ops` must be positive",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"workload\":\"gcc\",\"ops\":10,\
                 \"deadline_ms\":0}",
                "field `deadline_ms` must be positive",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"workload\":\"gcc\",\"ops\":10,\
                 \"machine\":{\"dpolicy\":\"nonesuch\"}}",
                "unknown d-cache policy `nonesuch`",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"workload\":\"gcc\",\"ops\":10,\
                 \"machine\":{\"frobnicate\":1}}",
                "unknown machine field `frobnicate`",
            ),
        ];
        for (json, message) in cases {
            let (_, error) = parse(json).expect_err(json);
            assert_eq!(error, message, "for request {json}");
        }
    }

    #[test]
    fn invalid_machine_geometry_is_bad_request_not_a_panic() {
        // Associativity 3 is not a power of two: the validating processor
        // construction catches it at the protocol boundary.
        let json = "{\"v\":1,\"id\":9,\"type\":\"simulate\",\"workload\":\"gcc\",\"ops\":10,\
                    \"machine\":{\"assoc\":3}}";
        let (id, error) = parse(json).expect_err("invalid geometry must not parse");
        assert_eq!(id, 9);
        assert!(
            error.starts_with("invalid machine configuration: "),
            "got: {error}"
        );
    }

    #[test]
    fn responses_are_deterministic_and_tagged() {
        let point = SimPoint::new(
            Benchmark::Li,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(2_000),
        );
        let result =
            wp_experiments::simulate_workload(&point.workload, &point.machine, &point.options);
        let a = ok_response(7, &result);
        let b = ok_response(7, &result);
        assert_eq!(a, b, "equal results render byte-identically");
        assert!(a.starts_with("{\"v\":1,\"id\":7,\"ok\":true,\"result\":{"));
        assert!(a.contains("\"cycles\":"));

        let error = error_response(3, ErrorCode::Overloaded, "the request queue is full");
        assert_eq!(
            error,
            "{\"v\":1,\"id\":3,\"ok\":false,\"error\":{\"code\":\"overloaded\",\
             \"message\":\"the request queue is full\"}}"
        );
        let deadline = deadline_response(4, 1_024, 50_000);
        assert!(deadline.contains("\"code\":\"deadline_exceeded\""));
        assert!(deadline.contains("\"ops_completed\":1024"));
        assert!(deadline.contains("\"ops_requested\":50000"));
    }

    #[test]
    fn health_responses_embed_the_cache_health_struct() {
        let health = health_response(1, &CacheHealth::default(), 5, 2, 3, false);
        assert!(health.contains(
            "\"cache\":{\"io_errors\":0,\"evictions\":0,\
                                 \"lock_timeouts\":0,\"recovered_tmp\":0,\"compacted\":0,\
                                 \"degraded\":false}"
        ));
        assert!(health.contains("\"executed\":5"));
        assert!(health.contains("\"coalesced\":3"));
        assert!(health.contains("\"shutting_down\":false"));
    }
}
