//! The wire protocol: length-prefixed JSON frames, versioned requests, and
//! deterministic response rendering.
//!
//! A frame is a 4-byte little-endian payload length followed by that many
//! bytes of UTF-8 JSON; frames above [`MAX_FRAME_BYTES`] are rejected
//! before allocation. Every request carries `{"v": 1|2, "id": N, "type":
//! ...}` — the version is negotiated *per request*, so v1 and v2 traffic
//! interleave freely on one connection and v1 responses stay byte-identical
//! to the PR 9 wire format. See `docs/SERVICE.md` for the full
//! request/response taxonomy.
//!
//! Frame *reads* go through [`FrameReader`], which keeps persistent decode
//! state: a read timeout mid-frame (slow or dribbling sender) resumes where
//! it left off instead of discarding the bytes already read and re-parsing
//! the stream mid-frame. Only a timeout before byte 0 of a frame means
//! "idle connection".
//!
//! Response rendering is centralised here — the daemon's workers and the
//! `serve_client --batch` local path call the same [`ok_response`] (and the
//! v2 sweep path the same [`stream_point_response`]), so "daemon bytes
//! equal batch bytes for the same point" is a property of this module, not
//! of two renderers kept manually in sync. Simulation results travel as the
//! [`SimResult::fields`] name → IEEE-754-bit map, the crate's canonical
//! exact-equality contract.

use std::io::{self, Read, Write};

use serde::Value;
use wp_cpu::{Processor, SimResult};
use wp_experiments::matrix_cache::CacheHealth;
use wp_experiments::{MachineConfig, RunOptions, SimPlan, SimPoint};
use wp_workloads::{ProfileSpec, WorkloadSpec};

/// The baseline protocol version (the PR 9 wire format); v1 requests and
/// responses are byte-identical across protocol revisions.
pub const PROTOCOL_VERSION: u64 = 1;

/// Protocol version 2: everything in v1, plus `sweep` (whole-plan
/// submission with streamed per-point frames), `metrics`, and an optional
/// `priority` field on work-submitting requests.
pub const PROTOCOL_V2: u64 = 2;

/// Upper bound on one frame's payload, checked before allocating.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Upper bound on the unique points one `sweep` request may submit.
pub const MAX_SWEEP_POINTS: usize = 4096;

/// The default `priority` for requests that do not carry one (0 is most
/// urgent, [`MAX_PRIORITY`] least).
pub const DEFAULT_PRIORITY: u8 = 4;

/// The least-urgent admissible `priority` value.
pub const MAX_PRIORITY: u8 = 9;

/// Writes one length-prefixed frame.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` is a clean end-of-stream
/// (EOF before any length byte); EOF mid-frame is an error.
///
/// This one-shot form keeps **no** partial-read state across calls — it is
/// only correct on readers that never time out mid-frame (in-memory
/// buffers, blocking sockets without read timeouts). Connection handlers
/// and clients with read timeouts must hold a [`FrameReader`] instead: a
/// `WouldBlock`/`TimedOut` here after the first byte would lose the bytes
/// already consumed and desynchronize the stream.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    FrameReader::new().read(reader)
}

/// Resumable frame decoding: the persistent per-connection state that makes
/// read timeouts safe *mid-frame*.
///
/// [`FrameReader::read`] pulls bytes until one whole frame is decoded. When
/// the underlying reader fails with `WouldBlock`/`TimedOut`, the error is
/// surfaced but the bytes already consumed (part of the length prefix, part
/// of the payload) stay buffered — the next call resumes exactly where the
/// stream paused. [`FrameReader::mid_frame`] distinguishes "idle before a
/// frame" from "paused inside one", so callers can treat only byte-0
/// timeouts as an idle connection.
#[derive(Debug, Default)]
pub struct FrameReader {
    len: [u8; 4],
    len_got: usize,
    payload: Vec<u8>,
    payload_got: usize,
    decoding_payload: bool,
}

impl FrameReader {
    /// A reader positioned at a frame boundary.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if a frame is partially decoded — a timeout now is a paused
    /// sender, not an idle connection.
    pub fn mid_frame(&self) -> bool {
        self.len_got > 0 || self.decoding_payload
    }

    /// Reads (or resumes reading) one frame. `Ok(None)` is a clean
    /// end-of-stream at a frame boundary; EOF mid-frame is an error. On
    /// `Err` of any kind the decode state is preserved, so a retriable
    /// error (`WouldBlock`/`TimedOut`) resumes losslessly.
    pub fn read(&mut self, reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
        while !self.decoding_payload {
            let got = reader.read(&mut self.len[self.len_got..])?;
            if got == 0 {
                if self.len_got == 0 {
                    return Ok(None);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            self.len_got += got;
            if self.len_got == self.len.len() {
                let len = u32::from_le_bytes(self.len) as usize;
                if len > MAX_FRAME_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
                    ));
                }
                self.payload = vec![0u8; len];
                self.payload_got = 0;
                self.decoding_payload = true;
            }
        }
        while self.payload_got < self.payload.len() {
            let got = reader.read(&mut self.payload[self.payload_got..])?;
            if got == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            self.payload_got += got;
        }
        self.len_got = 0;
        self.decoding_payload = false;
        Ok(Some(std::mem::take(&mut self.payload)))
    }
}

/// The typed error taxonomy every non-`ok` response carries; see
/// `docs/SERVICE.md` for when each fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The admission queue (or a per-connection budget) is full; retry
    /// later, against the shed request only — nothing partially ran.
    Overloaded,
    /// The request's deadline expired; partial-progress counters ride
    /// along.
    DeadlineExceeded,
    /// The daemon is draining for shutdown and admits nothing new.
    ShuttingDown,
    /// The request frame did not parse or validate.
    BadRequest,
    /// The daemon failed internally (worker died mid-flight).
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A parsed, validated request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Simulate one point, bounded by a deadline.
    Simulate {
        /// The negotiated protocol version of this request (echoed in the
        /// response envelope).
        v: u64,
        /// Client-chosen request id, echoed in the response.
        id: u64,
        /// The full simulation configuration (boxed to keep the request
        /// enum's variants close in size).
        point: Box<SimPoint>,
        /// Deadline override in milliseconds (`None` = server default).
        deadline_ms: Option<u64>,
        /// Fairness-lane priority (0 most urgent, [`MAX_PRIORITY`] least);
        /// v1 requests always carry [`DEFAULT_PRIORITY`].
        priority: u8,
    },
    /// Simulate a whole plan and stream one frame per completed point
    /// (protocol v2 only).
    Sweep {
        /// Client-chosen request id, echoed in every stream frame.
        id: u64,
        /// The deduplicated points, in first-seen plan order; stream frame
        /// indices refer to positions in this list.
        points: Vec<SimPoint>,
        /// Points the plan requested, duplicates included.
        requested: usize,
        /// Deadline override in milliseconds for the whole sweep.
        deadline_ms: Option<u64>,
        /// Fairness-lane priority for the sweep job.
        priority: u8,
    },
    /// Report the daemon's health counters.
    Health {
        /// The negotiated protocol version of this request.
        v: u64,
        /// Client-chosen request id, echoed in the response.
        id: u64,
    },
    /// Export latency histograms, queue-depth series, and shed/coalesce
    /// counters (protocol v2 only).
    Metrics {
        /// Client-chosen request id, echoed in the response.
        id: u64,
    },
    /// Ask the daemon to drain and exit (the portable twin of SIGTERM).
    Shutdown {
        /// The negotiated protocol version of this request.
        v: u64,
        /// Client-chosen request id, echoed in the response.
        id: u64,
    },
}

/// Parses and validates one request payload. On error, returns the
/// request's best-effort protocol version (1 if the frame never declared a
/// supported one) and id (0 if the frame never got that far) alongside the
/// `bad_request` message, so the error response can be rendered in the
/// version the client spoke.
pub fn parse_request(payload: &[u8]) -> Result<Request, (u64, u64, String)> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| (PROTOCOL_VERSION, 0, "frame is not UTF-8".to_string()))?;
    let value = serde_json::from_str(text)
        .map_err(|e| (PROTOCOL_VERSION, 0, format!("invalid JSON: {e}")))?;
    let Some(fields) = value.as_object() else {
        return Err((
            PROTOCOL_VERSION,
            0,
            "request must be a JSON object".to_string(),
        ));
    };
    let id = value.get("id").and_then(Value::as_u64).unwrap_or(0);
    let v = match value.get("v").and_then(Value::as_u64) {
        Some(v @ (PROTOCOL_VERSION | PROTOCOL_V2)) => v,
        Some(v) => {
            return Err((
                PROTOCOL_VERSION,
                id,
                format!("unsupported protocol version `{v}`"),
            ))
        }
        None => return Err((PROTOCOL_VERSION, id, "missing field `v`".to_string())),
    };
    let fail = |message: String| Err((v, id, message));

    if value.get("id").and_then(Value::as_u64).is_none() {
        return fail("missing field `id`".to_string());
    }
    let Some(kind) = value.get("type").and_then(Value::as_str) else {
        return fail("missing field `type`".to_string());
    };

    // The v1 surface is frozen: its allowed types and fields are exactly
    // the PR 9 set, so v1 requests (and their error bytes) never change.
    let allowed: &[&str] = match (kind, v) {
        ("simulate", PROTOCOL_VERSION) => &[
            "v",
            "id",
            "type",
            "workload",
            "ops",
            "seed",
            "deadline_ms",
            "machine",
        ],
        ("simulate", _) => &[
            "v",
            "id",
            "type",
            "workload",
            "ops",
            "seed",
            "deadline_ms",
            "machine",
            "priority",
        ],
        ("health" | "shutdown", _) => &["v", "id", "type"],
        ("sweep", PROTOCOL_V2) => &[
            "v",
            "id",
            "type",
            "plan",
            "profile",
            "points",
            "ops",
            "seed",
            "deadline_ms",
            "priority",
        ],
        ("metrics", PROTOCOL_V2) => &["v", "id", "type"],
        (other, _) => return fail(format!("unknown request type `{other}`")),
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return fail(format!("unknown field `{key}`"));
        }
    }

    match kind {
        "health" => Ok(Request::Health { v, id }),
        "shutdown" => Ok(Request::Shutdown { v, id }),
        "metrics" => Ok(Request::Metrics { id }),
        "simulate" => {
            let Some(name) = value.get("workload").and_then(Value::as_str) else {
                return fail("missing field `workload`".to_string());
            };
            let Some(workload) = WorkloadSpec::parse(name) else {
                return fail(format!("unknown workload `{name}`"));
            };
            let Some(ops) = value.get("ops").and_then(Value::as_u64) else {
                return fail("missing field `ops`".to_string());
            };
            if ops == 0 {
                return fail("field `ops` must be positive".to_string());
            }
            let seed = parse_seed(&value)
                .map_err(|message| (v, id, message))?
                .unwrap_or(42);
            let deadline_ms = parse_deadline(&value).map_err(|message| (v, id, message))?;
            let priority = parse_priority(&value).map_err(|message| (v, id, message))?;
            let machine = match value.get("machine") {
                None => MachineConfig::baseline(),
                Some(machine) => parse_machine(machine).map_err(|message| (v, id, message))?,
            };
            let options = RunOptions::default().with_ops(ops as usize).with_seed(seed);
            let point = SimPoint::with_workload(workload, machine, options);
            Ok(Request::Simulate {
                v,
                id,
                point: Box::new(point),
                deadline_ms,
                priority,
            })
        }
        "sweep" => {
            let deadline_ms = parse_deadline(&value).map_err(|message| (v, id, message))?;
            let priority = parse_priority(&value).map_err(|message| (v, id, message))?;
            let seed = parse_seed(&value)
                .map_err(|message| (v, id, message))?
                .unwrap_or(42);
            let ops = match value.get("ops") {
                None => None,
                Some(ops) => match ops.as_u64() {
                    Some(0) | None => return fail("field `ops` must be positive".to_string()),
                    some => some,
                },
            };
            let shapes = ["plan", "profile", "points"]
                .iter()
                .filter(|key| value.get(key).is_some())
                .count();
            if shapes != 1 {
                return fail(
                    "exactly one of `plan`, `profile`, or `points` is required".to_string(),
                );
            }
            let plan = if let Some(plan) = value.get("plan") {
                let Some(name) = plan.as_str() else {
                    return fail("field `plan` must be a string".to_string());
                };
                if name != "run_all" {
                    return fail(format!("unknown plan `{name}`"));
                }
                let Some(ops) = ops else {
                    return fail("missing field `ops`".to_string());
                };
                let options = RunOptions::default().with_ops(ops as usize).with_seed(seed);
                wp_experiments::run_all_plan(&options)
            } else if let Some(profile) = value.get("profile") {
                if profile.as_object().is_none() {
                    return fail("field `profile` must be an object".to_string());
                }
                let text = render(profile.clone());
                let profile = match ProfileSpec::from_json(&text, "field `profile`") {
                    Ok(profile) => profile,
                    Err(e) => return fail(format!("{e}")),
                };
                let Some(ops) = ops else {
                    return fail("missing field `ops`".to_string());
                };
                let options = RunOptions::default().with_ops(ops as usize).with_seed(seed);
                wp_experiments::coverage::profile_plan(&profile, &options)
            } else {
                let Some(items) = value.get("points").and_then(Value::as_array) else {
                    return fail("field `points` must be an array".to_string());
                };
                if items.is_empty() {
                    return fail("field `points` must not be empty".to_string());
                }
                let mut plan = SimPlan::new();
                for item in items {
                    let point =
                        parse_sweep_point(item, ops, seed).map_err(|message| (v, id, message))?;
                    plan.add(point);
                }
                plan
            };
            let points = plan.unique_points();
            if points.is_empty() {
                return fail("the sweep plan contains no points".to_string());
            }
            if points.len() > MAX_SWEEP_POINTS {
                return fail(format!(
                    "sweep exceeds {MAX_SWEEP_POINTS} unique points ({} requested)",
                    points.len()
                ));
            }
            Ok(Request::Sweep {
                id,
                requested: plan.len(),
                points,
                deadline_ms,
                priority,
            })
        }
        _ => unreachable!("type was matched against the allowed list"),
    }
}

fn parse_seed(value: &Value) -> Result<Option<u64>, String> {
    match value.get("seed") {
        None => Ok(None),
        Some(seed) => match seed.as_u64() {
            Some(seed) => Ok(Some(seed)),
            None => Err("field `seed` must be an unsigned integer".to_string()),
        },
    }
}

fn parse_deadline(value: &Value) -> Result<Option<u64>, String> {
    match value.get("deadline_ms") {
        None => Ok(None),
        Some(deadline) => match deadline.as_u64() {
            Some(0) | None => Err("field `deadline_ms` must be positive".to_string()),
            Some(ms) => Ok(Some(ms)),
        },
    }
}

fn parse_priority(value: &Value) -> Result<u8, String> {
    match value.get("priority") {
        None => Ok(DEFAULT_PRIORITY),
        Some(priority) => match priority.as_u64() {
            Some(p) if p <= MAX_PRIORITY as u64 => Ok(p as u8),
            _ => Err(format!(
                "field `priority` must be an integer between 0 and {MAX_PRIORITY}"
            )),
        },
    }
}

/// Parses one element of a sweep's `points` array: the same shape as a
/// `simulate` request's point fields, with `ops`/`seed` falling back to the
/// sweep-level values.
fn parse_sweep_point(
    value: &Value,
    default_ops: Option<u64>,
    default_seed: u64,
) -> Result<SimPoint, String> {
    let Some(fields) = value.as_object() else {
        return Err("each element of `points` must be an object".to_string());
    };
    for (key, _) in fields {
        if !["workload", "ops", "seed", "machine"].contains(&key.as_str()) {
            return Err(format!("unknown field `{key}` in a sweep point"));
        }
    }
    let Some(name) = value.get("workload").and_then(Value::as_str) else {
        return Err("missing field `workload`".to_string());
    };
    let Some(workload) = WorkloadSpec::parse(name) else {
        return Err(format!("unknown workload `{name}`"));
    };
    let ops = match value.get("ops") {
        None => match default_ops {
            Some(ops) => ops,
            None => return Err("missing field `ops`".to_string()),
        },
        Some(ops) => match ops.as_u64() {
            Some(0) | None => return Err("field `ops` must be positive".to_string()),
            Some(ops) => ops,
        },
    };
    let seed = match value.get("seed") {
        None => default_seed,
        Some(seed) => seed
            .as_u64()
            .ok_or_else(|| "field `seed` must be an unsigned integer".to_string())?,
    };
    let machine = match value.get("machine") {
        None => MachineConfig::baseline(),
        Some(machine) => parse_machine(machine)?,
    };
    let options = RunOptions::default().with_ops(ops as usize).with_seed(seed);
    Ok(SimPoint::with_workload(workload, machine, options))
}

/// Parses the optional `machine` object — policy labels plus a d-cache
/// associativity override on the paper baseline — and validates the
/// result by constructing the processor it describes, so an invalid
/// configuration is a `bad_request` here and never a panic in a worker.
fn parse_machine(value: &Value) -> Result<MachineConfig, String> {
    let Some(fields) = value.as_object() else {
        return Err("field `machine` must be an object".to_string());
    };
    for (key, _) in fields {
        if !["dpolicy", "ipolicy", "assoc"].contains(&key.as_str()) {
            return Err(format!("unknown machine field `{key}`"));
        }
    }
    let mut machine = MachineConfig::baseline();
    if let Some(label) = value.get("dpolicy") {
        let Some(label) = label.as_str() else {
            return Err("machine field `dpolicy` must be a string".to_string());
        };
        let Some(dpolicy) = wp_cache::DCachePolicy::parse(label) else {
            return Err(format!("unknown d-cache policy `{label}`"));
        };
        machine = machine.with_dpolicy(dpolicy);
    }
    if let Some(label) = value.get("ipolicy") {
        let Some(label) = label.as_str() else {
            return Err("machine field `ipolicy` must be a string".to_string());
        };
        let Some(ipolicy) = wp_cache::ICachePolicy::parse(label) else {
            return Err(format!("unknown i-cache policy `{label}`"));
        };
        machine = machine.with_ipolicy(ipolicy);
    }
    if let Some(assoc) = value.get("assoc") {
        let Some(assoc) = assoc.as_u64() else {
            return Err("machine field `assoc` must be an unsigned integer".to_string());
        };
        machine = machine.with_l1d(machine.l1d.with_associativity(assoc as usize));
    }
    Processor::with_l1(
        machine.cpu,
        machine.l1d,
        machine.dpolicy,
        machine.l1i,
        machine.ipolicy,
    )
    .map_err(|e| format!("invalid machine configuration: {e}"))?;
    Ok(machine)
}

/// A hand-built [`Value`] serialised as-is.
struct Raw(Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn render(value: Value) -> String {
    serde_json::to_string(&Raw(value)).expect("JSON rendering is infallible")
}

fn envelope(v: u64, id: u64, ok: bool) -> Vec<(String, Value)> {
    vec![
        ("v".to_string(), Value::UInt(v)),
        ("id".to_string(), Value::UInt(id)),
        ("ok".to_string(), Value::Bool(ok)),
    ]
}

fn result_fields(result: &SimResult) -> Value {
    Value::Object(
        result
            .fields()
            .iter()
            .map(|&(name, bits)| (name.to_string(), Value::UInt(bits)))
            .collect(),
    )
}

/// Renders a successful simulation response: the [`SimResult::fields`]
/// name → u64-bits map, in the canonical field order. Deterministic down
/// to the byte for equal results — the property the soak harness diffs.
/// Always renders the v1 envelope; use [`ok_response_for`] to echo a
/// request's negotiated version.
pub fn ok_response(id: u64, result: &SimResult) -> String {
    ok_response_for(PROTOCOL_VERSION, id, result)
}

/// [`ok_response`] with an explicit envelope version.
pub fn ok_response_for(v: u64, id: u64, result: &SimResult) -> String {
    let mut response = envelope(v, id, true);
    response.push(("result".to_string(), result_fields(result)));
    render(Value::Object(response))
}

/// Renders a bare v1 acknowledgement (the `shutdown` response).
pub fn ack_response(id: u64) -> String {
    ack_response_for(PROTOCOL_VERSION, id)
}

/// [`ack_response`] with an explicit envelope version.
pub fn ack_response_for(v: u64, id: u64) -> String {
    render(Value::Object(envelope(v, id, true)))
}

/// Renders the `health` response: the same [`CacheHealth`] struct
/// `run_all --health-json` writes, under `health.cache`, plus the
/// daemon's singleflight counters and lifecycle state.
pub fn health_response(
    id: u64,
    cache: &CacheHealth,
    executed: u64,
    cache_hits: u64,
    coalesced: u64,
    shutting_down: bool,
) -> String {
    health_response_for(
        PROTOCOL_VERSION,
        id,
        cache,
        executed,
        cache_hits,
        coalesced,
        shutting_down,
    )
}

/// [`health_response`] with an explicit envelope version.
pub fn health_response_for(
    v: u64,
    id: u64,
    cache: &CacheHealth,
    executed: u64,
    cache_hits: u64,
    coalesced: u64,
    shutting_down: bool,
) -> String {
    let health = vec![
        ("cache".to_string(), serde::Serialize::to_value(cache)),
        ("degraded".to_string(), Value::Bool(cache.degraded)),
        ("executed".to_string(), Value::UInt(executed)),
        ("cache_hits".to_string(), Value::UInt(cache_hits)),
        ("coalesced".to_string(), Value::UInt(coalesced)),
        ("shutting_down".to_string(), Value::Bool(shutting_down)),
    ];
    let mut response = envelope(v, id, true);
    response.push(("health".to_string(), Value::Object(health)));
    render(Value::Object(response))
}

/// Renders a typed v1 error response.
pub fn error_response(id: u64, code: ErrorCode, message: &str) -> String {
    error_response_for(PROTOCOL_VERSION, id, code, message)
}

/// [`error_response`] with an explicit envelope version.
pub fn error_response_for(v: u64, id: u64, code: ErrorCode, message: &str) -> String {
    let error = vec![
        ("code".to_string(), Value::Str(code.as_str().to_string())),
        ("message".to_string(), Value::Str(message.to_string())),
    ];
    let mut response = envelope(v, id, false);
    response.push(("error".to_string(), Value::Object(error)));
    render(Value::Object(response))
}

/// Renders a v1 `deadline_exceeded` error with partial-progress counters.
pub fn deadline_response(id: u64, ops_completed: u64, ops_requested: u64) -> String {
    deadline_response_for(PROTOCOL_VERSION, id, ops_completed, ops_requested)
}

/// [`deadline_response`] with an explicit envelope version.
pub fn deadline_response_for(v: u64, id: u64, ops_completed: u64, ops_requested: u64) -> String {
    let error = vec![
        (
            "code".to_string(),
            Value::Str(ErrorCode::DeadlineExceeded.as_str().to_string()),
        ),
        (
            "message".to_string(),
            Value::Str(format!(
                "deadline exceeded after {ops_completed} of {ops_requested} ops"
            )),
        ),
        ("ops_completed".to_string(), Value::UInt(ops_completed)),
        ("ops_requested".to_string(), Value::UInt(ops_requested)),
    ];
    let mut response = envelope(v, id, false);
    response.push(("error".to_string(), Value::Object(error)));
    render(Value::Object(response))
}

/// Renders one v2 sweep stream frame: the result for plan point `index`
/// (a position in the sweep's deduplicated point list). The `result`
/// object is rendered by the same field map as [`ok_response`],
/// so a streamed point's payload is byte-comparable with the batch
/// rendering of the same result. Frames arrive in completion order; the
/// `index` is authoritative, not the arrival position.
pub fn stream_point_response(id: u64, index: usize, result: &SimResult) -> String {
    let mut response = envelope(PROTOCOL_V2, id, true);
    response.push(("stream".to_string(), Value::Str("point".to_string())));
    response.push(("index".to_string(), Value::UInt(index as u64)));
    response.push(("result".to_string(), result_fields(result)));
    render(Value::Object(response))
}

/// Renders the v2 sweep terminator: every point frame has been sent.
/// Deterministic for a given plan — it carries no warm/cold provenance, so
/// a cold sweep and a warm replay terminate with identical bytes.
pub fn sweep_summary_response(id: u64, requested: usize, points: usize, streamed: usize) -> String {
    let mut response = envelope(PROTOCOL_V2, id, true);
    response.push(("stream".to_string(), Value::Str("summary".to_string())));
    response.push(("requested".to_string(), Value::UInt(requested as u64)));
    response.push(("points".to_string(), Value::UInt(points as u64)));
    response.push(("streamed".to_string(), Value::UInt(streamed as u64)));
    response.push(("complete".to_string(), Value::Bool(true)));
    render(Value::Object(response))
}

/// Renders the v2 sweep terminator for a sweep whose deadline expired:
/// `streamed` of `total` point frames were delivered before cancellation.
pub fn sweep_deadline_response(id: u64, streamed: usize, total: usize) -> String {
    let error = vec![
        (
            "code".to_string(),
            Value::Str(ErrorCode::DeadlineExceeded.as_str().to_string()),
        ),
        (
            "message".to_string(),
            Value::Str(format!(
                "sweep deadline exceeded after {streamed} of {total} points"
            )),
        ),
        ("points_streamed".to_string(), Value::UInt(streamed as u64)),
        ("points_total".to_string(), Value::UInt(total as u64)),
    ];
    let mut response = envelope(PROTOCOL_V2, id, false);
    response.push(("error".to_string(), Value::Object(error)));
    render(Value::Object(response))
}

/// One latency histogram in a [`MetricsSnapshot`]: log2 buckets of
/// milliseconds (bucket 0 is `< 1 ms`, bucket `i` is `[2^(i-1), 2^i) ms`,
/// the last bucket collects everything slower).
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    /// Completed requests per log2-millisecond bucket.
    pub buckets: Vec<u64>,
    /// Total completed requests observed.
    pub count: u64,
    /// The slowest observed latency in milliseconds.
    pub max_ms: u64,
}

impl HistogramSnapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".to_string(), Value::UInt(self.count)),
            ("max_ms".to_string(), Value::UInt(self.max_ms)),
            (
                "buckets".to_string(),
                Value::Array(self.buckets.iter().map(|&c| Value::UInt(c)).collect()),
            ),
        ])
    }
}

/// Everything the v2 `metrics` response reports; the daemon fills one from
/// its live counters and [`metrics_response`] renders it deterministically.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
    /// Simulations executed (the singleflight counter).
    pub executed: u64,
    /// Led flights and warm sweep points served from the matrix cache.
    pub cache_hits: u64,
    /// Joins that coalesced onto an in-flight point.
    pub coalesced: u64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
    /// Followers that re-led a fresh flight after inheriting a shorter
    /// deadline's cancellation (the deadline-inheritance fix at work).
    pub releads: u64,
    /// Fairness lanes currently holding queued jobs.
    pub lanes_active: u64,
    /// Jobs currently queued across all lanes.
    pub jobs_queued: u64,
    /// The global queued-job cap (`--queue-depth`).
    pub queue_cap: u64,
    /// The per-lane queued-job cap (`--lane-depth`).
    pub lane_cap: u64,
    /// Sweep jobs admitted.
    pub sweeps_started: u64,
    /// Sweeps that streamed every point.
    pub sweeps_completed: u64,
    /// Sweeps cancelled by deadline or shutdown.
    pub sweeps_cancelled: u64,
    /// Point frames streamed by sweeps.
    pub sweep_points_streamed: u64,
    /// Gang-scheduled engine passes run on behalf of sweeps.
    pub engine_passes: u64,
    /// `(ms since start, jobs queued)` samples, oldest first — recorded at
    /// every admission and dispatch, bounded to the most recent window.
    pub depth_series: Vec<(u64, u64)>,
    /// Latency histogram for `simulate` requests.
    pub point_latency: HistogramSnapshot,
    /// Latency histogram for `sweep` requests (admission to terminator).
    pub sweep_latency: HistogramSnapshot,
}

/// Renders the v2 `metrics` response.
pub fn metrics_response(id: u64, snapshot: &MetricsSnapshot) -> String {
    let lanes = Value::Object(vec![
        ("active".to_string(), Value::UInt(snapshot.lanes_active)),
        ("queued".to_string(), Value::UInt(snapshot.jobs_queued)),
        ("queue_cap".to_string(), Value::UInt(snapshot.queue_cap)),
        ("lane_cap".to_string(), Value::UInt(snapshot.lane_cap)),
    ]);
    let sweeps = Value::Object(vec![
        ("started".to_string(), Value::UInt(snapshot.sweeps_started)),
        (
            "completed".to_string(),
            Value::UInt(snapshot.sweeps_completed),
        ),
        (
            "cancelled".to_string(),
            Value::UInt(snapshot.sweeps_cancelled),
        ),
        (
            "points_streamed".to_string(),
            Value::UInt(snapshot.sweep_points_streamed),
        ),
        (
            "engine_passes".to_string(),
            Value::UInt(snapshot.engine_passes),
        ),
    ]);
    let depth_series = Value::Array(
        snapshot
            .depth_series
            .iter()
            .map(|&(ms, depth)| Value::Array(vec![Value::UInt(ms), Value::UInt(depth)]))
            .collect(),
    );
    let latency = Value::Object(vec![
        ("point".to_string(), snapshot.point_latency.to_value()),
        ("sweep".to_string(), snapshot.sweep_latency.to_value()),
    ]);
    let metrics = vec![
        ("uptime_ms".to_string(), Value::UInt(snapshot.uptime_ms)),
        ("executed".to_string(), Value::UInt(snapshot.executed)),
        ("cache_hits".to_string(), Value::UInt(snapshot.cache_hits)),
        ("coalesced".to_string(), Value::UInt(snapshot.coalesced)),
        ("shed".to_string(), Value::UInt(snapshot.shed)),
        ("releads".to_string(), Value::UInt(snapshot.releads)),
        ("lanes".to_string(), lanes),
        ("sweeps".to_string(), sweeps),
        ("queue_depth_series".to_string(), depth_series),
        ("latency_ms".to_string(), latency),
    ];
    let mut response = envelope(PROTOCOL_V2, id, true);
    response.push(("metrics".to_string(), Value::Object(metrics)));
    render(Value::Object(response))
}

/// Builds the `simulate` request JSON for `point` — the client-side twin
/// of [`parse_request`], shared by `serve_client` and the test harnesses.
/// Only baseline-derived machines expressible in the protocol's `machine`
/// object (d-policy, i-policy, d-cache associativity) round-trip; that is
/// exactly the shape `serve_client` can ask for.
pub fn simulate_request(id: u64, point: &SimPoint, deadline_ms: Option<u64>) -> String {
    simulate_request_v(PROTOCOL_VERSION, id, point, deadline_ms, None)
}

/// [`simulate_request`] with an explicit protocol version and an optional
/// `priority` field (v2 only; passing one with `v = 1` would be rejected by
/// the frozen v1 parser, so the builder only emits it for v2 requests).
pub fn simulate_request_v(
    v: u64,
    id: u64,
    point: &SimPoint,
    deadline_ms: Option<u64>,
    priority: Option<u8>,
) -> String {
    let mut request = vec![
        ("v".to_string(), Value::UInt(v)),
        ("id".to_string(), Value::UInt(id)),
        ("type".to_string(), Value::Str("simulate".to_string())),
        ("workload".to_string(), Value::Str(point.workload.label())),
        ("ops".to_string(), Value::UInt(point.options.ops as u64)),
        ("seed".to_string(), Value::UInt(point.options.seed)),
    ];
    if let Some(ms) = deadline_ms {
        request.push(("deadline_ms".to_string(), Value::UInt(ms)));
    }
    if v != PROTOCOL_VERSION {
        if let Some(priority) = priority {
            request.push(("priority".to_string(), Value::UInt(priority as u64)));
        }
    }
    let machine = machine_fields(point);
    if !machine.is_empty() {
        request.push(("machine".to_string(), Value::Object(machine)));
    }
    render(Value::Object(request))
}

/// Renders the protocol `machine` object for `point` as deltas from the
/// paper baseline (empty = baseline machine).
fn machine_fields(point: &SimPoint) -> Vec<(String, Value)> {
    let baseline = MachineConfig::baseline();
    let mut machine = Vec::new();
    if point.machine.dpolicy != baseline.dpolicy {
        machine.push((
            "dpolicy".to_string(),
            Value::Str(point.machine.dpolicy.label().to_string()),
        ));
    }
    if point.machine.ipolicy != baseline.ipolicy {
        machine.push((
            "ipolicy".to_string(),
            Value::Str(point.machine.ipolicy.label().to_string()),
        ));
    }
    if point.machine.l1d.associativity != baseline.l1d.associativity {
        machine.push((
            "assoc".to_string(),
            Value::UInt(point.machine.l1d.associativity as u64),
        ));
    }
    machine
}

/// The plan shapes a v2 `sweep` request can submit; the request-builder
/// twin of the `plan`/`profile`/`points` alternatives in [`parse_request`].
#[derive(Debug, Clone)]
pub enum SweepPlanSpec {
    /// The named built-in full plan (`"plan": "run_all"`): all 11 paper
    /// artefacts, deduplicated server-side.
    RunAll,
    /// An inline `--profile` spec (`"profile": {...}`).
    Profile(ProfileSpec),
    /// An explicit point list (`"points": [...]`). Only baseline-derived
    /// machines expressible in the protocol round-trip, as for
    /// [`simulate_request`].
    Points(Vec<SimPoint>),
}

/// Builds the v2 `sweep` request JSON. `ops` and `seed` are the sweep-level
/// defaults applied to plan/profile points (explicit points carry their
/// own).
pub fn sweep_request(
    id: u64,
    spec: &SweepPlanSpec,
    ops: u64,
    seed: u64,
    deadline_ms: Option<u64>,
    priority: Option<u8>,
) -> String {
    let mut request = vec![
        ("v".to_string(), Value::UInt(PROTOCOL_V2)),
        ("id".to_string(), Value::UInt(id)),
        ("type".to_string(), Value::Str("sweep".to_string())),
    ];
    match spec {
        SweepPlanSpec::RunAll => {
            request.push(("plan".to_string(), Value::Str("run_all".to_string())));
        }
        SweepPlanSpec::Profile(profile) => {
            request.push(("profile".to_string(), serde::Serialize::to_value(profile)));
        }
        SweepPlanSpec::Points(points) => {
            let items = points
                .iter()
                .map(|point| {
                    let mut fields = vec![
                        ("workload".to_string(), Value::Str(point.workload.label())),
                        ("ops".to_string(), Value::UInt(point.options.ops as u64)),
                        ("seed".to_string(), Value::UInt(point.options.seed)),
                    ];
                    let machine = machine_fields(point);
                    if !machine.is_empty() {
                        fields.push(("machine".to_string(), Value::Object(machine)));
                    }
                    Value::Object(fields)
                })
                .collect();
            request.push(("points".to_string(), Value::Array(items)));
        }
    }
    request.push(("ops".to_string(), Value::UInt(ops)));
    request.push(("seed".to_string(), Value::UInt(seed)));
    if let Some(ms) = deadline_ms {
        request.push(("deadline_ms".to_string(), Value::UInt(ms)));
    }
    if let Some(priority) = priority {
        request.push(("priority".to_string(), Value::UInt(priority as u64)));
    }
    render(Value::Object(request))
}

/// Builds the v2 `metrics` request JSON.
pub fn metrics_request(id: u64) -> String {
    render(Value::Object(vec![
        ("v".to_string(), Value::UInt(PROTOCOL_V2)),
        ("id".to_string(), Value::UInt(id)),
        ("type".to_string(), Value::Str("metrics".to_string())),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wp_cache::DCachePolicy;
    use wp_workloads::Benchmark;

    fn parse(json: &str) -> Result<Request, (u64, u64, String)> {
        parse_request(json.as_bytes())
    }

    /// A reader that yields its script one chunk at a time, interleaving a
    /// `WouldBlock` timeout after every chunk — a deterministic dribbling
    /// sender.
    struct Dribble {
        chunks: Vec<Vec<u8>>,
        next: usize,
        blocked: bool,
    }

    impl Dribble {
        fn new(wire: &[u8], chunk: usize) -> Self {
            Self {
                chunks: wire.chunks(chunk).map(<[u8]>::to_vec).collect(),
                next: 0,
                blocked: false,
            }
        }
    }

    impl io::Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.blocked {
                self.blocked = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "dribble pause"));
            }
            self.blocked = false;
            let Some(chunk) = self.chunks.get(self.next) else {
                return Ok(0);
            };
            let take = chunk.len().min(buf.len());
            buf[..take].copy_from_slice(&chunk[..take]);
            if take == chunk.len() {
                self.next += 1;
            } else {
                self.chunks[self.next].drain(..take);
            }
            Ok(take)
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"v\":1}").expect("write");
        write_frame(&mut wire, b"").expect("write");
        let mut reader = wire.as_slice();
        assert_eq!(
            read_frame(&mut reader).expect("read"),
            Some(b"{\"v\":1}".to_vec())
        );
        assert_eq!(read_frame(&mut reader).expect("read"), Some(Vec::new()));
        assert_eq!(read_frame(&mut reader).expect("read"), None);
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        assert!(read_frame(&mut wire.as_slice()).is_err());
        let mut truncated = Vec::new();
        truncated.extend_from_slice(&8u32.to_le_bytes());
        truncated.extend_from_slice(b"abc");
        assert!(read_frame(&mut truncated.as_slice()).is_err());
    }

    #[test]
    fn frame_reader_resumes_across_mid_frame_timeouts() {
        // Two frames dribbled one byte at a time with a WouldBlock between
        // every byte: the one-shot read_frame would lose state at the first
        // timeout, the resumable reader decodes both frames losslessly.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"v\":1,\"id\":7}").expect("write");
        write_frame(&mut wire, b"{\"v\":2}").expect("write");
        let mut dribble = Dribble::new(&wire, 1);
        let mut frames = FrameReader::new();
        let mut decoded = Vec::new();
        let mut timeouts = 0;
        loop {
            match frames.read(&mut dribble) {
                Ok(Some(frame)) => decoded.push(frame),
                Ok(None) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => timeouts += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], b"{\"v\":1,\"id\":7}".to_vec());
        assert_eq!(decoded[1], b"{\"v\":2}".to_vec());
        assert!(timeouts > wire.len() / 2, "every byte paused the stream");
        assert!(!frames.mid_frame(), "reader parks at a frame boundary");
    }

    #[test]
    fn mid_frame_flag_distinguishes_idle_from_paused() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{}").expect("write");
        let mut frames = FrameReader::new();
        assert!(!frames.mid_frame(), "fresh reader is at a boundary");
        // Feed exactly one length byte, then stall.
        let mut partial = Dribble::new(&wire[..1], 1);
        loop {
            match frames.read(&mut partial) {
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                other => panic!("expected a mid-frame EOF, got {other:?}"),
            }
        }
        assert!(frames.mid_frame(), "one length byte in = mid-frame");
    }

    #[test]
    fn simulate_requests_round_trip_through_the_builder() {
        let point = SimPoint::new(
            Benchmark::Gcc,
            MachineConfig::baseline().with_dpolicy(DCachePolicy::SelDmWayPredict),
            RunOptions::quick().with_ops(4_000).with_seed(7),
        );
        let json = simulate_request(3, &point, Some(500));
        let Request::Simulate {
            v,
            id,
            point: parsed,
            deadline_ms,
            priority,
        } = parse(&json).expect("round trip")
        else {
            panic!("a simulate request parses as simulate");
        };
        assert_eq!(v, PROTOCOL_VERSION);
        assert_eq!(id, 3);
        assert_eq!(deadline_ms, Some(500));
        assert_eq!(priority, DEFAULT_PRIORITY, "v1 has no priority field");
        assert_eq!(*parsed, point);

        let json = simulate_request_v(PROTOCOL_V2, 4, &point, None, Some(1));
        let Request::Simulate { v, priority, .. } = parse(&json).expect("v2 round trip") else {
            panic!("a v2 simulate request parses as simulate");
        };
        assert_eq!(v, PROTOCOL_V2);
        assert_eq!(priority, 1);
    }

    #[test]
    fn sweep_requests_round_trip_through_the_builder() {
        let a = SimPoint::new(
            Benchmark::Gcc,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(2_000).with_seed(3),
        );
        let b = SimPoint::new(
            Benchmark::Li,
            MachineConfig::baseline().with_dpolicy(DCachePolicy::SelDmWayPredict),
            RunOptions::quick().with_ops(2_000).with_seed(3),
        );
        let json = sweep_request(
            11,
            &SweepPlanSpec::Points(vec![a.clone(), b.clone(), a.clone()]),
            2_000,
            3,
            Some(10_000),
            Some(6),
        );
        let Request::Sweep {
            id,
            points,
            requested,
            deadline_ms,
            priority,
        } = parse(&json).expect("sweep round trip")
        else {
            panic!("a sweep request parses as sweep");
        };
        assert_eq!(id, 11);
        assert_eq!(requested, 3, "duplicates count toward `requested`");
        assert_eq!(points, vec![a, b], "unique points in first-seen order");
        assert_eq!(deadline_ms, Some(10_000));
        assert_eq!(priority, 6);
    }

    #[test]
    fn named_plan_sweeps_expand_to_the_run_all_plan() {
        let json = sweep_request(1, &SweepPlanSpec::RunAll, 4_000, 42, None, None);
        let Request::Sweep {
            points, requested, ..
        } = parse(&json).expect("run_all sweep parses")
        else {
            panic!("a plan sweep parses as sweep");
        };
        let options = RunOptions::default().with_ops(4_000).with_seed(42);
        let plan = wp_experiments::run_all_plan(&options);
        assert_eq!(requested, plan.len());
        assert_eq!(points, plan.unique_points(), "253 deduplicated points");
    }

    #[test]
    fn profile_sweeps_expand_through_the_profile_planner() {
        let profile = ProfileSpec::builtin(wp_workloads::ProfileTier::Expected);
        let json = sweep_request(
            2,
            &SweepPlanSpec::Profile(profile.clone()),
            2_000,
            7,
            None,
            None,
        );
        let Request::Sweep { points, .. } = parse(&json).expect("profile sweep parses") else {
            panic!("a profile sweep parses as sweep");
        };
        let options = RunOptions::default().with_ops(2_000).with_seed(7);
        let plan = wp_experiments::coverage::profile_plan(&profile, &options);
        assert_eq!(points, plan.unique_points());
    }

    #[test]
    fn sweep_and_v2_shape_violations_are_rejected_with_the_offending_detail() {
        let cases = [
            (
                "{\"v\":1,\"id\":1,\"type\":\"sweep\",\"plan\":\"run_all\",\"ops\":100}",
                "unknown request type `sweep`",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"metrics\"}",
                "unknown request type `metrics`",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"workload\":\"gcc\",\"ops\":10,\
                 \"priority\":1}",
                "unknown field `priority`",
            ),
            (
                "{\"v\":2,\"id\":1,\"type\":\"sweep\",\"ops\":100}",
                "exactly one of `plan`, `profile`, or `points` is required",
            ),
            (
                "{\"v\":2,\"id\":1,\"type\":\"sweep\",\"plan\":\"run_all\",\"points\":[],\
                 \"ops\":100}",
                "exactly one of `plan`, `profile`, or `points` is required",
            ),
            (
                "{\"v\":2,\"id\":1,\"type\":\"sweep\",\"plan\":\"nonesuch\",\"ops\":100}",
                "unknown plan `nonesuch`",
            ),
            (
                "{\"v\":2,\"id\":1,\"type\":\"sweep\",\"plan\":\"run_all\"}",
                "missing field `ops`",
            ),
            (
                "{\"v\":2,\"id\":1,\"type\":\"sweep\",\"points\":[],\"ops\":100}",
                "field `points` must not be empty",
            ),
            (
                "{\"v\":2,\"id\":1,\"type\":\"sweep\",\"points\":[{\"workload\":\"gcc\",\
                 \"frobnicate\":1}],\"ops\":100}",
                "unknown field `frobnicate` in a sweep point",
            ),
            (
                "{\"v\":2,\"id\":1,\"type\":\"sweep\",\"points\":[{\"ops\":10}],\"ops\":100}",
                "missing field `workload`",
            ),
            (
                "{\"v\":2,\"id\":1,\"type\":\"simulate\",\"workload\":\"gcc\",\"ops\":10,\
                 \"priority\":10}",
                "field `priority` must be an integer between 0 and 9",
            ),
            (
                "{\"v\":2,\"id\":1,\"type\":\"sweep\",\"profile\":\"expected\",\"ops\":100}",
                "field `profile` must be an object",
            ),
        ];
        for (json, message) in cases {
            let (_, _, error) = parse(json).expect_err(json);
            assert_eq!(error, message, "for request {json}");
        }
    }

    #[test]
    fn bad_request_errors_echo_the_negotiated_version() {
        let (v, id, _) = parse("{\"v\":2,\"id\":8,\"type\":\"frobnicate\"}")
            .expect_err("unknown type must not parse");
        assert_eq!(v, PROTOCOL_V2, "v2 frames get v2 error envelopes");
        assert_eq!(id, 8);
        let (v, _, error) =
            parse("{\"v\":3,\"id\":1,\"type\":\"health\"}").expect_err("v3 must not parse");
        assert_eq!(v, PROTOCOL_VERSION, "unknown versions fall back to v1");
        assert_eq!(error, "unsupported protocol version `3`");
    }

    #[test]
    fn version_and_shape_violations_are_rejected_with_the_offending_detail() {
        let cases = [
            ("{\"id\":1,\"type\":\"health\"}", "missing field `v`"),
            (
                "{\"v\":3,\"id\":1,\"type\":\"health\"}",
                "unsupported protocol version `3`",
            ),
            ("{\"v\":1,\"type\":\"health\"}", "missing field `id`"),
            ("{\"v\":1,\"id\":1}", "missing field `type`"),
            (
                "{\"v\":1,\"id\":1,\"type\":\"frobnicate\"}",
                "unknown request type `frobnicate`",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"health\",\"extra\":0}",
                "unknown field `extra`",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"ops\":100}",
                "missing field `workload`",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"workload\":\"nonesuch\",\"ops\":100}",
                "unknown workload `nonesuch`",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"workload\":\"gcc\"}",
                "missing field `ops`",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"workload\":\"gcc\",\"ops\":0}",
                "field `ops` must be positive",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"workload\":\"gcc\",\"ops\":10,\
                 \"deadline_ms\":0}",
                "field `deadline_ms` must be positive",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"workload\":\"gcc\",\"ops\":10,\
                 \"machine\":{\"dpolicy\":\"nonesuch\"}}",
                "unknown d-cache policy `nonesuch`",
            ),
            (
                "{\"v\":1,\"id\":1,\"type\":\"simulate\",\"workload\":\"gcc\",\"ops\":10,\
                 \"machine\":{\"frobnicate\":1}}",
                "unknown machine field `frobnicate`",
            ),
        ];
        for (json, message) in cases {
            let (_, _, error) = parse(json).expect_err(json);
            assert_eq!(error, message, "for request {json}");
        }
    }

    #[test]
    fn invalid_machine_geometry_is_bad_request_not_a_panic() {
        // Associativity 3 is not a power of two: the validating processor
        // construction catches it at the protocol boundary.
        let json = "{\"v\":1,\"id\":9,\"type\":\"simulate\",\"workload\":\"gcc\",\"ops\":10,\
                    \"machine\":{\"assoc\":3}}";
        let (_, id, error) = parse(json).expect_err("invalid geometry must not parse");
        assert_eq!(id, 9);
        assert!(
            error.starts_with("invalid machine configuration: "),
            "got: {error}"
        );
    }

    #[test]
    fn responses_are_deterministic_and_tagged() {
        let point = SimPoint::new(
            Benchmark::Li,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(2_000),
        );
        let result =
            wp_experiments::simulate_workload(&point.workload, &point.machine, &point.options);
        let a = ok_response(7, &result);
        let b = ok_response(7, &result);
        assert_eq!(a, b, "equal results render byte-identically");
        assert!(a.starts_with("{\"v\":1,\"id\":7,\"ok\":true,\"result\":{"));
        assert!(a.contains("\"cycles\":"));

        let error = error_response(3, ErrorCode::Overloaded, "the request queue is full");
        assert_eq!(
            error,
            "{\"v\":1,\"id\":3,\"ok\":false,\"error\":{\"code\":\"overloaded\",\
             \"message\":\"the request queue is full\"}}"
        );
        let deadline = deadline_response(4, 1_024, 50_000);
        assert!(deadline.contains("\"code\":\"deadline_exceeded\""));
        assert!(deadline.contains("\"ops_completed\":1024"));
        assert!(deadline.contains("\"ops_requested\":50000"));
    }

    #[test]
    fn stream_frames_share_the_batch_result_rendering() {
        let point = SimPoint::new(
            Benchmark::Swim,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(2_000),
        );
        let result =
            wp_experiments::simulate_workload(&point.workload, &point.machine, &point.options);
        let batch = ok_response(1, &result);
        let stream = stream_point_response(9, 41, &result);
        let result_of = |frame: &str| {
            let at = frame.find("\"result\":").expect("result field");
            frame[at..].to_string()
        };
        assert_eq!(
            result_of(&batch),
            result_of(&stream),
            "the streamed result object is byte-identical to the batch rendering"
        );
        assert!(
            stream.starts_with("{\"v\":2,\"id\":9,\"ok\":true,\"stream\":\"point\",\"index\":41,")
        );

        let summary = sweep_summary_response(9, 286, 253, 253);
        assert_eq!(
            summary,
            "{\"v\":2,\"id\":9,\"ok\":true,\"stream\":\"summary\",\"requested\":286,\
             \"points\":253,\"streamed\":253,\"complete\":true}"
        );
        let cancelled = sweep_deadline_response(9, 41, 253);
        assert!(cancelled.starts_with("{\"v\":2,\"id\":9,\"ok\":false,\"error\":{"));
        assert!(
            cancelled.contains("\"message\":\"sweep deadline exceeded after 41 of 253 points\"")
        );
        assert!(cancelled.contains("\"points_streamed\":41"));
        assert!(cancelled.contains("\"points_total\":253"));
    }

    #[test]
    fn metrics_responses_render_every_section() {
        let snapshot = MetricsSnapshot {
            uptime_ms: 1_500,
            executed: 3,
            shed: 1,
            releads: 2,
            queue_cap: 128,
            lane_cap: 32,
            depth_series: vec![(10, 1), (20, 0)],
            point_latency: HistogramSnapshot {
                buckets: vec![1, 0, 2],
                count: 3,
                max_ms: 4,
            },
            ..MetricsSnapshot::default()
        };
        let rendered = metrics_response(5, &snapshot);
        assert!(rendered.starts_with("{\"v\":2,\"id\":5,\"ok\":true,\"metrics\":{"));
        assert!(rendered.contains("\"uptime_ms\":1500"));
        assert!(rendered.contains("\"releads\":2"));
        assert!(rendered
            .contains("\"lanes\":{\"active\":0,\"queued\":0,\"queue_cap\":128,\"lane_cap\":32}"));
        assert!(rendered.contains("\"queue_depth_series\":[[10,1],[20,0]]"));
        assert!(rendered.contains("\"point\":{\"count\":3,\"max_ms\":4,\"buckets\":[1,0,2]}"));
    }

    #[test]
    fn health_responses_embed_the_cache_health_struct() {
        let health = health_response(1, &CacheHealth::default(), 5, 2, 3, false);
        assert!(health.contains(
            "\"cache\":{\"io_errors\":0,\"evictions\":0,\
                                 \"lock_timeouts\":0,\"recovered_tmp\":0,\"compacted\":0,\
                                 \"degraded\":false}"
        ));
        assert!(health.contains("\"executed\":5"));
        assert!(health.contains("\"coalesced\":3"));
        assert!(health.contains("\"shutting_down\":false"));
    }
}
