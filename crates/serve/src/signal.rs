//! Minimal async-signal-safe SIGTERM/SIGINT latching.
//!
//! The daemon's contract is that `kill -TERM` (or ctrl-c) drains in-flight
//! work and exits 0. Registering a handler needs `libc::signal`, which the
//! workspace does not vendor — so this module carries the one `unsafe`
//! block in the crate, declared against the platform C library directly.
//! The handler does the only async-signal-safe thing possible: it stores a
//! relaxed atomic flag the main loop polls.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Installs the latching handler for SIGTERM and SIGINT. Call once at
/// daemon startup; a no-op off Unix.
pub fn install() {
    #[cfg(unix)]
    unsafe {
        let handler = on_signal as *const () as usize;
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
    #[cfg(not(unix))]
    {
        let _ = on_signal as extern "C" fn(i32);
        let _ = (SIGINT, SIGTERM);
    }
}

/// True once SIGTERM or SIGINT has been delivered.
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Test hook: pretends a signal arrived.
#[doc(hidden)]
pub fn request_for_tests() {
    REQUESTED.store(true, Ordering::SeqCst);
}
