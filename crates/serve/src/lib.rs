//! Sweep-as-a-service: a crash-tolerant daemon over the simulation engine.
//!
//! The batch tools (`run_all`, `trace_replay`) pay full simulation cost per
//! invocation; `wp-serve` keeps a warm [`wp_experiments::MatrixCache`] and a
//! fixed worker pool behind a versioned length-prefixed JSON protocol
//! ([`protocol`]), so interactive sweeps get cached points in microseconds
//! and fresh points exactly once — with four robustness layers the batch
//! path never needed:
//!
//! - **Admission control** ([`server`]): a bounded queue that sheds with a
//!   typed `overloaded` error instead of stalling, plus a per-connection
//!   request budget.
//! - **Deadlines** ([`wp_experiments::CancelToken`]): every request carries
//!   (or inherits) a deadline; simulations cancel cooperatively at op-block
//!   granularity and report partial progress.
//! - **Cross-request singleflight** ([`wp_experiments::PointService`]):
//!   identical concurrent points execute once; every caller gets the same
//!   bytes.
//! - **Graceful degradation + crash idempotence**: the matrix cache's
//!   circuit breaker turns storage faults into compute-only service, and a
//!   `kill -9` + restart serves warm results bit-identical to the cold
//!   batch path.
//!
//! `docs/SERVICE.md` documents the wire protocol and the operational
//! runbook; the `serve` and `serve_client` binaries are thin CLIs over
//! [`server`] and [`client`].

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod signal;

pub use client::Client;
pub use server::{start, Listen, RunningServer, ServerConfig};
