//! The daemon: listener, fairness-lane admission, worker pool, and
//! lifecycle.
//!
//! Request flow (`docs/SERVICE.md` has the operator's view):
//!
//! 1. The accept loop (non-blocking, shutdown-aware) hands each connection
//!    to its own handler thread. Every connection owns a **fairness lane**;
//!    admission round-robins across lanes so one chatty connection (or one
//!    streaming sweep) cannot starve the rest.
//! 2. A handler parses one frame at a time through a persistent
//!    [`protocol::FrameReader`], so a read timeout mid-frame pauses the
//!    decode instead of discarding the bytes already received — only a
//!    timeout *between* frames counts as idleness.
//! 3. A `simulate` request joins the [`PointService`] flight table *before*
//!    touching the queue: followers of an in-flight point consume **no**
//!    queue slot — a stampede of N identical requests occupies one slot and
//!    executes one simulation. A follower whose flight is cancelled or shed
//!    under the *leader's* deadline re-joins and leads a fresh flight while
//!    its own deadline still has budget.
//! 4. Flight leaders and sweep jobs are admitted through the bounded lane
//!    scheduler. A full queue (global or per-lane) sheds immediately with
//!    `overloaded` (a dropped leader ticket wakes any followers with the
//!    same outcome); a closed queue answers `shutting_down`.
//! 5. A fixed pool of workers pops jobs lane-by-lane and executes them
//!    through the shared service. A `sweep` job runs the whole remaining
//!    plan through one gang-scheduled [`SimEngine`] pass, streaming each
//!    completed point back to the handler's inbox; the scheduler reserves
//!    at least one worker for point requests while sweeps run.
//! 6. Shutdown (SIGTERM/SIGINT, or a `shutdown` request) stops the accept
//!    loop, closes the queue, drains the workers, and lets in-flight
//!    responses finish; new requests get `shutting_down`.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wp_cpu::SimResult;
use wp_experiments::service::{FlightOutcome, Join, PointService, SweepReport};
use wp_experiments::{CancelToken, LeaderTicket, SimEngine, SimPoint};

use crate::protocol::{self, ErrorCode, HistogramSnapshot, MetricsSnapshot, Request};

/// How often blocking loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// How long past a request's own deadline a handler keeps waiting for the
/// flight (or sweep) to publish its terminal outcome, so the response can
/// carry real partial-progress counters instead of zeros. Cancellation is
/// cooperative at op-block granularity, so workers land well inside this.
const WAIT_GRACE: Duration = Duration::from_secs(2);

/// How long shutdown waits for connection handlers to finish responding.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// Log2-millisecond latency buckets (bucket 0 is `< 1 ms`, the last bucket
/// collects everything from ~64 s up).
const LATENCY_BUCKETS: usize = 17;

/// How many `(uptime_ms, queued)` samples the queue-depth series keeps.
const DEPTH_SERIES_CAP: usize = 64;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP address like `127.0.0.1:0` (port 0 picks a free port).
    Tcp(String),
    /// A Unix domain socket path.
    Unix(PathBuf),
}

impl Listen {
    /// Parses a `--listen` value: anything containing `/` is a Unix socket
    /// path, everything else a TCP address.
    pub fn parse(spec: &str) -> Listen {
        if spec.contains('/') {
            Listen::Unix(PathBuf::from(spec))
        } else {
            Listen::Tcp(spec.to_string())
        }
    }
}

/// Everything the daemon needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub listen: Listen,
    /// Worker threads executing simulations.
    pub workers: usize,
    /// Global admission cap: jobs queued across every lane beyond this shed
    /// with `overloaded`.
    pub queue_depth: usize,
    /// Per-lane admission cap: jobs one connection may have queued.
    pub lane_depth: usize,
    /// Threads one sweep's gang-scheduled engine pass may use.
    pub sweep_threads: usize,
    /// Deadline for requests that do not carry their own, in milliseconds.
    pub default_deadline_ms: u64,
    /// Requests one connection may issue before it is shed and closed.
    pub max_conn_requests: u64,
    /// The shared singleflight executor (and its optional matrix cache).
    pub service: PointService,
}

impl ServerConfig {
    /// A config with the documented defaults: every core a worker, a
    /// 128-deep queue with 32-deep lanes, a 30-second default deadline, and
    /// a 1024-request connection budget.
    pub fn new(listen: Listen, service: PointService) -> Self {
        Self {
            listen,
            workers: wp_experiments::engine::available_threads(),
            queue_depth: 128,
            lane_depth: 32,
            sweep_threads: wp_experiments::engine::available_threads(),
            default_deadline_ms: 30_000,
            max_conn_requests: 1024,
            service,
        }
    }
}

/// One admitted point job: a flight leadership plus its cancel token.
struct PointJob {
    ticket: LeaderTicket,
    token: CancelToken,
    priority: u8,
}

/// One admitted sweep job: the remaining plan plus the handler's inbox.
struct SweepJob {
    id: u64,
    points: Arc<Vec<SimPoint>>,
    pending: Vec<usize>,
    token: CancelToken,
    priority: u8,
    inbox: Arc<SweepInbox>,
}

/// One admitted unit of work in a fairness lane.
enum Job {
    Point(PointJob),
    Sweep(SweepJob),
}

impl Job {
    fn priority(&self) -> u8 {
        match self {
            Job::Point(job) => job.priority,
            Job::Sweep(job) => job.priority,
        }
    }

    fn is_sweep(&self) -> bool {
        matches!(self, Job::Sweep(_))
    }
}

/// Why [`LaneScheduler::try_push`] refused a job.
enum Refused {
    /// The global queue is at depth; the job is returned so its ticket
    /// sheds.
    Full(Job),
    /// The connection's own lane is at depth; ditto.
    LaneFull(Job),
    /// The scheduler is closed for shutdown; ditto.
    Closed(Job),
}

/// The bounded, fairness-aware admission queue. `try_push` never blocks —
/// shedding is the point — while workers block in `pop` until a job or
/// shutdown arrives.
///
/// Jobs queue per **lane** (one lane per connection). `pop` scans lanes in
/// round-robin order and claims from the lane whose head job has the most
/// urgent priority (lowest number; round-robin position breaks ties), then
/// rotates that lane to the back — so a connection that queues a burst
/// advances one job per scheduler round while everyone else's heads go
/// first. While sweeps occupy all but one worker, lanes headed by another
/// sweep are passed over, reserving capacity for interactive points.
struct LaneScheduler {
    state: Mutex<LaneState>,
    ready: Condvar,
    queue_depth: usize,
    lane_depth: usize,
    workers: usize,
}

struct LaneState {
    /// Lane id → queued jobs. Invariant: a lane is in the map iff it is
    /// non-empty iff it appears exactly once in `rr`.
    lanes: HashMap<u64, VecDeque<Job>>,
    /// Round-robin order of non-empty lanes.
    rr: VecDeque<u64>,
    /// Jobs queued across all lanes.
    queued: usize,
    closed: bool,
    /// Sweep jobs currently held by workers.
    active_sweeps: usize,
}

impl LaneScheduler {
    fn new(queue_depth: usize, lane_depth: usize, workers: usize) -> Self {
        Self {
            state: Mutex::new(LaneState {
                lanes: HashMap::new(),
                rr: VecDeque::new(),
                queued: 0,
                closed: false,
                active_sweeps: 0,
            }),
            ready: Condvar::new(),
            queue_depth,
            lane_depth,
            workers,
        }
    }

    fn try_push(&self, lane: u64, job: Job) -> Result<(), Refused> {
        let mut state = self.state.lock().expect("scheduler lock poisoned");
        if state.closed {
            return Err(Refused::Closed(job));
        }
        if state.queued >= self.queue_depth {
            return Err(Refused::Full(job));
        }
        if state.lanes.get(&lane).map_or(0, VecDeque::len) >= self.lane_depth {
            return Err(Refused::LaneFull(job));
        }
        let queue = state.lanes.entry(lane).or_default();
        let newly_active = queue.is_empty();
        queue.push_back(job);
        if newly_active {
            state.rr.push_back(lane);
        }
        state.queued += 1;
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the scheduler is closed and
    /// drained.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("scheduler lock poisoned");
        loop {
            if let Some(job) = Self::claim(&mut state, self.workers) {
                return Some(job);
            }
            if state.closed && state.queued == 0 {
                return None;
            }
            state = self.ready.wait(state).expect("scheduler lock poisoned");
        }
    }

    /// One claim attempt under the lock: the most urgent eligible lane
    /// head, respecting the sweep-worker reservation.
    fn claim(state: &mut LaneState, workers: usize) -> Option<Job> {
        // Always leave one worker free of sweeps (unless there is only
        // one): a sweep must never absorb the whole pool.
        let allow_sweeps = workers == 1 || state.active_sweeps + 1 < workers;
        let mut best: Option<(usize, u8)> = None;
        for (pos, lane) in state.rr.iter().enumerate() {
            let head = state
                .lanes
                .get(lane)
                .and_then(VecDeque::front)
                .expect("rr lists only non-empty lanes");
            if head.is_sweep() && !allow_sweeps {
                continue;
            }
            let priority = head.priority();
            if best.map_or(true, |(_, p)| priority < p) {
                best = Some((pos, priority));
                if priority == 0 {
                    break;
                }
            }
        }
        let (pos, _) = best?;
        let lane = state.rr.remove(pos).expect("rr position vanished");
        let queue = state.lanes.get_mut(&lane).expect("claimed lane vanished");
        let job = queue.pop_front().expect("claimed lane is empty");
        state.queued -= 1;
        if queue.is_empty() {
            state.lanes.remove(&lane);
        } else {
            state.rr.push_back(lane);
        }
        if job.is_sweep() {
            state.active_sweeps += 1;
        }
        Some(job)
    }

    /// A worker finished a sweep: release its reservation slot and wake
    /// anyone whose claim was deferred by it.
    fn finish_sweep(&self) {
        let mut state = self.state.lock().expect("scheduler lock poisoned");
        state.active_sweeps = state.active_sweeps.saturating_sub(1);
        drop(state);
        self.ready.notify_all();
    }

    /// Closes the scheduler: pending jobs still drain, new pushes are
    /// refused, and idle workers wake up to exit.
    fn close(&self) {
        self.state.lock().expect("scheduler lock poisoned").closed = true;
        self.ready.notify_all();
    }

    /// `(active lanes, jobs queued)` for the metrics snapshot.
    fn depths(&self) -> (u64, u64) {
        let state = self.state.lock().expect("scheduler lock poisoned");
        (state.lanes.len() as u64, state.queued as u64)
    }
}

/// What [`SweepInbox::next`] delivered.
enum InboxEvent {
    /// A rendered stream frame to forward to the client.
    Frame(String),
    /// The worker finished the sweep (frames already drained).
    Finished(SweepReport),
    /// The terminal grace deadline passed with the worker still running.
    TimedOut,
}

/// The channel between a sweep worker and its connection handler: the
/// worker pushes rendered stream frames as points complete, the handler
/// drains them onto the socket in order, and a final report marks the
/// sweep finished. Frames are always delivered before the finish marker.
struct SweepInbox {
    state: Mutex<InboxState>,
    ready: Condvar,
}

struct InboxState {
    frames: VecDeque<String>,
    finished: Option<SweepReport>,
}

impl SweepInbox {
    fn new() -> Self {
        Self {
            state: Mutex::new(InboxState {
                frames: VecDeque::new(),
                finished: None,
            }),
            ready: Condvar::new(),
        }
    }

    fn push_frame(&self, frame: String) {
        let mut state = self.state.lock().expect("inbox lock poisoned");
        state.frames.push_back(frame);
        drop(state);
        self.ready.notify_all();
    }

    fn finish(&self, report: SweepReport) {
        let mut state = self.state.lock().expect("inbox lock poisoned");
        state.finished = Some(report);
        drop(state);
        self.ready.notify_all();
    }

    fn next(&self, terminal_deadline: Instant) -> InboxEvent {
        let mut state = self.state.lock().expect("inbox lock poisoned");
        loop {
            if let Some(frame) = state.frames.pop_front() {
                return InboxEvent::Frame(frame);
            }
            if let Some(report) = state.finished {
                return InboxEvent::Finished(report);
            }
            let now = Instant::now();
            if now >= terminal_deadline {
                return InboxEvent::TimedOut;
            }
            let (next, _) = self
                .ready
                .wait_timeout(state, terminal_deadline - now)
                .expect("inbox lock poisoned");
            state = next;
        }
    }
}

/// One lock-free latency histogram (log2-millisecond buckets).
struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    max_ms: AtomicU64,
}

impl LatencyHistogram {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max_ms: AtomicU64::new(0),
        }
    }

    fn record(&self, elapsed: Duration) {
        let ms = elapsed.as_millis().min(u128::from(u64::MAX)) as u64;
        let bucket = if ms == 0 {
            0
        } else {
            ((64 - ms.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_ms.fetch_max(ms, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            max_ms: self.max_ms.load(Ordering::Relaxed),
        }
    }
}

/// The daemon's live observability counters behind the v2 `metrics`
/// request.
struct Metrics {
    start: Instant,
    /// Followers that re-led after inheriting another request's
    /// cancellation (the deadline-inheritance fix at work).
    releads: AtomicU64,
    sweeps_started: AtomicU64,
    sweeps_completed: AtomicU64,
    sweeps_cancelled: AtomicU64,
    sweep_points_streamed: AtomicU64,
    engine_passes: AtomicU64,
    point_latency: LatencyHistogram,
    sweep_latency: LatencyHistogram,
    /// `(uptime_ms, jobs queued)` ring, sampled at admission and dispatch.
    depth_series: Mutex<VecDeque<(u64, u64)>>,
}

impl Metrics {
    fn new() -> Self {
        Self {
            start: Instant::now(),
            releads: AtomicU64::new(0),
            sweeps_started: AtomicU64::new(0),
            sweeps_completed: AtomicU64::new(0),
            sweeps_cancelled: AtomicU64::new(0),
            sweep_points_streamed: AtomicU64::new(0),
            engine_passes: AtomicU64::new(0),
            point_latency: LatencyHistogram::new(),
            sweep_latency: LatencyHistogram::new(),
            depth_series: Mutex::new(VecDeque::new()),
        }
    }

    fn uptime_ms(&self) -> u64 {
        self.start.elapsed().as_millis().min(u128::from(u64::MAX)) as u64
    }

    fn note_depth(&self, queued: u64) {
        let mut series = self.depth_series.lock().expect("depth series poisoned");
        series.push_back((self.uptime_ms(), queued));
        if series.len() > DEPTH_SERIES_CAP {
            series.pop_front();
        }
    }
}

/// Shared state every handler and worker sees.
struct Shared {
    service: PointService,
    /// The gang-scheduled engine sweeps execute through, sharing the
    /// service's matrix cache so streamed and batch bytes coincide.
    engine: SimEngine,
    scheduler: LaneScheduler,
    /// `Arc` so sweep cancel tokens can watch it directly.
    shutdown: Arc<AtomicBool>,
    active_connections: AtomicUsize,
    default_deadline_ms: u64,
    max_conn_requests: u64,
    /// Requests shed with `overloaded` (full queue, full lane, or
    /// connection budget).
    shed: AtomicU64,
    metrics: Metrics,
    /// Fairness-lane allocator: one id per accepted connection.
    next_lane: AtomicU64,
}

fn metrics_snapshot(shared: &Shared) -> MetricsSnapshot {
    let (lanes_active, jobs_queued) = shared.scheduler.depths();
    MetricsSnapshot {
        uptime_ms: shared.metrics.uptime_ms(),
        executed: shared.service.executed(),
        cache_hits: shared.service.cache_hits(),
        coalesced: shared.service.coalesced(),
        shed: shared.shed.load(Ordering::Relaxed),
        releads: shared.metrics.releads.load(Ordering::Relaxed),
        lanes_active,
        jobs_queued,
        queue_cap: shared.scheduler.queue_depth as u64,
        lane_cap: shared.scheduler.lane_depth as u64,
        sweeps_started: shared.metrics.sweeps_started.load(Ordering::Relaxed),
        sweeps_completed: shared.metrics.sweeps_completed.load(Ordering::Relaxed),
        sweeps_cancelled: shared.metrics.sweeps_cancelled.load(Ordering::Relaxed),
        sweep_points_streamed: shared.metrics.sweep_points_streamed.load(Ordering::Relaxed),
        engine_passes: shared.metrics.engine_passes.load(Ordering::Relaxed),
        depth_series: shared
            .metrics
            .depth_series
            .lock()
            .expect("depth series poisoned")
            .iter()
            .copied()
            .collect(),
        point_latency: shared.metrics.point_latency.snapshot(),
        sweep_latency: shared.metrics.sweep_latency.snapshot(),
    }
}

/// The listener half of [`Listen`], in non-blocking accept mode.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener, PathBuf),
}

impl Listener {
    fn bind(listen: &Listen) -> io::Result<Listener> {
        match listen {
            Listen::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Tcp(listener))
            }
            #[cfg(unix)]
            Listen::Unix(path) => {
                // A stale socket file from a killed daemon would fail the
                // bind; crash idempotence includes re-binding after kill -9.
                let _ = std::fs::remove_file(path);
                let listener = std::os::unix::net::UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Unix(listener, path.clone()))
            }
            #[cfg(not(unix))]
            Listen::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not supported on this platform",
            )),
        }
    }

    /// The bound address, as clients should dial it.
    fn addr(&self) -> String {
        match self {
            Listener::Tcp(listener) => listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown>".to_string()),
            #[cfg(unix)]
            Listener::Unix(_, path) => path.display().to_string(),
        }
    }

    /// One non-blocking accept attempt; `None` when nobody is dialing.
    fn accept(&self) -> io::Result<Option<Conn>> {
        match self {
            Listener::Tcp(listener) => match listener.accept() {
                Ok((stream, _)) => Ok(Some(Conn::Tcp(stream))),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(listener, _) => match listener.accept() {
                Ok((stream, _)) => Ok(Some(Conn::Unix(stream))),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One accepted connection.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, timeout: Duration) -> io::Result<()> {
        match self {
            Conn::Tcp(stream) => stream.set_read_timeout(Some(timeout)),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.set_read_timeout(Some(timeout)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(stream) => stream.read(buf),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(stream) => stream.write(buf),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(stream) => stream.flush(),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.flush(),
        }
    }
}

/// A started daemon. Dropping the handle does not stop it; call
/// [`RunningServer::shutdown`] then [`RunningServer::join`].
pub struct RunningServer {
    addr: String,
    shared: Arc<Shared>,
    accept_thread: JoinHandle<()>,
}

impl RunningServer {
    /// The bound address (for TCP with port 0, the actual port).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The shared singleflight service (its counters drive the tests).
    pub fn service(&self) -> &PointService {
        &self.shared.service
    }

    /// Requests shed with `overloaded` so far.
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Followers that re-led a fresh flight after another request's
    /// cancellation or shed (the deadline-inheritance fix at work).
    pub fn releads(&self) -> u64 {
        self.shared.metrics.releads.load(Ordering::Relaxed)
    }

    /// Requests the daemon drain and stop. Idempotent; also triggered by a
    /// protocol `shutdown` request.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown was requested (by any path).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the accept loop to drain workers and connections.
    pub fn join(self) {
        let _ = self.accept_thread.join();
    }
}

/// Binds the listener, spawns the worker pool and accept loop, and returns
/// once the daemon is ready to serve.
pub fn start(config: ServerConfig) -> io::Result<RunningServer> {
    let listener = Listener::bind(&config.listen)?;
    let addr = listener.addr();
    let workers = config.workers.max(1);
    let mut engine = SimEngine::new(config.sweep_threads.max(1));
    if let Some(cache) = config.service.cache() {
        engine = engine.with_matrix_cache(cache.clone());
    }
    let shared = Arc::new(Shared {
        service: config.service,
        engine,
        scheduler: LaneScheduler::new(config.queue_depth.max(1), config.lane_depth.max(1), workers),
        shutdown: Arc::new(AtomicBool::new(false)),
        active_connections: AtomicUsize::new(0),
        default_deadline_ms: config.default_deadline_ms.max(1),
        max_conn_requests: config.max_conn_requests.max(1),
        shed: AtomicU64::new(0),
        metrics: Metrics::new(),
        next_lane: AtomicU64::new(0),
    });
    let workers: Vec<JoinHandle<()>> = (0..workers)
        .map(|index| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("wp-serve-worker-{index}"))
                .spawn(move || worker_loop(&shared))
                .expect("worker thread spawn failed")
        })
        .collect();
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("wp-serve-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared, workers))
        .expect("accept thread spawn failed");
    Ok(RunningServer {
        addr,
        shared,
        accept_thread,
    })
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.scheduler.pop() {
        let (_, queued) = shared.scheduler.depths();
        shared.metrics.note_depth(queued);
        match job {
            Job::Point(job) => {
                // `execute` publishes the outcome to every waiter; the
                // handler threads own the responses.
                shared.service.execute(job.ticket, &job.token);
            }
            Job::Sweep(job) => {
                let report = shared.service.run_sweep(
                    &job.points,
                    &job.pending,
                    &shared.engine,
                    &job.token,
                    &|index, _point, result| {
                        job.inbox
                            .push_frame(protocol::stream_point_response(job.id, index, result));
                    },
                );
                shared
                    .metrics
                    .engine_passes
                    .fetch_add(report.engine_passes as u64, Ordering::Relaxed);
                job.inbox.finish(report);
                shared.scheduler.finish_sweep();
            }
        }
    }
}

fn accept_loop(listener: Listener, shared: Arc<Shared>, workers: Vec<JoinHandle<()>>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        handlers.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok(Some(conn)) => {
                let conn_shared = Arc::clone(&shared);
                shared.active_connections.fetch_add(1, Ordering::SeqCst);
                let handle = std::thread::Builder::new()
                    .name("wp-serve-conn".to_string())
                    .spawn(move || {
                        handle_connection(conn, &conn_shared);
                        conn_shared
                            .active_connections
                            .fetch_sub(1, Ordering::SeqCst);
                    });
                match handle {
                    Ok(handle) => handlers.push(handle),
                    Err(_) => {
                        // Spawn failure already dropped the connection; the
                        // guard count must not leak.
                        shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Ok(None) => std::thread::sleep(POLL_INTERVAL),
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    drop(listener); // stop accepting (and unlink a unix socket) first
    shared.scheduler.close();
    for worker in workers {
        let _ = worker.join();
    }
    let drain_deadline = Instant::now() + DRAIN_TIMEOUT;
    while shared.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn handle_connection(mut conn: Conn, shared: &Shared) {
    if conn.set_read_timeout(POLL_INTERVAL * 10).is_err() {
        return;
    }
    let lane = shared.next_lane.fetch_add(1, Ordering::Relaxed);
    let mut served: u64 = 0;
    let mut frames = protocol::FrameReader::new();
    loop {
        let payload = match frames.read(&mut conn) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // A timeout between frames is idleness: park until the
                // client sends or shutdown drains us. A timeout *mid-frame*
                // is just a slow writer — the reader holds the bytes it
                // already has and the next iteration resumes the decode.
                if !frames.mid_frame() && shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let request = match protocol::parse_request(&payload) {
            Ok(request) => request,
            Err((v, id, message)) => {
                let response = protocol::error_response_for(v, id, ErrorCode::BadRequest, &message);
                if protocol::write_frame(&mut conn, response.as_bytes()).is_err() {
                    return;
                }
                continue;
            }
        };
        match request {
            Request::Sweep {
                id,
                points,
                requested,
                deadline_ms,
                priority,
            } => {
                let params = SweepParams {
                    id,
                    points,
                    requested,
                    deadline_ms,
                    priority,
                };
                match handle_sweep(&mut conn, params, lane, &mut served, shared) {
                    Ok(false) => {}
                    Ok(true) | Err(_) => return,
                }
            }
            other => {
                let (response, close) = respond(other, &mut served, lane, shared);
                if protocol::write_frame(&mut conn, response.as_bytes()).is_err() {
                    return;
                }
                if close {
                    return;
                }
            }
        }
    }
}

/// Produces the response for one non-streaming request, and whether the
/// connection should close after sending it.
fn respond(request: Request, served: &mut u64, lane: u64, shared: &Shared) -> (String, bool) {
    match request {
        Request::Health { v, id } => {
            let service = &shared.service;
            (
                protocol::health_response_for(
                    v,
                    id,
                    &service.cache_health(),
                    service.executed(),
                    service.cache_hits(),
                    service.coalesced(),
                    shared.shutdown.load(Ordering::SeqCst),
                ),
                false,
            )
        }
        Request::Metrics { id } => (
            protocol::metrics_response(id, &metrics_snapshot(shared)),
            false,
        ),
        Request::Shutdown { v, id } => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (protocol::ack_response_for(v, id), true)
        }
        // Sweeps stream; they never come through this path.
        Request::Sweep { id, .. } => (
            protocol::error_response_for(
                protocol::PROTOCOL_V2,
                id,
                ErrorCode::Internal,
                "sweep requests are handled by the streaming path",
            ),
            false,
        ),
        Request::Simulate {
            v,
            id,
            point,
            deadline_ms,
            priority,
        } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return (
                    protocol::error_response_for(
                        v,
                        id,
                        ErrorCode::ShuttingDown,
                        "the daemon is draining for shutdown",
                    ),
                    true,
                );
            }
            *served += 1;
            if *served > shared.max_conn_requests {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                return (
                    protocol::error_response_for(
                        v,
                        id,
                        ErrorCode::Overloaded,
                        "per-connection request budget exhausted; reconnect to continue",
                    ),
                    true,
                );
            }
            let started = Instant::now();
            let deadline_ms = deadline_ms.unwrap_or(shared.default_deadline_ms);
            let deadline = started + Duration::from_millis(deadline_ms);
            let ops_requested = point.options.ops as u64;
            // Join → wait, re-joining when a *followed* flight dies under
            // its own leader's budget: another request's shorter deadline
            // (or a shed sweep ticket) must not be inherited by this one.
            // A led flight's cancellation IS this request's own deadline,
            // so leaders never loop.
            let response = loop {
                match shared.service.join(&point) {
                    Join::Leader(ticket, flight) => {
                        let token = CancelToken::never().with_deadline(deadline);
                        let job = Job::Point(PointJob {
                            ticket,
                            token,
                            priority,
                        });
                        match shared.scheduler.try_push(lane, job) {
                            Ok(()) => {
                                let (_, queued) = shared.scheduler.depths();
                                shared.metrics.note_depth(queued);
                            }
                            Err(Refused::Full(job)) => {
                                shared.shed.fetch_add(1, Ordering::Relaxed);
                                drop(job); // the dropped ticket publishes Shed to any followers
                                break (
                                    protocol::error_response_for(
                                        v,
                                        id,
                                        ErrorCode::Overloaded,
                                        "the request queue is full",
                                    ),
                                    false,
                                );
                            }
                            Err(Refused::LaneFull(job)) => {
                                shared.shed.fetch_add(1, Ordering::Relaxed);
                                drop(job);
                                break (
                                    protocol::error_response_for(
                                        v,
                                        id,
                                        ErrorCode::Overloaded,
                                        "the connection's fairness lane is full",
                                    ),
                                    false,
                                );
                            }
                            Err(Refused::Closed(job)) => {
                                drop(job);
                                break (
                                    protocol::error_response_for(
                                        v,
                                        id,
                                        ErrorCode::ShuttingDown,
                                        "the daemon is draining for shutdown",
                                    ),
                                    true,
                                );
                            }
                        }
                        break match flight.wait(Some(deadline + WAIT_GRACE)) {
                            Some(FlightOutcome::Done(result)) => {
                                (protocol::ok_response_for(v, id, &result), false)
                            }
                            Some(FlightOutcome::Cancelled {
                                ops_completed,
                                ops_requested,
                            }) => (
                                protocol::deadline_response_for(
                                    v,
                                    id,
                                    ops_completed,
                                    ops_requested,
                                ),
                                false,
                            ),
                            Some(FlightOutcome::Shed) => (
                                protocol::error_response_for(
                                    v,
                                    id,
                                    ErrorCode::Overloaded,
                                    "the request was shed before executing",
                                ),
                                false,
                            ),
                            None => (
                                protocol::deadline_response_for(v, id, 0, ops_requested),
                                false,
                            ),
                        };
                    }
                    Join::Follower(flight) => match flight.wait(Some(deadline + WAIT_GRACE)) {
                        Some(FlightOutcome::Done(result)) => {
                            break (protocol::ok_response_for(v, id, &result), false)
                        }
                        Some(FlightOutcome::Cancelled {
                            ops_completed,
                            ops_requested,
                        }) => {
                            if Instant::now() < deadline {
                                shared.metrics.releads.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            break (
                                protocol::deadline_response_for(
                                    v,
                                    id,
                                    ops_completed,
                                    ops_requested,
                                ),
                                false,
                            );
                        }
                        Some(FlightOutcome::Shed) => {
                            if Instant::now() < deadline {
                                shared.metrics.releads.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            break (
                                protocol::error_response_for(
                                    v,
                                    id,
                                    ErrorCode::Overloaded,
                                    "the request was shed before executing",
                                ),
                                false,
                            );
                        }
                        None => {
                            break (
                                protocol::deadline_response_for(v, id, 0, ops_requested),
                                false,
                            )
                        }
                    },
                }
            };
            shared.metrics.point_latency.record(started.elapsed());
            response
        }
    }
}

/// A parsed sweep request, regrouped for [`handle_sweep`].
struct SweepParams {
    id: u64,
    points: Vec<SimPoint>,
    requested: usize,
    deadline_ms: Option<u64>,
    priority: u8,
}

/// Runs one `sweep` request end to end: warm pre-pass, admission, stream,
/// terminator. Returns whether the connection should close; an `Err` means
/// the socket died mid-stream.
fn handle_sweep(
    conn: &mut Conn,
    params: SweepParams,
    lane: u64,
    served: &mut u64,
    shared: &Shared,
) -> io::Result<bool> {
    let SweepParams {
        id,
        points,
        requested,
        deadline_ms,
        priority,
    } = params;
    let v2 = protocol::PROTOCOL_V2;
    if shared.shutdown.load(Ordering::SeqCst) {
        let response = protocol::error_response_for(
            v2,
            id,
            ErrorCode::ShuttingDown,
            "the daemon is draining for shutdown",
        );
        protocol::write_frame(conn, response.as_bytes())?;
        return Ok(true);
    }
    *served += 1;
    if *served > shared.max_conn_requests {
        shared.shed.fetch_add(1, Ordering::Relaxed);
        let response = protocol::error_response_for(
            v2,
            id,
            ErrorCode::Overloaded,
            "per-connection request budget exhausted; reconnect to continue",
        );
        protocol::write_frame(conn, response.as_bytes())?;
        return Ok(true);
    }
    let started = Instant::now();
    let deadline =
        started + Duration::from_millis(deadline_ms.unwrap_or(shared.default_deadline_ms));
    // Warm pre-pass *before* admission: cached points stream immediately
    // and cost no queue slot, and a shed sweep is a clean `overloaded`
    // error rather than a half-streamed plan.
    let total = points.len();
    let mut warm: Vec<(usize, SimResult)> = Vec::new();
    let mut pending: Vec<usize> = Vec::new();
    for (index, point) in points.iter().enumerate() {
        match shared.service.load_cached(point) {
            Some(result) => warm.push((index, result)),
            None => pending.push(index),
        }
    }
    let inbox = Arc::new(SweepInbox::new());
    if !pending.is_empty() {
        let token = CancelToken::never()
            .with_deadline(deadline)
            .with_flag(Arc::clone(&shared.shutdown));
        let job = Job::Sweep(SweepJob {
            id,
            points: Arc::new(points),
            pending: pending.clone(),
            token,
            priority,
            inbox: Arc::clone(&inbox),
        });
        match shared.scheduler.try_push(lane, job) {
            Ok(()) => {
                let (_, queued) = shared.scheduler.depths();
                shared.metrics.note_depth(queued);
            }
            Err(Refused::Full(job)) => {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                drop(job);
                let response = protocol::error_response_for(
                    v2,
                    id,
                    ErrorCode::Overloaded,
                    "the request queue is full",
                );
                protocol::write_frame(conn, response.as_bytes())?;
                return Ok(false);
            }
            Err(Refused::LaneFull(job)) => {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                drop(job);
                let response = protocol::error_response_for(
                    v2,
                    id,
                    ErrorCode::Overloaded,
                    "the connection's fairness lane is full",
                );
                protocol::write_frame(conn, response.as_bytes())?;
                return Ok(false);
            }
            Err(Refused::Closed(job)) => {
                drop(job);
                let response = protocol::error_response_for(
                    v2,
                    id,
                    ErrorCode::ShuttingDown,
                    "the daemon is draining for shutdown",
                );
                protocol::write_frame(conn, response.as_bytes())?;
                return Ok(true);
            }
        }
    }
    shared
        .metrics
        .sweeps_started
        .fetch_add(1, Ordering::Relaxed);
    let mut streamed: usize = 0;
    for (index, result) in &warm {
        protocol::write_frame(
            conn,
            protocol::stream_point_response(id, *index, result).as_bytes(),
        )?;
        streamed += 1;
    }
    let terminal = if pending.is_empty() {
        shared
            .metrics
            .sweeps_completed
            .fetch_add(1, Ordering::Relaxed);
        protocol::sweep_summary_response(id, requested, total, streamed)
    } else {
        let terminal_deadline = deadline + WAIT_GRACE;
        loop {
            match inbox.next(terminal_deadline) {
                InboxEvent::Frame(frame) => {
                    protocol::write_frame(conn, frame.as_bytes())?;
                    streamed += 1;
                }
                InboxEvent::Finished(report) => {
                    break if report.complete {
                        shared
                            .metrics
                            .sweeps_completed
                            .fetch_add(1, Ordering::Relaxed);
                        protocol::sweep_summary_response(id, requested, total, streamed)
                    } else {
                        shared
                            .metrics
                            .sweeps_cancelled
                            .fetch_add(1, Ordering::Relaxed);
                        protocol::sweep_deadline_response(id, streamed, total)
                    };
                }
                InboxEvent::TimedOut => {
                    // The worker never finished inside the grace window
                    // (e.g. the job is still queued behind other sweeps).
                    // The job's own token is deadline-cancelled, so it will
                    // unwind; any frames it pushes late die with the inbox.
                    shared
                        .metrics
                        .sweeps_cancelled
                        .fetch_add(1, Ordering::Relaxed);
                    break protocol::sweep_deadline_response(id, streamed, total);
                }
            }
        }
    };
    shared
        .metrics
        .sweep_points_streamed
        .fetch_add(streamed as u64, Ordering::Relaxed);
    shared.metrics.sweep_latency.record(started.elapsed());
    protocol::write_frame(conn, terminal.as_bytes())?;
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    use wp_experiments::{MachineConfig, RunOptions};
    use wp_workloads::Benchmark;

    fn point_job(priority: u8) -> Job {
        let service = PointService::new();
        let point = SimPoint::new(
            Benchmark::Gcc,
            MachineConfig::baseline(),
            RunOptions::default().with_ops(1_000 + priority as usize),
        );
        match service.join(&point) {
            Join::Leader(ticket, _flight) => Job::Point(PointJob {
                ticket,
                token: CancelToken::never(),
                priority,
            }),
            Join::Follower(_) => unreachable!("fresh service has no flights"),
        }
    }

    fn sweep_job(priority: u8) -> Job {
        Job::Sweep(SweepJob {
            id: 1,
            points: Arc::new(Vec::new()),
            pending: Vec::new(),
            token: CancelToken::never(),
            priority,
            inbox: Arc::new(SweepInbox::new()),
        })
    }

    #[test]
    fn lanes_round_robin_across_connections() {
        let scheduler = LaneScheduler::new(16, 8, 2);
        // Lane 1 queues a burst of three before lanes 2 and 3 queue one
        // each; round-robin must interleave, not drain lane 1 first.
        for _ in 0..3 {
            assert!(scheduler.try_push(1, point_job(4)).is_ok());
        }
        assert!(scheduler.try_push(2, point_job(4)).is_ok());
        assert!(scheduler.try_push(3, point_job(4)).is_ok());
        let mut order = Vec::new();
        let mut state = scheduler.state.lock().unwrap();
        loop {
            let before: HashMap<u64, usize> =
                state.lanes.iter().map(|(l, q)| (*l, q.len())).collect();
            if LaneScheduler::claim(&mut state, 2).is_none() {
                break;
            }
            // The lane whose queue shrank is the one just claimed from.
            let claimed = before
                .iter()
                .find(|(l, len)| state.lanes.get(l).map_or(0, VecDeque::len) + 1 == **len)
                .map(|(l, _)| *l)
                .expect("one lane shrank");
            order.push(claimed);
        }
        assert_eq!(state.queued, 0);
        drop(state);
        assert_eq!(
            order,
            vec![1, 2, 3, 1, 1],
            "round-robin lets every lane's head go before the burst drains"
        );
    }

    #[test]
    fn urgent_priorities_jump_the_rr_order() {
        let scheduler = LaneScheduler::new(16, 8, 2);
        assert!(scheduler.try_push(1, point_job(9)).is_ok());
        assert!(scheduler.try_push(2, point_job(0)).is_ok());
        let mut state = scheduler.state.lock().unwrap();
        let first = LaneScheduler::claim(&mut state, 2).expect("a job is queued");
        assert_eq!(first.priority(), 0, "the urgent head goes first");
        let second = LaneScheduler::claim(&mut state, 2).expect("a job is queued");
        assert_eq!(second.priority(), 9);
    }

    #[test]
    fn the_global_and_lane_caps_refuse_distinctly() {
        let scheduler = LaneScheduler::new(2, 1, 2);
        assert!(scheduler.try_push(1, point_job(4)).is_ok());
        match scheduler.try_push(1, point_job(4)) {
            Err(Refused::LaneFull(_)) => {}
            _ => panic!("the second job on one lane must hit the lane cap"),
        }
        assert!(scheduler.try_push(2, point_job(4)).is_ok());
        match scheduler.try_push(3, point_job(4)) {
            Err(Refused::Full(_)) => {}
            _ => panic!("the third job must hit the global cap"),
        }
    }

    #[test]
    fn sweeps_leave_one_worker_for_points() {
        let scheduler = LaneScheduler::new(16, 8, 2);
        assert!(scheduler.try_push(1, sweep_job(0)).is_ok());
        assert!(scheduler.try_push(2, sweep_job(0)).is_ok());
        assert!(scheduler.try_push(3, point_job(9)).is_ok());
        let mut state = scheduler.state.lock().unwrap();
        let first = LaneScheduler::claim(&mut state, 2).expect("first claim");
        assert!(first.is_sweep(), "one sweep may run");
        let second = LaneScheduler::claim(&mut state, 2).expect("second claim");
        assert!(
            !second.is_sweep(),
            "with a sweep active the reserved worker must take the point, \
             even at a worse priority"
        );
        assert!(
            LaneScheduler::claim(&mut state, 2).is_none(),
            "the second sweep stays queued while the reservation holds"
        );
        drop(state);
        scheduler.finish_sweep();
        let mut state = scheduler.state.lock().unwrap();
        let third = LaneScheduler::claim(&mut state, 2).expect("third claim");
        assert!(third.is_sweep(), "the freed slot admits the next sweep");
    }

    #[test]
    fn latency_histograms_bucket_by_log2_milliseconds() {
        let histogram = LatencyHistogram::new();
        histogram.record(Duration::from_micros(200)); // bucket 0
        histogram.record(Duration::from_millis(1)); // bucket 1
        histogram.record(Duration::from_millis(3)); // bucket 2
        histogram.record(Duration::from_millis(1_000)); // bucket 10
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 4);
        assert_eq!(snapshot.max_ms, 1_000);
        assert_eq!(snapshot.buckets[0], 1);
        assert_eq!(snapshot.buckets[1], 1);
        assert_eq!(snapshot.buckets[2], 1);
        assert_eq!(snapshot.buckets[10], 1);
    }

    #[test]
    fn the_inbox_delivers_frames_before_the_finish_marker() {
        let inbox = SweepInbox::new();
        inbox.push_frame("a".to_string());
        inbox.finish(SweepReport {
            streamed: 1,
            engine_passes: 1,
            complete: true,
        });
        let deadline = Instant::now() + Duration::from_millis(100);
        match inbox.next(deadline) {
            InboxEvent::Frame(frame) => assert_eq!(frame, "a"),
            _ => panic!("the buffered frame must drain first"),
        }
        match inbox.next(deadline) {
            InboxEvent::Finished(report) => assert!(report.complete),
            _ => panic!("then the finish marker"),
        }
    }
}
