//! The daemon: listener, admission queue, worker pool, and lifecycle.
//!
//! Request flow (`docs/SERVICE.md` has the operator's view):
//!
//! 1. The accept loop (non-blocking, shutdown-aware) hands each connection
//!    to its own handler thread.
//! 2. A handler parses one frame at a time. A `simulate` request joins the
//!    [`PointService`] flight table *before* touching the queue: followers
//!    of an in-flight point consume **no** queue slot — a stampede of N
//!    identical requests occupies one slot and executes one simulation.
//! 3. Flight leaders are admitted through the bounded job queue. A full
//!    queue sheds immediately with `overloaded` (the dropped leader ticket
//!    wakes any followers with the same outcome); a closed queue answers
//!    `shutting_down`.
//! 4. A fixed pool of workers pops leaders and executes them through the
//!    shared service (cache → simulate-with-deadline → store).
//! 5. Shutdown (SIGTERM/SIGINT, or a `shutdown` request) stops the accept
//!    loop, closes the queue, drains the workers, and lets in-flight
//!    responses finish; new requests get `shutting_down`.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wp_experiments::service::{FlightOutcome, Join, PointService};
use wp_experiments::{CancelToken, LeaderTicket};

use crate::protocol::{self, ErrorCode, Request};

/// How often blocking loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// How long past a request's own deadline a handler keeps waiting for the
/// flight to publish the leader's (cancelled) outcome, so the response can
/// carry real partial-progress counters instead of zeros. Cancellation is
/// cooperative at op-block granularity, so the leader lands well inside
/// this.
const WAIT_GRACE: Duration = Duration::from_secs(2);

/// How long shutdown waits for connection handlers to finish responding.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP address like `127.0.0.1:0` (port 0 picks a free port).
    Tcp(String),
    /// A Unix domain socket path.
    Unix(PathBuf),
}

impl Listen {
    /// Parses a `--listen` value: anything containing `/` is a Unix socket
    /// path, everything else a TCP address.
    pub fn parse(spec: &str) -> Listen {
        if spec.contains('/') {
            Listen::Unix(PathBuf::from(spec))
        } else {
            Listen::Tcp(spec.to_string())
        }
    }
}

/// Everything the daemon needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Where to listen.
    pub listen: Listen,
    /// Worker threads executing simulations.
    pub workers: usize,
    /// Admission-queue depth: leaders beyond this shed with `overloaded`.
    pub queue_depth: usize,
    /// Deadline for requests that do not carry their own, in milliseconds.
    pub default_deadline_ms: u64,
    /// Requests one connection may issue before it is shed and closed.
    pub max_conn_requests: u64,
    /// The shared singleflight executor (and its optional matrix cache).
    pub service: PointService,
}

impl ServerConfig {
    /// A config with the documented defaults: every core a worker, a
    /// 128-deep queue, a 30-second default deadline, and a 1024-request
    /// connection budget.
    pub fn new(listen: Listen, service: PointService) -> Self {
        Self {
            listen,
            workers: wp_experiments::engine::available_threads(),
            queue_depth: 128,
            default_deadline_ms: 30_000,
            max_conn_requests: 1024,
            service,
        }
    }
}

/// One admitted unit of work: a flight leadership plus its cancel token.
struct Job {
    ticket: LeaderTicket,
    token: CancelToken,
}

/// Why [`JobQueue::try_push`] refused a job.
enum Refused {
    /// The queue is at depth; the job is returned so its ticket sheds.
    Full(Job),
    /// The queue is closed for shutdown; ditto.
    Closed(Job),
}

/// The bounded admission queue. `try_push` never blocks — shedding is the
/// point — while workers block in `pop` until a job or shutdown arrives.
struct JobQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    depth: usize,
}

struct QueueState {
    jobs: std::collections::VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(depth: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: std::collections::VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            depth,
        }
    }

    fn try_push(&self, job: Job) -> Result<(), Refused> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(Refused::Closed(job));
        }
        if state.jobs.len() >= self.depth {
            return Err(Refused::Full(job));
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed and empty.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes are refused,
    /// and idle workers wake up to exit.
    fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }
}

/// The listener half of [`Listen`], in non-blocking accept mode.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener, PathBuf),
}

impl Listener {
    fn bind(listen: &Listen) -> io::Result<Listener> {
        match listen {
            Listen::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Tcp(listener))
            }
            #[cfg(unix)]
            Listen::Unix(path) => {
                // A stale socket file from a killed daemon would fail the
                // bind; crash idempotence includes re-binding after kill -9.
                let _ = std::fs::remove_file(path);
                let listener = std::os::unix::net::UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Unix(listener, path.clone()))
            }
            #[cfg(not(unix))]
            Listen::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not supported on this platform",
            )),
        }
    }

    /// The bound address, as clients should dial it.
    fn addr(&self) -> String {
        match self {
            Listener::Tcp(listener) => listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown>".to_string()),
            #[cfg(unix)]
            Listener::Unix(_, path) => path.display().to_string(),
        }
    }

    /// One non-blocking accept attempt; `None` when nobody is dialing.
    fn accept(&self) -> io::Result<Option<Conn>> {
        match self {
            Listener::Tcp(listener) => match listener.accept() {
                Ok((stream, _)) => Ok(Some(Conn::Tcp(stream))),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(listener, _) => match listener.accept() {
                Ok((stream, _)) => Ok(Some(Conn::Unix(stream))),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// One accepted connection.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, timeout: Duration) -> io::Result<()> {
        match self {
            Conn::Tcp(stream) => stream.set_read_timeout(Some(timeout)),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.set_read_timeout(Some(timeout)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(stream) => stream.read(buf),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(stream) => stream.write(buf),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(stream) => stream.flush(),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.flush(),
        }
    }
}

/// Shared state every handler and worker sees.
struct Shared {
    service: PointService,
    queue: JobQueue,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    default_deadline_ms: u64,
    max_conn_requests: u64,
    /// Requests shed with `overloaded` (full queue or connection budget).
    shed: AtomicU64,
}

/// A started daemon. Dropping the handle does not stop it; call
/// [`RunningServer::shutdown`] then [`RunningServer::join`].
pub struct RunningServer {
    addr: String,
    shared: Arc<Shared>,
    accept_thread: JoinHandle<()>,
}

impl RunningServer {
    /// The bound address (for TCP with port 0, the actual port).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The shared singleflight service (its counters drive the tests).
    pub fn service(&self) -> &PointService {
        &self.shared.service
    }

    /// Requests shed with `overloaded` so far.
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Requests the daemon drain and stop. Idempotent; also triggered by a
    /// protocol `shutdown` request.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown was requested (by any path).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the accept loop to drain workers and connections.
    pub fn join(self) {
        let _ = self.accept_thread.join();
    }
}

/// Binds the listener, spawns the worker pool and accept loop, and returns
/// once the daemon is ready to serve.
pub fn start(config: ServerConfig) -> io::Result<RunningServer> {
    let listener = Listener::bind(&config.listen)?;
    let addr = listener.addr();
    let shared = Arc::new(Shared {
        service: config.service,
        queue: JobQueue::new(config.queue_depth.max(1)),
        shutdown: AtomicBool::new(false),
        active_connections: AtomicUsize::new(0),
        default_deadline_ms: config.default_deadline_ms.max(1),
        max_conn_requests: config.max_conn_requests.max(1),
        shed: AtomicU64::new(0),
    });
    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|index| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("wp-serve-worker-{index}"))
                .spawn(move || worker_loop(&shared))
                .expect("worker thread spawn failed")
        })
        .collect();
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("wp-serve-accept".to_string())
        .spawn(move || accept_loop(listener, accept_shared, workers))
        .expect("accept thread spawn failed");
    Ok(RunningServer {
        addr,
        shared,
        accept_thread,
    })
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        // `execute` publishes the outcome to every waiter; the handler
        // threads own the responses.
        shared.service.execute(job.ticket, &job.token);
    }
}

fn accept_loop(listener: Listener, shared: Arc<Shared>, workers: Vec<JoinHandle<()>>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        handlers.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok(Some(conn)) => {
                let conn_shared = Arc::clone(&shared);
                shared.active_connections.fetch_add(1, Ordering::SeqCst);
                let handle = std::thread::Builder::new()
                    .name("wp-serve-conn".to_string())
                    .spawn(move || {
                        handle_connection(conn, &conn_shared);
                        conn_shared
                            .active_connections
                            .fetch_sub(1, Ordering::SeqCst);
                    });
                match handle {
                    Ok(handle) => handlers.push(handle),
                    Err(_) => {
                        // Spawn failure already dropped the connection; the
                        // guard count must not leak.
                        shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Ok(None) => std::thread::sleep(POLL_INTERVAL),
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    drop(listener); // stop accepting (and unlink a unix socket) first
    shared.queue.close();
    for worker in workers {
        let _ = worker.join();
    }
    let drain_deadline = Instant::now() + DRAIN_TIMEOUT;
    while shared.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn handle_connection(mut conn: Conn, shared: &Shared) {
    if conn.set_read_timeout(POLL_INTERVAL * 10).is_err() {
        return;
    }
    let mut served: u64 = 0;
    loop {
        let payload = match protocol::read_frame(&mut conn) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle: park until the client sends or shutdown drains us.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let (response, close) = respond(&payload, &mut served, shared);
        if protocol::write_frame(&mut conn, response.as_bytes()).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

/// Produces the response for one request payload, and whether the
/// connection should close after sending it.
fn respond(payload: &[u8], served: &mut u64, shared: &Shared) -> (String, bool) {
    let request = match protocol::parse_request(payload) {
        Ok(request) => request,
        Err((id, message)) => {
            return (
                protocol::error_response(id, ErrorCode::BadRequest, &message),
                false,
            )
        }
    };
    match request {
        Request::Health { id } => {
            let service = &shared.service;
            (
                protocol::health_response(
                    id,
                    &service.cache_health(),
                    service.executed(),
                    service.cache_hits(),
                    service.coalesced(),
                    shared.shutdown.load(Ordering::SeqCst),
                ),
                false,
            )
        }
        Request::Shutdown { id } => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (protocol::ack_response(id), true)
        }
        Request::Simulate {
            id,
            point,
            deadline_ms,
        } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return (
                    protocol::error_response(
                        id,
                        ErrorCode::ShuttingDown,
                        "the daemon is draining for shutdown",
                    ),
                    true,
                );
            }
            *served += 1;
            if *served > shared.max_conn_requests {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                return (
                    protocol::error_response(
                        id,
                        ErrorCode::Overloaded,
                        "per-connection request budget exhausted; reconnect to continue",
                    ),
                    true,
                );
            }
            let deadline_ms = deadline_ms.unwrap_or(shared.default_deadline_ms);
            let deadline = Instant::now() + Duration::from_millis(deadline_ms);
            let ops_requested = point.options.ops as u64;
            let flight = match shared.service.join(&point) {
                Join::Leader(ticket, flight) => {
                    let token = CancelToken::never().with_deadline(deadline);
                    match shared.queue.try_push(Job { ticket, token }) {
                        Ok(()) => flight,
                        Err(Refused::Full(job)) => {
                            shared.shed.fetch_add(1, Ordering::Relaxed);
                            drop(job); // the dropped ticket publishes Shed to any followers
                            return (
                                protocol::error_response(
                                    id,
                                    ErrorCode::Overloaded,
                                    "the request queue is full",
                                ),
                                false,
                            );
                        }
                        Err(Refused::Closed(job)) => {
                            drop(job);
                            return (
                                protocol::error_response(
                                    id,
                                    ErrorCode::ShuttingDown,
                                    "the daemon is draining for shutdown",
                                ),
                                true,
                            );
                        }
                    }
                }
                Join::Follower(flight) => flight,
            };
            match flight.wait(Some(deadline + WAIT_GRACE)) {
                Some(FlightOutcome::Done(result)) => (protocol::ok_response(id, &result), false),
                Some(FlightOutcome::Cancelled {
                    ops_completed,
                    ops_requested,
                }) => (
                    protocol::deadline_response(id, ops_completed, ops_requested),
                    false,
                ),
                Some(FlightOutcome::Shed) => (
                    protocol::error_response(
                        id,
                        ErrorCode::Overloaded,
                        "the request was shed before executing",
                    ),
                    false,
                ),
                None => (protocol::deadline_response(id, 0, ops_requested), false),
            }
        }
    }
}
