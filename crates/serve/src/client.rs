//! A tiny synchronous client for the wp-serve protocol.
//!
//! One connection, one request/response pair at a time — enough for the
//! `serve_client` CLI, the CI byte-identity check, and the soak harness.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::protocol::{read_frame, write_frame};
use crate::server::Listen;

/// A connected client. Dropping it closes the connection.
pub struct Client {
    stream: Stream,
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Client {
    /// Dials `spec` using the same rule as the daemon's `--listen`:
    /// anything containing `/` is a Unix socket path, else a TCP address.
    pub fn connect(spec: &str) -> io::Result<Client> {
        let stream = match Listen::parse(spec) {
            Listen::Tcp(addr) => Stream::Tcp(TcpStream::connect(addr)?),
            #[cfg(unix)]
            Listen::Unix(path) => Stream::Unix(std::os::unix::net::UnixStream::connect(path)?),
            #[cfg(not(unix))]
            Listen::Unix(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not supported on this platform",
                ))
            }
        };
        Ok(Client { stream })
    }

    /// Bounds how long [`Client::request`] blocks on the response.
    pub fn set_timeout(&self, timeout: Duration) -> io::Result<()> {
        match &self.stream {
            Stream::Tcp(stream) => stream.set_read_timeout(Some(timeout)),
            #[cfg(unix)]
            Stream::Unix(stream) => stream.set_read_timeout(Some(timeout)),
        }
    }

    /// Sends one request payload and returns the response payload.
    pub fn request(&mut self, payload: &str) -> io::Result<String> {
        write_frame(&mut self.stream, payload.as_bytes())?;
        let response = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "the daemon closed the connection without responding",
            )
        })?;
        String::from_utf8(response)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response payload"))
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(stream) => stream.read(buf),
            #[cfg(unix)]
            Stream::Unix(stream) => stream.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(stream) => stream.write(buf),
            #[cfg(unix)]
            Stream::Unix(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(stream) => stream.flush(),
            #[cfg(unix)]
            Stream::Unix(stream) => stream.flush(),
        }
    }
}
