//! A tiny synchronous client for the wp-serve protocol.
//!
//! One connection, one request (or streaming sweep) at a time — enough for
//! the `serve_client` CLI, the CI byte-identity check, and the soak
//! harness.
//!
//! The client verifies that every response echoes the id of the request it
//! answers. When a request times out, its id is remembered: the daemon's
//! late response is still in flight, and a naive reader would hand those
//! stale bytes to the *next* request. Stale frames are drained silently;
//! a frame that matches neither the current request nor a timed-out one
//! surfaces a typed mismatch error instead of corrupting the stream.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde::Value;

use crate::protocol::{write_frame, FrameReader};
use crate::server::Listen;

/// How many timed-out request ids the stale-frame filter remembers.
const MAX_OUTSTANDING: usize = 32;

/// A connected client. Dropping it closes the connection.
pub struct Client {
    stream: Stream,
    /// Persistent decode state: a timeout mid-frame keeps the bytes read
    /// so far and the next read resumes the frame.
    frames: FrameReader,
    /// Ids of requests that timed out with their response still owed.
    outstanding: Vec<u64>,
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

/// Extracts the `id` field from a request or response payload, if the
/// payload parses as JSON and carries one.
fn payload_id(text: &str) -> Option<u64> {
    serde_json::from_str(text)
        .ok()?
        .get("id")
        .and_then(Value::as_u64)
}

impl Client {
    /// Dials `spec` using the same rule as the daemon's `--listen`:
    /// anything containing `/` is a Unix socket path, else a TCP address.
    pub fn connect(spec: &str) -> io::Result<Client> {
        let stream = match Listen::parse(spec) {
            Listen::Tcp(addr) => Stream::Tcp(TcpStream::connect(addr)?),
            #[cfg(unix)]
            Listen::Unix(path) => Stream::Unix(std::os::unix::net::UnixStream::connect(path)?),
            #[cfg(not(unix))]
            Listen::Unix(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not supported on this platform",
                ))
            }
        };
        Ok(Client {
            stream,
            frames: FrameReader::new(),
            outstanding: Vec::new(),
        })
    }

    /// Bounds how long [`Client::request`] blocks on the response.
    pub fn set_timeout(&self, timeout: Duration) -> io::Result<()> {
        match &self.stream {
            Stream::Tcp(stream) => stream.set_read_timeout(Some(timeout)),
            #[cfg(unix)]
            Stream::Unix(stream) => stream.set_read_timeout(Some(timeout)),
        }
    }

    /// Reads one response payload as UTF-8 text.
    fn read_text(&mut self) -> io::Result<String> {
        let response = self.frames.read(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "the daemon closed the connection without responding",
            )
        })?;
        String::from_utf8(response)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response payload"))
    }

    /// Remembers that `id`'s response never arrived, so it can be drained
    /// instead of answering a later request.
    fn note_outstanding(&mut self, id: Option<u64>) {
        if let Some(id) = id {
            self.outstanding.push(id);
            if self.outstanding.len() > MAX_OUTSTANDING {
                self.outstanding.remove(0);
            }
        }
    }

    /// Sends one request payload and returns the response payload,
    /// verifying the echoed id. Stale responses owed to earlier timed-out
    /// requests are drained; any other id mismatch is an
    /// [`io::ErrorKind::InvalidData`] error.
    pub fn request(&mut self, payload: &str) -> io::Result<String> {
        write_frame(&mut self.stream, payload.as_bytes())?;
        let want = payload_id(payload);
        loop {
            let text = match self.read_text() {
                Ok(text) => text,
                Err(e) => {
                    if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
                    {
                        self.note_outstanding(want);
                    }
                    return Err(e);
                }
            };
            let Some(want) = want else {
                // The request carried no parseable id (deliberately
                // malformed probes): the next frame is the answer.
                return Ok(text);
            };
            // The daemon answers with id 0 when a frame was too mangled to
            // echo an id; that still terminates this request.
            let got = payload_id(&text);
            match got {
                Some(got) if got == want || got == 0 => return Ok(text),
                Some(got) if self.outstanding.contains(&got) => {
                    // A late response from a request that timed out: drop
                    // it and keep draining until this request's answer.
                    // Sweeps owe many frames under one id, so the id stays
                    // in the filter until a fresh response supersedes it.
                    continue;
                }
                Some(got) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("response id {got} does not match request id {want}"),
                    ))
                }
                None => return Ok(text),
            }
        }
    }

    /// Sends a v2 `sweep` request and streams the response: `on_frame` is
    /// called with each `stream:"point"` payload in arrival order, and the
    /// terminal frame (summary or error) is returned. Stale frames from
    /// earlier timed-out requests are drained exactly as in
    /// [`Client::request`].
    pub fn sweep(&mut self, payload: &str, mut on_frame: impl FnMut(&str)) -> io::Result<String> {
        write_frame(&mut self.stream, payload.as_bytes())?;
        let want = payload_id(payload);
        loop {
            let text = match self.read_text() {
                Ok(text) => text,
                Err(e) => {
                    if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
                    {
                        self.note_outstanding(want);
                    }
                    return Err(e);
                }
            };
            let value = match serde_json::from_str(&text) {
                Ok(value) => value,
                Err(_) => return Ok(text),
            };
            if let (Some(want), Some(got)) = (want, value.get("id").and_then(Value::as_u64)) {
                if got != want && got != 0 {
                    if self.outstanding.contains(&got) {
                        continue;
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("response id {got} does not match request id {want}"),
                    ));
                }
            }
            if value.get("stream").and_then(Value::as_str) == Some("point") {
                on_frame(&text);
                continue;
            }
            return Ok(text);
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(stream) => stream.read(buf),
            #[cfg(unix)]
            Stream::Unix(stream) => stream.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(stream) => stream.write(buf),
            #[cfg(unix)]
            Stream::Unix(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(stream) => stream.flush(),
            #[cfg(unix)]
            Stream::Unix(stream) => stream.flush(),
        }
    }
}
