//! The wp-serve daemon binary.
//!
//! Usage: `cargo run --release -p wp-serve --bin serve -- [--listen ADDR]
//! [--workers N] [--queue-depth N] [--lane-depth N] [--sweep-threads N]
//! [--default-deadline-ms N] [--max-conn-requests N] [--no-matrix-cache]
//! [--matrix-cache-dir PATH] [--matrix-cache-cap BYTES]`
//!
//! `--listen` takes a TCP address (`127.0.0.1:0` picks a free port — the
//! daemon prints the bound address) or a Unix socket path (anything
//! containing `/`). On SIGTERM/SIGINT, or a protocol `shutdown` request,
//! the daemon drains in-flight work, answers new requests with
//! `shutting_down`, and exits 0. See `docs/SERVICE.md`.

use std::io::Write;
use std::time::Duration;

use wp_experiments::storage::FaultyIo;
use wp_experiments::{CliError, MatrixCache, PointService};
use wp_serve::server::{self, Listen, ServerConfig};
use wp_serve::signal;

const USAGE: &str = "usage: serve [--listen ADDR] [--workers N] [--queue-depth N] \
                     [--lane-depth N] [--sweep-threads N] \
                     [--default-deadline-ms N] [--max-conn-requests N] \
                     [--no-matrix-cache] [--matrix-cache-dir PATH] \
                     [--matrix-cache-cap BYTES]";

/// The daemon's command line.
struct ServeOptions {
    listen: String,
    workers: Option<usize>,
    queue_depth: usize,
    lane_depth: usize,
    sweep_threads: Option<usize>,
    default_deadline_ms: u64,
    max_conn_requests: u64,
    no_matrix_cache: bool,
    matrix_cache_dir: Option<std::path::PathBuf>,
    matrix_cache_cap: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            workers: None,
            queue_depth: 128,
            lane_depth: 32,
            sweep_threads: None,
            default_deadline_ms: 30_000,
            max_conn_requests: 1024,
            no_matrix_cache: false,
            matrix_cache_dir: None,
            matrix_cache_cap: None,
        }
    }
}

fn positive<T: std::str::FromStr + PartialEq + From<u8>>(
    flag: &'static str,
    value: Option<String>,
) -> Result<T, CliError> {
    let value = value.ok_or(CliError::MissingValue(flag))?;
    let parsed: T = value
        .parse()
        .map_err(|_| CliError::InvalidValue(flag, value.clone()))?;
    if parsed == T::from(0u8) {
        return Err(CliError::InvalidValue(flag, value));
    }
    Ok(parsed)
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<ServeOptions, CliError> {
    let mut options = ServeOptions::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                options.listen = args.next().ok_or(CliError::MissingValue("--listen"))?;
            }
            "--workers" => options.workers = Some(positive("--workers", args.next())?),
            "--queue-depth" => options.queue_depth = positive("--queue-depth", args.next())?,
            "--lane-depth" => options.lane_depth = positive("--lane-depth", args.next())?,
            "--sweep-threads" => {
                options.sweep_threads = Some(positive("--sweep-threads", args.next())?);
            }
            "--default-deadline-ms" => {
                options.default_deadline_ms = positive("--default-deadline-ms", args.next())?;
            }
            "--max-conn-requests" => {
                options.max_conn_requests = positive("--max-conn-requests", args.next())?;
            }
            "--no-matrix-cache" => options.no_matrix_cache = true,
            "--matrix-cache-dir" => {
                let dir = args
                    .next()
                    .ok_or(CliError::MissingValue("--matrix-cache-dir"))?;
                options.matrix_cache_dir = Some(std::path::PathBuf::from(dir));
            }
            "--matrix-cache-cap" => {
                options.matrix_cache_cap = Some(positive("--matrix-cache-cap", args.next())?);
            }
            other => return Err(CliError::UnknownFlag(other.to_string())),
        }
    }
    Ok(options)
}

/// The shared service the options describe — the same cache wiring as the
/// batch binaries ([`wp_experiments::runner::CliOptions::engine`]), so warm
/// daemon responses and `run_all` share one on-disk cache and one fault
/// seed (`WPSDM_MATRIX_CACHE_FAULT_SEED`).
fn service_from(options: &ServeOptions) -> PointService {
    if options.no_matrix_cache {
        return PointService::new();
    }
    let mut cache = match &options.matrix_cache_dir {
        Some(dir) => MatrixCache::new(dir),
        None => MatrixCache::at_default_dir(),
    };
    if options.matrix_cache_cap.is_some() {
        cache = cache.with_cap(options.matrix_cache_cap);
    }
    if let Some(io) = FaultyIo::from_env() {
        cache = cache.with_io_backend(io);
    }
    PointService::with_cache(cache)
}

fn main() {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let listen = Listen::parse(&options.listen);
    let mut config = ServerConfig::new(listen, service_from(&options));
    if let Some(workers) = options.workers {
        config.workers = workers;
    }
    config.queue_depth = options.queue_depth;
    config.lane_depth = options.lane_depth;
    if let Some(sweep_threads) = options.sweep_threads {
        config.sweep_threads = sweep_threads;
    }
    config.default_deadline_ms = options.default_deadline_ms;
    config.max_conn_requests = options.max_conn_requests;

    signal::install();
    let server = match server::start(config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("error: cannot listen on {}: {error}", options.listen);
            std::process::exit(1);
        }
    };
    let scheme = if options.listen.contains('/') {
        "unix"
    } else {
        "tcp"
    };
    // The bound address (with the actual port for `--listen host:0`) goes to
    // stdout so wrappers can discover it; flush before blocking.
    println!("wp-serve: listening on {scheme}://{}", server.addr());
    let _ = std::io::stdout().flush();

    while !signal::requested() && !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("wp-serve: draining for shutdown");
    server.shutdown();
    server.join();
    eprintln!("wp-serve: drained; exiting");
}
