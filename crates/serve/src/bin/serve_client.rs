//! A CLI client for the wp-serve daemon — and the local reference it is
//! diffed against.
//!
//! Usage: `serve_client --connect ADDR [--workload NAME] [--ops N]
//! [--seed N] [--dpolicy LABEL] [--ipolicy LABEL] [--assoc N]
//! [--deadline-ms N] [--priority P] [--repeat K] [--sweep PLAN] [--health]
//! [--metrics] [--shutdown]` or `serve_client --batch [point flags]
//! [--sweep PLAN]`.
//!
//! The default action sends one `simulate` request and prints the response
//! payload. `--repeat K` opens K concurrent connections all asking for the
//! same point (a stampede: the daemon's singleflight executes one
//! simulation) and prints all K responses, one per line. `--sweep PLAN`
//! sends a v2 streaming sweep — `PLAN` is `run_all` or the path of a
//! profile-spec JSON file — and prints the streamed point frames sorted by
//! plan index, then the terminal frame. `--metrics` prints the daemon's v2
//! metrics snapshot. `--batch` skips the daemon entirely: it simulates the
//! same point (or whole sweep plan) in-process and renders it through the
//! same [`wp_serve::protocol`] functions — so
//! `diff <(serve_client --batch ...) <(serve_client --connect ...)` is the
//! byte-identity check CI runs, for single points and sweeps alike.

use std::time::Duration;

use serde::Value;
use wp_experiments::{simulate_workload, CliError, MachineConfig, RunOptions, SimPoint};
use wp_serve::protocol::{self, SweepPlanSpec};
use wp_serve::Client;
use wp_workloads::{ProfileSpec, WorkloadSpec};

const USAGE: &str = "usage: serve_client (--connect ADDR | --batch) [--workload NAME] \
                     [--ops N] [--seed N] [--dpolicy LABEL] [--ipolicy LABEL] [--assoc N] \
                     [--deadline-ms N] [--priority P] [--repeat K] [--sweep PLAN] \
                     [--health] [--metrics] [--shutdown]";

enum Action {
    Simulate,
    Health,
    Metrics,
    Shutdown,
}

struct ClientOptions {
    connect: Option<String>,
    batch: bool,
    workload: String,
    ops: u64,
    seed: u64,
    dpolicy: Option<String>,
    ipolicy: Option<String>,
    assoc: Option<u64>,
    deadline_ms: Option<u64>,
    priority: Option<u8>,
    repeat: u64,
    sweep: Option<String>,
    action: Action,
}

impl Default for ClientOptions {
    fn default() -> Self {
        Self {
            connect: None,
            batch: false,
            workload: "gcc".to_string(),
            ops: 4_000,
            seed: 42,
            dpolicy: None,
            ipolicy: None,
            assoc: None,
            deadline_ms: None,
            priority: None,
            repeat: 1,
            sweep: None,
            action: Action::Simulate,
        }
    }
}

fn positive(flag: &'static str, value: Option<String>) -> Result<u64, CliError> {
    let value = value.ok_or(CliError::MissingValue(flag))?;
    match value.parse::<u64>() {
        Ok(0) | Err(_) => Err(CliError::InvalidValue(flag, value)),
        Ok(parsed) => Ok(parsed),
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<ClientOptions, CliError> {
    let mut options = ClientOptions::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => {
                options.connect = Some(args.next().ok_or(CliError::MissingValue("--connect"))?);
            }
            "--batch" => options.batch = true,
            "--workload" => {
                options.workload = args.next().ok_or(CliError::MissingValue("--workload"))?;
            }
            "--ops" => options.ops = positive("--ops", args.next())?,
            "--seed" => options.seed = positive("--seed", args.next())?,
            "--dpolicy" => {
                options.dpolicy = Some(args.next().ok_or(CliError::MissingValue("--dpolicy"))?);
            }
            "--ipolicy" => {
                options.ipolicy = Some(args.next().ok_or(CliError::MissingValue("--ipolicy"))?);
            }
            "--assoc" => options.assoc = Some(positive("--assoc", args.next())?),
            "--deadline-ms" => options.deadline_ms = Some(positive("--deadline-ms", args.next())?),
            "--priority" => {
                // Unlike the other numeric flags, 0 is meaningful here: it
                // is the most urgent fairness-lane priority.
                let value = args.next().ok_or(CliError::MissingValue("--priority"))?;
                match value.parse::<u8>() {
                    Ok(parsed) if parsed <= protocol::MAX_PRIORITY => {
                        options.priority = Some(parsed);
                    }
                    _ => return Err(CliError::InvalidValue("--priority", value)),
                }
            }
            "--repeat" => options.repeat = positive("--repeat", args.next())?,
            "--sweep" => {
                options.sweep = Some(args.next().ok_or(CliError::MissingValue("--sweep"))?);
            }
            "--health" => options.action = Action::Health,
            "--metrics" => options.action = Action::Metrics,
            "--shutdown" => options.action = Action::Shutdown,
            other => return Err(CliError::UnknownFlag(other.to_string())),
        }
    }
    Ok(options)
}

/// Builds the simulation point the flags describe, mirroring the daemon's
/// request validation so a bad flag fails here with exit 2 instead of as a
/// `bad_request` response.
fn point_from(options: &ClientOptions) -> Result<SimPoint, CliError> {
    let Some(workload) = WorkloadSpec::parse(&options.workload) else {
        return Err(CliError::InvalidValue(
            "--workload",
            options.workload.clone(),
        ));
    };
    let mut machine = MachineConfig::baseline();
    if let Some(label) = &options.dpolicy {
        let Some(dpolicy) = wp_cache::DCachePolicy::parse(label) else {
            return Err(CliError::InvalidValue("--dpolicy", label.clone()));
        };
        machine = machine.with_dpolicy(dpolicy);
    }
    if let Some(label) = &options.ipolicy {
        let Some(ipolicy) = wp_cache::ICachePolicy::parse(label) else {
            return Err(CliError::InvalidValue("--ipolicy", label.clone()));
        };
        machine = machine.with_ipolicy(ipolicy);
    }
    if let Some(assoc) = options.assoc {
        machine = machine.with_l1d(machine.l1d.with_associativity(assoc as usize));
    }
    let run = RunOptions::default()
        .with_ops(options.ops as usize)
        .with_seed(options.seed);
    Ok(SimPoint::with_workload(workload, machine, run))
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn usage_fail(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Resolves `--sweep PLAN`: the literal `run_all`, or the path of a
/// profile-spec JSON file.
fn sweep_spec(plan: &str) -> Result<SweepPlanSpec, String> {
    if plan == "run_all" {
        return Ok(SweepPlanSpec::RunAll);
    }
    let text = std::fs::read_to_string(plan)
        .map_err(|e| format!("cannot read profile spec `{plan}`: {e}"))?;
    let profile = ProfileSpec::from_json(&text, plan).map_err(|e| format!("{e}"))?;
    Ok(SweepPlanSpec::Profile(profile))
}

/// The sweep plan the daemon will expand for `spec` — the same expansion
/// [`wp_serve::protocol::parse_request`] performs, so the batch rendering
/// and the daemon's stream are byte-comparable per point.
fn sweep_plan(spec: &SweepPlanSpec, ops: u64, seed: u64) -> wp_experiments::SimPlan {
    let options = RunOptions::default().with_ops(ops as usize).with_seed(seed);
    match spec {
        SweepPlanSpec::RunAll => wp_experiments::run_all_plan(&options),
        SweepPlanSpec::Profile(profile) => {
            wp_experiments::coverage::profile_plan(profile, &options)
        }
        SweepPlanSpec::Points(points) => {
            let mut plan = wp_experiments::SimPlan::new();
            for point in points {
                plan.add(point.clone());
            }
            plan
        }
    }
}

/// Simulates the whole sweep plan locally and prints the same frames the
/// daemon would stream (sorted by plan index) plus the summary — the batch
/// half of the CI sweep byte-identity check.
fn run_batch_sweep(spec: &SweepPlanSpec, ops: u64, seed: u64) {
    let plan = sweep_plan(spec, ops, seed);
    let requested = plan.len();
    let points = plan.unique_points();
    for (index, point) in points.iter().enumerate() {
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        println!("{}", protocol::stream_point_response(1, index, &result));
    }
    println!(
        "{}",
        protocol::sweep_summary_response(1, requested, points.len(), points.len())
    );
}

/// Streams one sweep through the daemon, printing point frames sorted by
/// plan index, then the terminal frame.
fn run_daemon_sweep(connect: &str, request: &str) {
    let mut client = Client::connect(connect).unwrap_or_else(|e| fail(e));
    let _ = client.set_timeout(Duration::from_secs(600));
    let mut frames: Vec<(u64, String)> = Vec::new();
    let terminal = client
        .sweep(request, |frame| {
            let index = serde_json::from_str(frame)
                .ok()
                .and_then(|v| v.get("index").and_then(Value::as_u64))
                .unwrap_or(u64::MAX);
            frames.push((index, frame.to_string()));
        })
        .unwrap_or_else(|e| fail(e));
    // Arrival order is completion order; sort by plan index so the stream
    // compares line-for-line against the batch rendering.
    frames.sort_by_key(|(index, _)| *index);
    for (_, frame) in &frames {
        println!("{frame}");
    }
    println!("{terminal}");
}

fn main() {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    if options.batch {
        // The local reference path: same simulation, same renderer, no
        // daemon — what daemon responses are diffed against.
        if let Some(plan) = &options.sweep {
            let spec = sweep_spec(plan).unwrap_or_else(|e| usage_fail(e));
            run_batch_sweep(&spec, options.ops, options.seed);
            return;
        }
        let point = match point_from(&options) {
            Ok(point) => point,
            Err(error) => usage_fail(error),
        };
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        println!("{}", protocol::ok_response(1, &result));
        return;
    }

    let Some(connect) = options.connect.clone() else {
        usage_fail("flag `--connect` (or `--batch`) is required");
    };

    if let Some(plan) = &options.sweep {
        let spec = sweep_spec(plan).unwrap_or_else(|e| usage_fail(e));
        let request = protocol::sweep_request(
            1,
            &spec,
            options.ops,
            options.seed,
            options.deadline_ms,
            options.priority,
        );
        run_daemon_sweep(&connect, &request);
        return;
    }

    let request = match options.action {
        Action::Health => "{\"v\":1,\"id\":1,\"type\":\"health\"}".to_string(),
        Action::Metrics => protocol::metrics_request(1),
        Action::Shutdown => "{\"v\":1,\"id\":1,\"type\":\"shutdown\"}".to_string(),
        Action::Simulate => {
            let point = match point_from(&options) {
                Ok(point) => point,
                Err(error) => usage_fail(error),
            };
            match options.priority {
                // A priority makes it a v2 request; without one the frozen
                // v1 bytes are sent, which CI's compat step relies on.
                Some(priority) => protocol::simulate_request_v(
                    protocol::PROTOCOL_V2,
                    1,
                    &point,
                    options.deadline_ms,
                    Some(priority),
                ),
                None => protocol::simulate_request(1, &point, options.deadline_ms),
            }
        }
    };

    if options.repeat == 1 {
        let mut client = Client::connect(&connect).unwrap_or_else(|e| fail(e));
        let _ = client.set_timeout(Duration::from_secs(600));
        let response = client.request(&request).unwrap_or_else(|e| fail(e));
        println!("{response}");
        return;
    }

    // A stampede: `--repeat K` concurrent connections, every one asking for
    // the same point at the same time. The daemon's singleflight coalesces
    // them onto one simulation; every response carries the same bytes.
    let responses: Vec<Result<String, std::io::Error>> = std::thread::scope(|scope| {
        let request = &request;
        let connect = &connect;
        let handles: Vec<_> = (0..options.repeat)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(connect)?;
                    client.set_timeout(Duration::from_secs(600))?;
                    client.request(request)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stampede thread panicked"))
            .collect()
    });
    for response in responses {
        match response {
            Ok(response) => println!("{response}"),
            Err(error) => fail(error),
        }
    }
}
