//! A CLI client for the wp-serve daemon — and the local reference it is
//! diffed against.
//!
//! Usage: `serve_client --connect ADDR [--workload NAME] [--ops N]
//! [--seed N] [--dpolicy LABEL] [--ipolicy LABEL] [--assoc N]
//! [--deadline-ms N] [--repeat K] [--health] [--shutdown]`
//! or `serve_client --batch [point flags]`.
//!
//! The default action sends one `simulate` request and prints the response
//! payload. `--repeat K` opens K concurrent connections all asking for the
//! same point (a stampede: the daemon's singleflight executes one
//! simulation) and prints all K responses, one per line. `--batch` skips
//! the daemon entirely: it simulates the same point in-process and renders
//! it through the same [`wp_serve::protocol::ok_response`] — so
//! `diff <(serve_client --batch ...) <(serve_client --connect ...)` is the
//! byte-identity check CI runs.

use std::time::Duration;

use wp_experiments::{simulate_workload, CliError, MachineConfig, RunOptions, SimPoint};
use wp_serve::protocol;
use wp_serve::Client;
use wp_workloads::WorkloadSpec;

const USAGE: &str = "usage: serve_client (--connect ADDR | --batch) [--workload NAME] \
                     [--ops N] [--seed N] [--dpolicy LABEL] [--ipolicy LABEL] [--assoc N] \
                     [--deadline-ms N] [--repeat K] [--health] [--shutdown]";

enum Action {
    Simulate,
    Health,
    Shutdown,
}

struct ClientOptions {
    connect: Option<String>,
    batch: bool,
    workload: String,
    ops: u64,
    seed: u64,
    dpolicy: Option<String>,
    ipolicy: Option<String>,
    assoc: Option<u64>,
    deadline_ms: Option<u64>,
    repeat: u64,
    action: Action,
}

impl Default for ClientOptions {
    fn default() -> Self {
        Self {
            connect: None,
            batch: false,
            workload: "gcc".to_string(),
            ops: 4_000,
            seed: 42,
            dpolicy: None,
            ipolicy: None,
            assoc: None,
            deadline_ms: None,
            repeat: 1,
            action: Action::Simulate,
        }
    }
}

fn positive(flag: &'static str, value: Option<String>) -> Result<u64, CliError> {
    let value = value.ok_or(CliError::MissingValue(flag))?;
    match value.parse::<u64>() {
        Ok(0) | Err(_) => Err(CliError::InvalidValue(flag, value)),
        Ok(parsed) => Ok(parsed),
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<ClientOptions, CliError> {
    let mut options = ClientOptions::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => {
                options.connect = Some(args.next().ok_or(CliError::MissingValue("--connect"))?);
            }
            "--batch" => options.batch = true,
            "--workload" => {
                options.workload = args.next().ok_or(CliError::MissingValue("--workload"))?;
            }
            "--ops" => options.ops = positive("--ops", args.next())?,
            "--seed" => options.seed = positive("--seed", args.next())?,
            "--dpolicy" => {
                options.dpolicy = Some(args.next().ok_or(CliError::MissingValue("--dpolicy"))?);
            }
            "--ipolicy" => {
                options.ipolicy = Some(args.next().ok_or(CliError::MissingValue("--ipolicy"))?);
            }
            "--assoc" => options.assoc = Some(positive("--assoc", args.next())?),
            "--deadline-ms" => options.deadline_ms = Some(positive("--deadline-ms", args.next())?),
            "--repeat" => options.repeat = positive("--repeat", args.next())?,
            "--health" => options.action = Action::Health,
            "--shutdown" => options.action = Action::Shutdown,
            other => return Err(CliError::UnknownFlag(other.to_string())),
        }
    }
    Ok(options)
}

/// Builds the simulation point the flags describe, mirroring the daemon's
/// request validation so a bad flag fails here with exit 2 instead of as a
/// `bad_request` response.
fn point_from(options: &ClientOptions) -> Result<SimPoint, CliError> {
    let Some(workload) = WorkloadSpec::parse(&options.workload) else {
        return Err(CliError::InvalidValue(
            "--workload",
            options.workload.clone(),
        ));
    };
    let mut machine = MachineConfig::baseline();
    if let Some(label) = &options.dpolicy {
        let Some(dpolicy) = wp_cache::DCachePolicy::parse(label) else {
            return Err(CliError::InvalidValue("--dpolicy", label.clone()));
        };
        machine = machine.with_dpolicy(dpolicy);
    }
    if let Some(label) = &options.ipolicy {
        let Some(ipolicy) = wp_cache::ICachePolicy::parse(label) else {
            return Err(CliError::InvalidValue("--ipolicy", label.clone()));
        };
        machine = machine.with_ipolicy(ipolicy);
    }
    if let Some(assoc) = options.assoc {
        machine = machine.with_l1d(machine.l1d.with_associativity(assoc as usize));
    }
    let run = RunOptions::default()
        .with_ops(options.ops as usize)
        .with_seed(options.seed);
    Ok(SimPoint::with_workload(workload, machine, run))
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn main() {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(error) => {
            eprintln!("error: {error}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    if options.batch {
        // The local reference path: same simulation, same renderer, no
        // daemon — what daemon responses are diffed against.
        let point = match point_from(&options) {
            Ok(point) => point,
            Err(error) => {
                eprintln!("error: {error}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        };
        let result = simulate_workload(&point.workload, &point.machine, &point.options);
        println!("{}", protocol::ok_response(1, &result));
        return;
    }

    let Some(connect) = options.connect.clone() else {
        eprintln!("error: flag `--connect` (or `--batch`) is required");
        eprintln!("{USAGE}");
        std::process::exit(2);
    };

    let request = match options.action {
        Action::Health => "{\"v\":1,\"id\":1,\"type\":\"health\"}".to_string(),
        Action::Shutdown => "{\"v\":1,\"id\":1,\"type\":\"shutdown\"}".to_string(),
        Action::Simulate => {
            let point = match point_from(&options) {
                Ok(point) => point,
                Err(error) => {
                    eprintln!("error: {error}");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
            };
            protocol::simulate_request(1, &point, options.deadline_ms)
        }
    };

    if options.repeat == 1 {
        let mut client = Client::connect(&connect).unwrap_or_else(|e| fail(e));
        let _ = client.set_timeout(Duration::from_secs(600));
        let response = client.request(&request).unwrap_or_else(|e| fail(e));
        println!("{response}");
        return;
    }

    // A stampede: `--repeat K` concurrent connections, every one asking for
    // the same point at the same time. The daemon's singleflight coalesces
    // them onto one simulation; every response carries the same bytes.
    let responses: Vec<Result<String, std::io::Error>> = std::thread::scope(|scope| {
        let request = &request;
        let connect = &connect;
        let handles: Vec<_> = (0..options.repeat)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(connect)?;
                    client.set_timeout(Duration::from_secs(600))?;
                    client.request(request)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stampede thread panicked"))
            .collect()
    });
    for response in responses {
        match response {
            Ok(response) => println!("{response}"),
            Err(error) => fail(error),
        }
    }
}
