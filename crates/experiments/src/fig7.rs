//! Figure 7 — effect of cache size (16 KB vs 32 KB) on selective-DM plus
//! way-prediction.
//!
//! The opportunity is nearly size-independent: the paper measures 69 %
//! energy-delay savings at 16 KB and 63 % at 32 KB (the un-optimised tag,
//! decode, and routing energy grows slightly as a share of the total), with
//! ~2 % performance degradation at both sizes and no need to grow the
//! 1024-entry prediction table.

use serde::{Deserialize, Serialize};
use wp_cache::{DCachePolicy, L1Config};

use crate::compare::DcacheFigure;
use crate::engine::{SimEngine, SimMatrix, SimPlan};
use crate::runner::RunOptions;

/// The regenerated Figure 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Selective-DM + way-prediction on the 16 KB cache.
    pub size_16k: DcacheFigure,
    /// Selective-DM + way-prediction on the 32 KB cache (its own 32 KB
    /// parallel baseline).
    pub size_32k: DcacheFigure,
}

const POLICIES: [DCachePolicy; 1] = [DCachePolicy::SelDmWayPredict];

fn l1d_32k() -> L1Config {
    L1Config::paper_dcache().with_size(32 * 1024)
}

/// The simulation points Figure 7 needs.
pub fn plan(options: &RunOptions) -> SimPlan {
    let mut plan = DcacheFigure::plan(&POLICIES, L1Config::paper_dcache(), options);
    plan.merge(DcacheFigure::plan(&POLICIES, l1d_32k(), options));
    plan
}

/// Renders Figure 7 from an executed matrix containing [`plan`]'s points.
pub fn from_matrix(matrix: &SimMatrix, options: &RunOptions) -> Fig7Result {
    Fig7Result {
        size_16k: DcacheFigure::from_matrix(
            matrix,
            "Figure 7 (A): 16 KB selective-DM + way-prediction",
            &POLICIES,
            L1Config::paper_dcache(),
            options,
            &[("seldm+waypred", 69.0, 2.4)],
        ),
        size_32k: DcacheFigure::from_matrix(
            matrix,
            "Figure 7 (B): 32 KB selective-DM + way-prediction",
            &POLICIES,
            l1d_32k(),
            options,
            &[("seldm+waypred", 63.0, 2.1)],
        ),
    }
}

/// Regenerates Figure 7 standalone (plans, executes, renders).
pub fn run(options: &RunOptions) -> Fig7Result {
    from_matrix(&SimEngine::default().run(&plan(options)), options)
}

impl Fig7Result {
    /// Renders both halves of the figure.
    pub fn to_table(&self) -> String {
        format!("{}\n{}", self.size_16k.to_table(), self.size_32k.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_are_roughly_size_independent() {
        let result = run(&RunOptions::quick());
        let s16 = result
            .size_16k
            .average_savings(DCachePolicy::SelDmWayPredict)
            .expect("16K average");
        let s32 = result
            .size_32k
            .average_savings(DCachePolicy::SelDmWayPredict)
            .expect("32K average");
        assert!(s16 > 0.4 && s32 > 0.4, "savings {s16} / {s32}");
        // The paper's shape: 32 KB saves slightly *less* than 16 KB; allow a
        // little noise but rule out a large increase.
        assert!(
            s32 < s16 + 0.05,
            "32K ({s32}) should not exceed 16K ({s16}) by much"
        );
    }
}
