//! Storage backends for the persistent [`crate::MatrixCache`]: all cache
//! I/O goes through the [`CacheIo`] trait, so the same hardened cache logic
//! runs over the real filesystem ([`FsIo`]) in production and over a
//! deterministic fault-injecting wrapper ([`FaultyIo`]) in the crash
//! harness and CI.
//!
//! The fault model is the one `docs/RELIABILITY.md` spells out:
//!
//! * **transient and persistent I/O errors** — any operation can return
//!   EIO-, ENOSPC-, or EACCES-shaped errors ([`FaultKind`]), either at a
//!   scripted operation index ([`FaultPlan::fail_nth`]) or pseudo-randomly
//!   from a seed ([`FaultyIo::seeded`]: same seed, same fault sequence);
//! * **torn writes** — a failing write may first persist a prefix of the
//!   record ([`FaultPlan::tear_write`]), modelling a partial page flush;
//! * **process abort** — from one operation onward *everything* fails
//!   ([`FaultPlan::abort_at`]), including the cache's own cleanup, so
//!   temporary files are stranded exactly as a `kill -9` would strand
//!   them. Recovery of the debris is the next process's job
//!   ([`crate::MatrixCache`] sweeps it at startup).
//!
//! [`FaultyIo`] wraps any inner backend, counts the operations it passes
//! through and the faults it injects, and is fully deterministic: the
//! decision for operation *n* depends only on the plan (and seed), never on
//! wall-clock time or thread scheduling.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::SystemTime;

/// One directory entry as the cache sees it: enough metadata for recovery
/// (name), compaction (name + content read separately), and mtime-LRU
/// eviction (length + modification time).
#[derive(Debug, Clone)]
pub struct DirEntry {
    /// File name within the cache directory (no path components).
    pub name: String,
    /// File length in bytes.
    pub len: u64,
    /// Last-modified time (the eviction recency proxy).
    pub modified: SystemTime,
}

/// The complete I/O surface of the matrix cache. Every filesystem touch the
/// cache makes goes through exactly one of these methods, so a backend that
/// injects faults here has covered the cache's entire failure surface.
pub trait CacheIo: fmt::Debug + Send + Sync {
    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (or truncates) `path`, writes `bytes`, and flushes them to
    /// stable storage before returning.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Atomically renames `from` to `to` (both within the cache directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Lists the plain files directly under `path`.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<DirEntry>>;
    /// Creates `path` with `bytes` only if it does not already exist
    /// (`O_EXCL`) — the advisory-lock primitive; fails with
    /// [`io::ErrorKind::AlreadyExists`] when another holder won.
    fn create_exclusive(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
}

/// The real filesystem backend used in production.
#[derive(Debug, Clone, Default)]
pub struct FsIo;

impl CacheIo for FsIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(bytes)?;
        // Flush the record before the caller renames it into place: a
        // rename that becomes visible before its content is durable would
        // reintroduce the torn-record window on power loss.
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<DirEntry>> {
        let mut entries = Vec::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            let metadata = entry.metadata()?;
            if !metadata.is_file() {
                continue;
            }
            entries.push(DirEntry {
                name: entry.file_name().to_string_lossy().into_owned(),
                len: metadata.len(),
                modified: metadata.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        Ok(entries)
    }

    fn create_exclusive(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)?;
        file.write_all(bytes)
    }
}

/// The error shape an injected fault takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A generic I/O error (EIO: bad disk, bit rot, controller reset).
    Eio,
    /// No space left on device (ENOSPC): the classic mid-store failure.
    Enospc,
    /// Permission denied (EACCES): a read-only cache directory.
    PermissionDenied,
}

impl FaultKind {
    /// The `io::Error` this fault materializes as.
    pub fn error(self) -> io::Error {
        match self {
            FaultKind::Eio => io::Error::other("injected fault: input/output error (EIO)"),
            // Built from the raw errno (28 on every unix) rather than
            // `ErrorKind::StorageFull`, which needs rustc 1.83; the kind
            // still maps to StorageFull on toolchains that know it.
            FaultKind::Enospc => io::Error::from_raw_os_error(28),
            FaultKind::PermissionDenied => io::Error::new(
                io::ErrorKind::PermissionDenied,
                "injected fault: permission denied (EACCES)",
            ),
        }
    }
}

/// One scripted fault: how the targeted operation fails, and — for writes —
/// how many bytes land on disk before it does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The error shape returned.
    pub kind: FaultKind,
    /// For write operations: persist this many bytes of the record before
    /// failing (a torn write). `None` persists nothing.
    pub tear: Option<usize>,
}

/// A deterministic schedule of injected faults, consumed by [`FaultyIo`]
/// one backend operation at a time (operation indices start at 0).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Scripted faults by operation index.
    scripted: BTreeMap<u64, Fault>,
    /// From this operation onward, everything fails (process abort). The
    /// targeted operation itself honours `abort_tear` if it is a write.
    abort_at: Option<u64>,
    /// Bytes a write aborted *on* persists before the plug is pulled.
    abort_tear: usize,
    /// Every mutating operation fails with EACCES (read-only directory).
    read_only: bool,
    /// Pseudo-random faults: `(seed, permille)` — each operation fails with
    /// probability `permille / 1000`, with kind and tear point drawn from
    /// the same per-operation hash.
    seeded: Option<(u64, u32)>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fails operation `n` with `kind` (no bytes persisted for writes).
    pub fn fail_nth(mut self, n: u64, kind: FaultKind) -> Self {
        self.scripted.insert(n, Fault { kind, tear: None });
        self
    }

    /// Fails operation `n` with `kind`; if it is a write, the first
    /// `bytes` bytes of the record are persisted first (a torn write).
    pub fn tear_write(mut self, n: u64, bytes: usize, kind: FaultKind) -> Self {
        self.scripted.insert(
            n,
            Fault {
                kind,
                tear: Some(bytes),
            },
        );
        self
    }

    /// Simulates a process abort at operation `n`: that operation and every
    /// later one fail, cleanup included. If operation `n` is a write, its
    /// first `tear` bytes are persisted first.
    pub fn abort_at(mut self, n: u64, tear: usize) -> Self {
        self.abort_at = Some(n);
        self.abort_tear = tear;
        self
    }

    /// Makes every mutating operation fail with EACCES, as a cache
    /// directory on a read-only mount would.
    pub fn read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    /// Adds pseudo-random faults: each operation independently fails with
    /// probability `permille / 1000`, deterministically derived from
    /// `seed` and the operation index.
    pub fn seeded(mut self, seed: u64, permille: u32) -> Self {
        self.seeded = Some((seed, permille.min(1000)));
        self
    }
}

/// What [`FaultyIo`] decided for one operation.
enum Decision {
    /// Pass through to the inner backend.
    Pass,
    /// Fail; for writes, persist `tear` bytes first.
    Inject(Fault),
}

/// A deterministic fault-injecting [`CacheIo`] wrapper. See the module
/// docs for the fault model; construction goes through [`FaultPlan`] or
/// the [`FaultyIo::seeded`] / [`FaultyIo::read_only`] shorthands.
#[derive(Debug)]
pub struct FaultyIo {
    inner: Arc<dyn CacheIo>,
    plan: FaultPlan,
    ops: AtomicU64,
    injected: AtomicU64,
    aborted: AtomicBool,
}

/// SplitMix64: the per-operation hash behind seeded fault decisions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultyIo {
    /// Wraps `inner` with a fault plan.
    pub fn new(inner: Arc<dyn CacheIo>, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            aborted: AtomicBool::new(false),
        }
    }

    /// A seeded pseudo-random fault injector over the real filesystem:
    /// each operation fails with probability `permille / 1000`. Same seed,
    /// same fault sequence — the crash harness's workhorse.
    pub fn seeded(seed: u64, permille: u32) -> Self {
        Self::new(Arc::new(FsIo), FaultPlan::new().seeded(seed, permille))
    }

    /// A backend on which every mutating operation fails with EACCES.
    pub fn read_only() -> Self {
        Self::new(Arc::new(FsIo), FaultPlan::new().read_only())
    }

    /// A backend scripted by `plan` over the real filesystem.
    pub fn with_plan(plan: FaultPlan) -> Self {
        Self::new(Arc::new(FsIo), plan)
    }

    /// The fault injector the `WPSDM_MATRIX_CACHE_FAULT_SEED` environment
    /// variable asks for, if set: `SEED` or `SEED:PERMILLE` (default 100,
    /// i.e. a 10% per-operation fault rate). Unparseable values are
    /// reported on stderr and ignored — a broken testing knob must not take
    /// the binaries down.
    pub fn from_env() -> Option<Arc<dyn CacheIo>> {
        Self::from_env_value(&std::env::var("WPSDM_MATRIX_CACHE_FAULT_SEED").ok()?)
    }

    /// [`FaultyIo::from_env`]'s parser, split out so tests can exercise it
    /// without mutating process-global environment.
    pub fn from_env_value(raw: &str) -> Option<Arc<dyn CacheIo>> {
        let (seed_text, permille_text) = match raw.split_once(':') {
            Some((seed, permille)) => (seed, Some(permille)),
            None => (raw, None),
        };
        let seed: u64 = match seed_text.trim().parse() {
            Ok(seed) => seed,
            Err(_) => {
                eprintln!(
                    "warning: ignoring unparseable WPSDM_MATRIX_CACHE_FAULT_SEED `{raw}` \
                     (expected SEED or SEED:PERMILLE)"
                );
                return None;
            }
        };
        let permille: u32 = match permille_text {
            None => 100,
            Some(text) => match text.trim().parse() {
                Ok(permille) => permille,
                Err(_) => {
                    eprintln!(
                        "warning: ignoring unparseable WPSDM_MATRIX_CACHE_FAULT_SEED `{raw}` \
                         (expected SEED or SEED:PERMILLE)"
                    );
                    return None;
                }
            },
        };
        Some(Arc::new(Self::seeded(seed, permille)))
    }

    /// How many operations have been issued through this backend.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// How many faults have been injected.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// True once a scripted abort has fired (everything fails from there).
    pub fn aborted(&self) -> bool {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Decides the fate of the next operation. `mutating` selects whether
    /// the read-only plan applies.
    fn decide(&self, mutating: bool) -> Decision {
        let index = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.aborted.load(Ordering::Relaxed) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Decision::Inject(Fault {
                kind: FaultKind::Eio,
                tear: None,
            });
        }
        if self.plan.abort_at == Some(index) {
            self.aborted.store(true, Ordering::Relaxed);
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Decision::Inject(Fault {
                kind: FaultKind::Eio,
                tear: Some(self.plan.abort_tear),
            });
        }
        if self.plan.read_only && mutating {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Decision::Inject(Fault {
                kind: FaultKind::PermissionDenied,
                tear: None,
            });
        }
        if let Some(&fault) = self.plan.scripted.get(&index) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Decision::Inject(fault);
        }
        if let Some((seed, permille)) = self.plan.seeded {
            let hash = splitmix64(seed ^ splitmix64(index));
            if ((hash % 1000) as u32) < permille {
                self.injected.fetch_add(1, Ordering::Relaxed);
                let kind = match (hash >> 10) % 3 {
                    0 => FaultKind::Eio,
                    1 => FaultKind::Enospc,
                    _ => FaultKind::PermissionDenied,
                };
                // Roughly half the injected write faults tear: the torn
                // prefix length is drawn from the hash too.
                let tear = if (hash >> 12) & 1 == 0 {
                    Some(((hash >> 13) % 512) as usize)
                } else {
                    None
                };
                return Decision::Inject(Fault { kind, tear });
            }
        }
        Decision::Pass
    }
}

impl CacheIo for FaultyIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.decide(true) {
            Decision::Pass => self.inner.create_dir_all(path),
            Decision::Inject(fault) => Err(fault.kind.error()),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.decide(false) {
            Decision::Pass => self.inner.read(path),
            Decision::Inject(fault) => Err(fault.kind.error()),
        }
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.decide(true) {
            Decision::Pass => self.inner.write_file(path, bytes),
            Decision::Inject(fault) => {
                if let Some(tear) = fault.tear {
                    // A torn write: a prefix of the record lands on disk,
                    // then the operation fails. Best-effort — if even the
                    // torn write fails the outcome is simply "no bytes".
                    let torn = &bytes[..tear.min(bytes.len())];
                    let _ = self.inner.write_file(path, torn);
                }
                Err(fault.kind.error())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.decide(true) {
            Decision::Pass => self.inner.rename(from, to),
            Decision::Inject(fault) => Err(fault.kind.error()),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.decide(true) {
            Decision::Pass => self.inner.remove_file(path),
            Decision::Inject(fault) => Err(fault.kind.error()),
        }
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<DirEntry>> {
        match self.decide(false) {
            Decision::Pass => self.inner.list_dir(path),
            Decision::Inject(fault) => Err(fault.kind.error()),
        }
    }

    fn create_exclusive(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.decide(true) {
            Decision::Pass => self.inner.create_exclusive(path, bytes),
            Decision::Inject(fault) => Err(fault.kind.error()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wpsdm-storage-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fs_io_round_trips_files_and_lists_them() {
        let dir = temp_dir("fsio");
        let io = FsIo;
        io.create_dir_all(&dir).expect("mkdir");
        io.write_file(&dir.join("a.bin"), b"hello").expect("write");
        io.rename(&dir.join("a.bin"), &dir.join("b.bin"))
            .expect("rename");
        assert_eq!(io.read(&dir.join("b.bin")).expect("read"), b"hello");
        let entries = io.list_dir(&dir).expect("list");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "b.bin");
        assert_eq!(entries[0].len, 5);
        io.remove_file(&dir.join("b.bin")).expect("remove");
        assert!(io.list_dir(&dir).expect("list").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_exclusive_is_exclusive() {
        let dir = temp_dir("excl");
        let io = FsIo;
        io.create_dir_all(&dir).expect("mkdir");
        let lock = dir.join("evict.lock");
        io.create_exclusive(&lock, b"1").expect("first lock");
        let second = io.create_exclusive(&lock, b"2");
        assert_eq!(
            second.expect_err("second lock must fail").kind(),
            io::ErrorKind::AlreadyExists
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_decisions_are_deterministic() {
        let dir = temp_dir("seeded");
        FsIo.create_dir_all(&dir).expect("mkdir");
        let outcomes = |seed: u64| -> Vec<bool> {
            let io = FaultyIo::seeded(seed, 300);
            (0..64)
                .map(|i| io.write_file(&dir.join(format!("probe-{i}")), b"x").is_ok())
                .collect()
        };
        assert_eq!(outcomes(7), outcomes(7), "same seed, same faults");
        assert_ne!(outcomes(7), outcomes(8), "different seed, different faults");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scripted_faults_hit_their_operation_and_tear_writes() {
        let dir = temp_dir("scripted");
        FsIo.create_dir_all(&dir).expect("mkdir");
        let io = FaultyIo::with_plan(FaultPlan::new().fail_nth(1, FaultKind::Enospc).tear_write(
            2,
            3,
            FaultKind::Eio,
        ));
        // Op 0 passes.
        io.write_file(&dir.join("ok.bin"), b"abcdef").expect("op 0");
        // Op 1 fails ENOSPC, nothing written.
        let err = io
            .write_file(&dir.join("gone.bin"), b"abcdef")
            .expect_err("op 1 must fail");
        assert_eq!(err.raw_os_error(), Some(28), "must be ENOSPC-shaped");
        assert!(!dir.join("gone.bin").exists());
        // Op 2 tears: exactly 3 bytes land, then EIO.
        let err = io
            .write_file(&dir.join("torn.bin"), b"abcdef")
            .expect_err("op 2 must fail");
        assert_eq!(err.to_string(), FaultKind::Eio.error().to_string());
        assert_eq!(std::fs::read(dir.join("torn.bin")).expect("torn"), b"abc");
        assert_eq!(io.ops(), 3);
        assert_eq!(io.injected(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn abort_fails_everything_from_the_abort_point() {
        let dir = temp_dir("abort");
        FsIo.create_dir_all(&dir).expect("mkdir");
        let io = FaultyIo::with_plan(FaultPlan::new().abort_at(1, 2));
        io.write_file(&dir.join("before.bin"), b"abcd")
            .expect("op 0");
        let err = io
            .write_file(&dir.join("during.bin"), b"abcd")
            .expect_err("abort op");
        assert_eq!(err.to_string(), FaultKind::Eio.error().to_string());
        assert_eq!(
            std::fs::read(dir.join("during.bin")).expect("torn"),
            b"ab",
            "the aborted write persists its torn prefix"
        );
        assert!(io.aborted());
        // Everything after the abort fails, reads and cleanup included.
        assert!(io.read(&dir.join("before.bin")).is_err());
        assert!(io.remove_file(&dir.join("before.bin")).is_err());
        assert!(dir.join("before.bin").exists(), "cleanup never ran");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_fails_mutations_but_allows_reads() {
        let dir = temp_dir("readonly");
        FsIo.create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("existing.bin"), b"data").expect("seed file");
        let io = FaultyIo::read_only();
        assert_eq!(
            io.write_file(&dir.join("new.bin"), b"x")
                .expect_err("writes must fail")
                .kind(),
            io::ErrorKind::PermissionDenied
        );
        assert_eq!(
            io.read(&dir.join("existing.bin")).expect("reads pass"),
            b"data"
        );
        assert_eq!(io.list_dir(&dir).expect("lists pass").len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_env_value_parses_seed_and_permille() {
        assert!(FaultyIo::from_env_value("7").is_some());
        assert!(FaultyIo::from_env_value("7:250").is_some());
        assert!(FaultyIo::from_env_value(" 7 : 250 ").is_some());
        assert!(FaultyIo::from_env_value("nonsense").is_none());
        assert!(FaultyIo::from_env_value("7:many").is_none());
        assert!(FaultyIo::from_env_value("").is_none());
    }
}
