//! Figure 5 — PC-based versus XOR-based way-prediction.
//!
//! The PC is available early (the prediction is timely) but only reflects
//! per-instruction block locality, so its accuracy is modest (~60 %). The
//! XOR approximation of the address is more accurate (~70 %) but arrives too
//! late: the paper shows its table lookup would sit on the cache critical
//! path, which is why it ultimately rejects the scheme. Energy-delay
//! reductions are 63 % (PC) and 64 % (XOR) at 2.9 % / 2.3 % degradation.

use serde::{Deserialize, Serialize};
use wp_cache::{DCachePolicy, L1Config};

use crate::compare::DcacheFigure;
use crate::engine::{SimEngine, SimMatrix, SimPlan};
use crate::runner::RunOptions;

/// The regenerated Figure 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// The underlying comparison (PC and XOR way-prediction vs. parallel).
    pub figure: DcacheFigure,
}

const TITLE: &str =
    "Figure 5: PC- and XOR-based way-prediction, relative to 1-cycle parallel access";
const POLICIES: [DCachePolicy; 2] = [DCachePolicy::WayPredictPc, DCachePolicy::WayPredictXor];
const PAPER: [(&str, f64, f64); 2] = [("waypred-pc", 63.0, 2.9), ("waypred-xor", 64.0, 2.3)];

/// The simulation points Figure 5 needs.
pub fn plan(options: &RunOptions) -> SimPlan {
    DcacheFigure::plan(&POLICIES, L1Config::paper_dcache(), options)
}

/// Renders Figure 5 from an executed matrix containing [`plan`]'s points.
pub fn from_matrix(matrix: &SimMatrix, options: &RunOptions) -> Fig5Result {
    Fig5Result {
        figure: DcacheFigure::from_matrix(
            matrix,
            TITLE,
            &POLICIES,
            L1Config::paper_dcache(),
            options,
            &PAPER,
        ),
    }
}

/// Regenerates Figure 5 standalone (plans, executes, renders).
pub fn run(options: &RunOptions) -> Fig5Result {
    from_matrix(&SimEngine::default().run(&plan(options)), options)
}

impl Fig5Result {
    /// Renders the figure data as text.
    pub fn to_table(&self) -> String {
        self.figure.to_table()
    }

    /// Measured average prediction accuracy of the PC- and XOR-based
    /// schemes, as fractions.
    pub fn average_accuracies(&self) -> (f64, f64) {
        let acc = |policy: DCachePolicy| {
            self.figure
                .averages
                .iter()
                .find(|r| r.policy == policy.label())
                .map(|r| r.way_prediction_accuracy)
                .unwrap_or(0.0)
        };
        (
            acc(DCachePolicy::WayPredictPc),
            acc(DCachePolicy::WayPredictXor),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_is_more_accurate_than_pc() {
        let result = run(&RunOptions::quick());
        let (pc, xor) = result.average_accuracies();
        assert!(pc > 0.35 && pc < 0.95, "pc accuracy {pc}");
        assert!(xor > pc - 0.03, "xor ({xor}) should not trail pc ({pc})");
    }

    #[test]
    fn both_schemes_save_energy_with_small_degradation() {
        let result = run(&RunOptions::quick());
        for policy in [DCachePolicy::WayPredictPc, DCachePolicy::WayPredictXor] {
            let savings = result.figure.average_savings(policy).expect("present");
            let degradation = result.figure.average_degradation(policy).expect("present");
            assert!(savings > 0.35, "{policy}: savings {savings}");
            assert!(degradation < 0.08, "{policy}: degradation {degradation}");
        }
    }
}
