//! Table 4 — d-cache miss rates under direct-mapped and 4-way
//! set-associative organisations.
//!
//! These miss rates motivate selective direct-mapping: the gap between the
//! direct-mapped and 4-way columns is what conflicting accesses cost, and it
//! is small for most benchmarks (swim even inverts it), which is why most
//! accesses can safely use direct mapping.

use serde::{Deserialize, Serialize};
use wp_cache::{DCacheController, DCachePolicy, L1Config};
use wp_workloads::{Benchmark, OpKind, TraceConfig, TraceGenerator};

use crate::engine::{available_threads, parallel_map, SimMatrix, SimPlan};
use crate::report::TextTable;
use crate::runner::RunOptions;

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Measured direct-mapped miss rate (percent).
    pub direct_mapped: f64,
    /// The paper's direct-mapped miss rate (percent).
    pub paper_direct_mapped: f64,
    /// Measured 4-way set-associative miss rate (percent).
    pub set_associative: f64,
    /// The paper's 4-way miss rate (percent).
    pub paper_set_associative: f64,
}

/// The regenerated Table 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Result {
    /// One row per benchmark.
    pub rows: Vec<Table4Row>,
}

/// Measures the miss rate of `benchmark` on a 16 KB cache with the given
/// associativity by replaying the trace's loads and stores through a
/// conventional parallel-access controller.
pub fn miss_rate_percent(benchmark: Benchmark, associativity: usize, options: &RunOptions) -> f64 {
    let config = L1Config::paper_dcache().with_associativity(associativity);
    let mut cache = DCacheController::new(config, DCachePolicy::Parallel)
        .expect("16 KB caches of power-of-two associativity are valid");
    let trace = TraceGenerator::new(
        TraceConfig::new(benchmark)
            .with_ops(options.ops)
            .with_seed(options.seed),
    );
    for op in trace {
        match op.kind {
            OpKind::Load { addr, approx_addr } => {
                cache.load(op.pc, addr, approx_addr);
            }
            OpKind::Store { addr } => {
                cache.store(op.pc, addr);
            }
            _ => {}
        }
    }
    cache.miss_rate_percent()
}

/// The simulation points Table 4 needs: none — the miss rates come from
/// bare-controller trace replays, not full-machine simulations.
pub fn plan(_options: &RunOptions) -> SimPlan {
    SimPlan::new()
}

/// Renders Table 4; the matrix is unused (trace-replay result), accepted
/// for interface uniformity with the simulated figures. Uses all available
/// cores; binaries honouring `--threads` call [`run_threaded`] instead.
pub fn from_matrix(_matrix: &SimMatrix, options: &RunOptions) -> Table4Result {
    run(options)
}

/// Regenerates Table 4 on all available cores.
pub fn run(options: &RunOptions) -> Table4Result {
    run_threaded(options, available_threads())
}

/// Regenerates Table 4. The per-benchmark trace replays are independent, so
/// they run in parallel on `threads` workers.
pub fn run_threaded(options: &RunOptions, threads: usize) -> Table4Result {
    let benchmarks = Benchmark::all();
    let rows = parallel_map(threads, &benchmarks, |&b| {
        let profile = b.profile();
        Table4Row {
            benchmark: b.name().to_string(),
            direct_mapped: miss_rate_percent(b, 1, options),
            paper_direct_mapped: profile.paper_dm_miss_rate,
            set_associative: miss_rate_percent(b, 4, options),
            paper_set_associative: profile.paper_sa_miss_rate,
        }
    });
    Table4Result { rows }
}

impl Table4Result {
    /// Renders the table as text.
    pub fn to_table(&self) -> String {
        let mut table = TextTable::new(vec![
            "benchmark",
            "direct-mapped %",
            "paper",
            "4-way %",
            "paper",
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.benchmark.clone(),
                format!("{:.1}", row.direct_mapped),
                format!("{:.1}", row.paper_direct_mapped),
                format!("{:.1}", row.set_associative),
                format!("{:.1}", row.paper_set_associative),
            ]);
        }
        format!("Table 4: d-cache miss rates\n{}", table.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapped_misses_more_except_swim() {
        let options = RunOptions::quick().with_ops(120_000);
        let result = run(&options);
        assert_eq!(result.rows.len(), 11);
        for row in &result.rows {
            if row.benchmark == "swim" {
                assert!(
                    row.set_associative > row.direct_mapped,
                    "swim must show the LRU pathology: {row:?}"
                );
            } else {
                assert!(
                    row.direct_mapped >= row.set_associative - 0.3,
                    "direct-mapped should miss at least as much: {row:?}"
                );
            }
        }
    }

    #[test]
    fn renders_every_benchmark() {
        let result = run(&RunOptions::quick().with_ops(30_000));
        let text = result.to_table();
        for b in Benchmark::all() {
            assert!(text.contains(b.name()));
        }
    }
}
