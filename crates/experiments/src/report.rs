//! Plain-text table rendering shared by every experiment, plus JSON output
//! helpers for EXPERIMENTS.md.

use serde::Serialize;

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use wp_experiments::TextTable;
///
/// let mut table = TextTable::new(vec!["benchmark", "miss %"]);
/// table.add_row(vec!["gcc".to_string(), format!("{:.1}", 3.3)]);
/// let rendered = table.render();
/// assert!(rendered.contains("gcc"));
/// assert!(rendered.contains("3.3"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (short rows are padded with empty cells).
    pub fn add_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let format_row = |cells: &[String], widths: &[usize]| -> String {
            let empty = String::new();
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:<width$}  "));
            }
            line.trim_end().to_string()
        };
        if !self.headers.is_empty() {
            out.push_str(&format_row(&self.headers, &widths));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&format_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn percent(fraction: f64) -> String {
    format!("{:.1}", fraction * 100.0)
}

/// Formats a relative quantity with two decimals.
pub fn ratio(value: f64) -> String {
    format!("{value:.2}")
}

/// Serialises any experiment result to pretty JSON (used by the binaries'
/// `--json` flag and by EXPERIMENTS.md regeneration).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\": \"{e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.add_row(vec!["a".into(), "1".into()]);
        t.add_row(vec!["long-name".into(), "2".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // The value column starts at the same offset in both data rows.
        let offset = lines[2].find('1').expect("value present");
        assert_eq!(lines[3].find('2').expect("value present"), offset);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["x".into()]);
        assert!(t.render().lines().count() >= 3);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(percent(0.6934), "69.3");
        assert_eq!(ratio(0.3111), "0.31");
    }

    #[test]
    fn json_serialises_structs() {
        #[derive(Serialize)]
        struct S {
            x: u32,
        }
        assert!(to_json(&S { x: 3 }).contains("\"x\": 3"));
    }
}
