//! Figure 11 — overall processor energy and energy-delay.
//!
//! Combining selective-DM + way-prediction for the d-cache with
//! way-prediction for the i-cache cuts most of the L1 energy, but the L1s
//! are only 10–16 % of overall processor energy, so the paper reports ~9 %
//! overall energy savings and 8 % energy-delay savings, against a 10 % bound
//! for perfect way-prediction with no performance degradation.

use serde::{Deserialize, Serialize};
use wp_cache::{DCachePolicy, ICachePolicy};
use wp_energy::{EnergyDelay, ProcessorEnergyModel};
use wp_workloads::Benchmark;

use crate::engine::{SimEngine, SimMatrix, SimPlan};
use crate::report::TextTable;
use crate::runner::{MachineConfig, RunOptions};

/// One benchmark's overall-processor measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Overall processor energy relative to the baseline machine.
    pub relative_energy: f64,
    /// Overall processor energy-delay relative to the baseline machine.
    pub relative_energy_delay: f64,
    /// Performance degradation relative to the baseline (fraction).
    pub performance_degradation: f64,
    /// Energy-delay bound with perfect way-prediction (single-way access on
    /// every L1 read, no performance loss).
    pub perfect_relative_energy_delay: f64,
    /// Fraction of baseline processor energy dissipated in the two L1s.
    pub baseline_l1_fraction: f64,
}

/// The regenerated Figure 11.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Result {
    /// Per-benchmark rows.
    pub rows: Vec<Fig11Row>,
    /// Paper reference: average energy-delay savings (percent) of the real
    /// techniques and of the perfect-prediction bound.
    pub paper_average_savings: f64,
    /// Paper reference for the perfect-way-prediction bound (percent).
    pub paper_perfect_savings: f64,
}

/// The combined-technique machine the figure measures.
fn technique_machine() -> MachineConfig {
    MachineConfig::baseline()
        .with_dpolicy(DCachePolicy::SelDmWayPredict)
        .with_ipolicy(ICachePolicy::WayPredict)
}

/// The simulation points Figure 11 needs: the baseline machine and the
/// combined d+i technique on every benchmark.
pub fn plan(options: &RunOptions) -> SimPlan {
    let mut plan = SimPlan::new();
    plan.add_all_benchmarks(MachineConfig::baseline(), *options);
    plan.add_all_benchmarks(technique_machine(), *options);
    plan
}

/// Renders Figure 11 from an executed matrix containing [`plan`]'s points.
pub fn from_matrix(matrix: &SimMatrix, options: &RunOptions) -> Fig11Result {
    let model = ProcessorEnergyModel::default();
    let baseline_machine = MachineConfig::baseline();
    let technique_machine = technique_machine();

    let rows = Benchmark::all()
        .iter()
        .map(|&benchmark| {
            let baseline = matrix.require(benchmark, &baseline_machine, options);
            let technique = matrix.require(benchmark, &technique_machine, options);

            let metrics = technique.processor_relative_to(baseline, &model);

            // Perfect way-prediction bound: every L1 read costs a single-way
            // probe, stores and refills are unchanged, and performance is
            // identical to the baseline.
            let base = baseline;
            let d_model = wp_energy::CacheEnergyModel::new(
                baseline_machine.l1d.geometry().expect("valid geometry"),
            );
            let i_model = wp_energy::CacheEnergyModel::new(
                baseline_machine.l1i.geometry().expect("valid geometry"),
            );
            let perfect_d = base.dcache.loads as f64 * d_model.single_way_read_energy()
                + base.dcache.stores as f64 * d_model.write_energy()
                + base.dcache.misses() as f64 * d_model.data_way_write_energy();
            let perfect_i = base.icache.fetches as f64 * i_model.single_way_read_energy()
                + base.icache.fetch_misses as f64 * i_model.data_way_write_energy();
            let perfect_energy = model.total_energy(&base.activity, perfect_i, perfect_d);
            let perfect = EnergyDelay::new(perfect_energy, base.cycles)
                .relative_to(&base.processor_energy_delay(&model));

            Fig11Row {
                benchmark: benchmark.name().to_string(),
                relative_energy: metrics.relative_energy,
                relative_energy_delay: metrics.relative_energy_delay,
                performance_degradation: technique.performance_degradation_vs(baseline),
                perfect_relative_energy_delay: perfect.relative_energy_delay,
                baseline_l1_fraction: base.l1_energy_fraction(&model),
            }
        })
        .collect();

    Fig11Result {
        rows,
        paper_average_savings: 8.0,
        paper_perfect_savings: 10.0,
    }
}

/// Regenerates Figure 11 standalone (plans, executes, renders).
pub fn run(options: &RunOptions) -> Fig11Result {
    from_matrix(&SimEngine::default().run(&plan(options)), options)
}

impl Fig11Result {
    /// Average measured energy-delay savings (fraction).
    pub fn average_savings(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        1.0 - self
            .rows
            .iter()
            .map(|r| r.relative_energy_delay)
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Average perfect-prediction bound savings (fraction).
    pub fn average_perfect_savings(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        1.0 - self
            .rows
            .iter()
            .map(|r| r.perfect_relative_energy_delay)
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Average baseline L1 energy fraction.
    pub fn average_l1_fraction(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .map(|r| r.baseline_l1_fraction)
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Renders the figure data as text.
    pub fn to_table(&self) -> String {
        let mut table = TextTable::new(vec![
            "benchmark",
            "rel. energy",
            "rel. E*D",
            "perf. degr. %",
            "perfect E*D",
            "L1 fraction %",
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.benchmark.clone(),
                format!("{:.3}", row.relative_energy),
                format!("{:.3}", row.relative_energy_delay),
                format!("{:.1}", row.performance_degradation * 100.0),
                format!("{:.3}", row.perfect_relative_energy_delay),
                format!("{:.1}", row.baseline_l1_fraction * 100.0),
            ]);
        }
        format!(
            "Figure 11: overall processor energy-delay\n{}\nAverage savings: {:.1} % (paper {:.0} %); \
             perfect bound {:.1} % (paper {:.0} %); L1 fraction {:.1} %\n",
            table.render(),
            self.average_savings() * 100.0,
            self.paper_average_savings,
            self.average_perfect_savings() * 100.0,
            self.paper_perfect_savings,
            self.average_l1_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overall_savings_are_bounded_by_the_perfect_case() {
        let result = run(&RunOptions::quick());
        let savings = result.average_savings();
        let perfect = result.average_perfect_savings();
        assert!(savings > 0.02, "savings {savings}");
        assert!(
            perfect >= savings - 0.01,
            "perfect {perfect} vs real {savings}"
        );
        assert!(perfect < 0.25, "perfect bound {perfect} should be modest");
        // The L1s are a minority of processor energy (the 10-16 % band, with
        // slack for workload variation).
        let fraction = result.average_l1_fraction();
        assert!(fraction > 0.05 && fraction < 0.25, "L1 fraction {fraction}");
    }
}
