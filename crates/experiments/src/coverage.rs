//! The (policy × config-axis × outcome-class) coverage harness.
//!
//! The adversarial workload profiles (`wp_workloads::ProfileSpec`) exist to
//! *reach* simulator states the paper's benchmarks visit only incidentally:
//! mispredicted-way probes, selective-DM fallbacks to the set-associative
//! side, victim-list conflicts, dirty write-backs, L2 re-hits, stale fetch
//! way fields. This module turns one profile run into an explicit coverage
//! matrix — one row per (d-cache policy, configuration axis), one column
//! per outcome class — and hard-asserts that every cell a profile was
//! *designed* to reach is in fact non-zero ([`check_designed_cells`]).
//!
//! Three surfaces consume it:
//!
//! * the `coverage_report` binary prints the matrix and enforces the
//!   designed cells (CI runs it and uploads the JSON artifact);
//! * the `coverage` golden snapshot (`tests/golden/coverage.json`) pins
//!   every count at [`crate::conformance::GOLDEN_OPTIONS`], so any counter
//!   drift shows up as a reviewable diff;
//! * `run_all --profile <file>` appends the matrix for an on-disk profile
//!   to its report.
//!
//! A [`reference_report`] over two paper benchmarks rides along so classes
//! the adversarial generators deliberately do not emit (return-stack way
//! hits need call/return pairs) still have a covering cell —
//! [`check_taxonomy`] proves no outcome class is dead across the union.

use serde::Serialize;
use wp_cache::{DCachePolicy, ICachePolicy, L1Config};
use wp_cpu::SimResult;
use wp_workloads::{Benchmark, ProfileSpec, WorkloadSpec};

use crate::engine::{SimEngine, SimMatrix, SimPlan, SimPoint};
use crate::report::TextTable;
use crate::runner::{MachineConfig, RunOptions};

/// Every outcome class, in column order. Each is a counter (or counter
/// difference) of [`SimResult`]; see [`outcome_counts`] for the mapping.
pub const OUTCOME_CLASSES: [&str; 14] = [
    "single_way_hit",     // loads that hit their one probed way first try
    "mispredicted_way",   // loads needing a corrective second probe
    "dm_side",            // selective-DM loads probing only the DM way
    "sa_side",            // selective-DM loads predicted conflicting (SA)
    "parallel",           // conventional parallel probes
    "sequential",         // tag-then-data sequential probes
    "victim_list",        // blocks placed SA on the victim list's say-so
    "dirty_eviction",     // evictions that wrote back a dirty block
    "l2_hit",             // L1 misses serviced by the L2
    "l2_miss",            // L1 misses that fell through to memory
    "sawp_correct",       // fetches whose way the SAWP supplied
    "btb_correct",        // fetches whose way a branch structure supplied
    "ras_correct",        // the return-address-stack subset of btb_correct
    "fetch_mispredicted", // fetches probing a stale predicted way
];

/// Projects one simulation result onto the outcome-class columns, in
/// [`OUTCOME_CLASSES`] order.
pub fn outcome_counts(result: &SimResult) -> [u64; 14] {
    let d = &result.dcache;
    let i = &result.icache;
    [
        d.single_way_load_hits,
        d.mispredicted_accesses,
        d.direct_mapped_accesses,
        d.seldm_predicted_sa,
        d.parallel_accesses,
        d.sequential_accesses,
        d.victim_list_hits,
        d.dirty_evictions,
        result.activity.l2_accesses - result.memory_accesses,
        result.memory_accesses,
        i.sawp_correct,
        i.btb_correct,
        i.ras_correct,
        i.mispredicted,
    ]
}

/// The configuration axes a profile sweeps, as (name, machine) pairs. The
/// d-cache policy is substituted per row; the i-cache always way-predicts
/// so the fetch-side classes are live.
pub fn config_axes() -> [(&'static str, MachineConfig); 4] {
    let base = MachineConfig::baseline().with_ipolicy(ICachePolicy::WayPredict);
    [
        ("base", base),
        (
            "assoc8",
            base.with_l1d(L1Config::paper_dcache().with_associativity(8)),
        ),
        (
            "lat2",
            base.with_l1d(L1Config::paper_dcache().with_base_latency(2)),
        ),
        (
            "table256",
            base.with_l1d(L1Config::paper_dcache().with_prediction_table_entries(256)),
        ),
    ]
}

/// The d-cache policies a profile sweeps: every concrete paper policy.
pub fn policies() -> [DCachePolicy; 7] {
    DCachePolicy::all()
}

/// The benchmark pair behind [`reference_report`]: ordinary call/return
/// heavy workloads covering the classes the adversarial generators do not
/// emit by design.
pub fn reference_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec::Benchmark(Benchmark::Li),
        WorkloadSpec::Benchmark(Benchmark::Gcc),
    ]
}

/// One (policy, configuration-axis) row of the matrix: outcome-class
/// counts summed over the profile's workloads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CoverageRow {
    /// D-cache policy label ([`DCachePolicy::label`]).
    pub policy: String,
    /// Configuration-axis name (see [`config_axes`]).
    pub axis: String,
    /// Counts in [`OUTCOME_CLASSES`] column order.
    pub counts: Vec<u64>,
}

/// The full coverage matrix for one profile (or reference workload set).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CoverageReport {
    /// Profile name the matrix was measured over.
    pub profile: String,
    /// The profile's scale tier (or `"reference"` for the benchmark rows).
    pub tier: String,
    /// Ops simulated per point.
    pub ops: usize,
    /// Workload stream seed.
    pub seed: u64,
    /// Column names, always [`OUTCOME_CLASSES`].
    pub classes: Vec<String>,
    /// One row per (policy, axis), policies major.
    pub rows: Vec<CoverageRow>,
}

impl CoverageReport {
    /// The count in one cell, or `None` if the row does not exist.
    pub fn count(&self, policy: DCachePolicy, axis: &str, class: &str) -> Option<u64> {
        let column = OUTCOME_CLASSES.iter().position(|c| *c == class)?;
        self.rows
            .iter()
            .find(|row| row.policy == policy.label() && row.axis == axis)
            .map(|row| row.counts[column])
    }

    /// True if the cell exists and is non-zero.
    pub fn reached(&self, policy: DCachePolicy, axis: &str, class: &str) -> bool {
        self.count(policy, axis, class).is_some_and(|n| n > 0)
    }

    /// Renders the matrix as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut headers = vec!["policy".to_string(), "axis".to_string()];
        headers.extend(OUTCOME_CLASSES.iter().map(|c| c.to_string()));
        let mut table = TextTable::new(headers);
        for row in &self.rows {
            let mut cells = vec![row.policy.clone(), row.axis.clone()];
            cells.extend(row.counts.iter().map(|n| n.to_string()));
            table.add_row(cells);
        }
        format!(
            "coverage `{}` (tier {}, ops {}, seed {})\n{}",
            self.profile,
            self.tier,
            self.ops,
            self.seed,
            table.render()
        )
    }
}

/// The simulation points one workload set needs: every workload × every
/// concrete d-cache policy × every configuration axis.
pub fn workload_plan(workloads: &[WorkloadSpec], options: &RunOptions) -> SimPlan {
    let mut plan = SimPlan::new();
    for workload in workloads {
        for (_, machine) in config_axes() {
            for policy in policies() {
                plan.add(SimPoint::with_workload(
                    workload.clone(),
                    machine.with_dpolicy(policy),
                    *options,
                ));
            }
        }
    }
    plan
}

/// [`workload_plan`] for a profile's scenarios.
pub fn profile_plan(profile: &ProfileSpec, options: &RunOptions) -> SimPlan {
    workload_plan(&profile.workloads(), options)
}

/// Builds the matrix for `workloads` from already-executed results.
///
/// # Panics
///
/// Panics if `matrix` is missing any point of
/// [`workload_plan`]`(workloads, options)`.
pub fn report_from_matrix(
    profile_name: &str,
    tier: &str,
    workloads: &[WorkloadSpec],
    matrix: &SimMatrix,
    options: &RunOptions,
) -> CoverageReport {
    let rows = policies()
        .iter()
        .flat_map(|&policy| {
            config_axes().into_iter().map(move |(axis, machine)| {
                let mut counts = [0u64; 14];
                for workload in workloads {
                    let result =
                        matrix.require_workload(workload, &machine.with_dpolicy(policy), options);
                    for (total, count) in counts.iter_mut().zip(outcome_counts(result)) {
                        *total += count;
                    }
                }
                CoverageRow {
                    policy: policy.label().to_string(),
                    axis: axis.to_string(),
                    counts: counts.to_vec(),
                }
            })
        })
        .collect();
    CoverageReport {
        profile: profile_name.to_string(),
        tier: tier.to_string(),
        ops: options.ops,
        seed: options.seed,
        classes: OUTCOME_CLASSES.iter().map(|c| c.to_string()).collect(),
        rows,
    }
}

/// [`report_from_matrix`] for a profile's scenarios.
pub fn profile_report(
    profile: &ProfileSpec,
    matrix: &SimMatrix,
    options: &RunOptions,
) -> CoverageReport {
    report_from_matrix(
        &profile.name,
        profile.tier.name(),
        &profile.workloads(),
        matrix,
        options,
    )
}

/// The benchmark-pair matrix over the base axis only (see
/// [`reference_workloads`]); `matrix` must hold [`reference_plan`]'s
/// points.
pub fn reference_report(matrix: &SimMatrix, options: &RunOptions) -> CoverageReport {
    let workloads = reference_workloads();
    let (axis, machine) = config_axes()[0];
    let rows = policies()
        .iter()
        .map(|&policy| {
            let mut counts = [0u64; 14];
            for workload in &workloads {
                let result =
                    matrix.require_workload(workload, &machine.with_dpolicy(policy), options);
                for (total, count) in counts.iter_mut().zip(outcome_counts(result)) {
                    *total += count;
                }
            }
            CoverageRow {
                policy: policy.label().to_string(),
                axis: axis.to_string(),
                counts: counts.to_vec(),
            }
        })
        .collect();
    CoverageReport {
        profile: "benchmarks".to_string(),
        tier: "reference".to_string(),
        ops: options.ops,
        seed: options.seed,
        classes: OUTCOME_CLASSES.iter().map(|c| c.to_string()).collect(),
        rows,
    }
}

/// The simulation points [`reference_report`] needs.
pub fn reference_plan(options: &RunOptions) -> SimPlan {
    let mut plan = SimPlan::new();
    let (_, machine) = config_axes()[0];
    for workload in reference_workloads() {
        for policy in policies() {
            plan.add(SimPoint::with_workload(
                workload.clone(),
                machine.with_dpolicy(policy),
                *options,
            ));
        }
    }
    plan
}

/// One cell a profile is designed to reach, and why.
#[derive(Debug, Clone, Copy)]
pub struct DesignedCell {
    /// The row's d-cache policy.
    pub policy: DCachePolicy,
    /// The row's configuration axis.
    pub axis: &'static str,
    /// The column.
    pub class: &'static str,
    /// The attack mechanism that reaches the cell.
    pub why: &'static str,
}

/// The cells every tier of the adversarial family must reach, plus the
/// extra thrash cells the stress and adversarial tiers add. The expected
/// tier is *designed* to stay inside the associativity (no evictions, no
/// refetch churn), so the eviction-driven cells apply only above it.
pub fn designed_cells(tier: &str) -> Vec<DesignedCell> {
    let cell = |policy, axis, class, why| DesignedCell {
        policy,
        axis,
        class,
        why,
    };
    let mut cells = vec![
        cell(
            DCachePolicy::Parallel,
            "base",
            "parallel",
            "the parallel policy probes every way on every load",
        ),
        cell(
            DCachePolicy::Sequential,
            "base",
            "sequential",
            "the sequential policy serialises tag and data on every load",
        ),
        cell(
            DCachePolicy::WayPredictPc,
            "base",
            "single_way_hit",
            "phase-flip private blocks keep stable ways the PC table learns",
        ),
        cell(
            DCachePolicy::WayPredictPc,
            "base",
            "mispredicted_way",
            "way-alias thrash folds distinct PCs onto one table entry",
        ),
        cell(
            DCachePolicy::WayPredictPc,
            "table256",
            "mispredicted_way",
            "the alias stride folds into smaller tables too (4096 B ≡ 0 mod 256 slots)",
        ),
        cell(
            DCachePolicy::SelDmWayPredict,
            "base",
            "dm_side",
            "phase-flip private blocks are non-conflicting, so the PC counter predicts DM",
        ),
        // The SA-side evidence the per-PC counter trains on is a re-hit in
        // a set-associative way. The adversarial chase rotates one block
        // more than the 4-way base cache holds, so on `base` every access
        // misses and the counter never sees the SA side — that signal moves
        // to the 8-way axis where the rotation fits. The lower tiers keep
        // the chase within 4 ways and train the counter on `base` directly.
        cell(
            DCachePolicy::SelDmWayPredict,
            if tier == "adversarial" {
                "assoc8"
            } else {
                "base"
            },
            "sa_side",
            "conflict-chase blocks share one DM line, driving the PC counter to the SA side",
        ),
        cell(
            DCachePolicy::SelDmWayPredict,
            "base",
            "victim_list",
            "chase blocks collide in the DM projection and land on the victim list",
        ),
        cell(
            DCachePolicy::Parallel,
            "base",
            "l2_miss",
            "cold first touches fall through the L2 to memory",
        ),
        cell(
            DCachePolicy::Parallel,
            "base",
            "sawp_correct",
            "steady-phase sequential block edges train the SAWP",
        ),
        cell(
            DCachePolicy::Parallel,
            "base",
            "btb_correct",
            "the generators' taken branches carry BTB way fields",
        ),
    ];
    if tier != "expected" {
        cells.extend([
            cell(
                DCachePolicy::Parallel,
                "base",
                "dirty_eviction",
                "conflict rotations above the associativity evict stored-to blocks",
            ),
            cell(
                DCachePolicy::Parallel,
                "base",
                "l2_hit",
                "evicted blocks are re-touched while still L2-resident",
            ),
            cell(
                DCachePolicy::Parallel,
                "base",
                "fetch_mispredicted",
                "the flip burst evicts the loop block and leaves stale fetch way fields",
            ),
        ]);
    }
    cells
}

/// Checks a profile report against [`designed_cells`]`(report.tier)`;
/// returns one message per unreached cell (empty means full coverage).
pub fn check_designed_cells(report: &CoverageReport) -> Vec<String> {
    designed_cells(&report.tier)
        .into_iter()
        .filter(|cell| !report.reached(cell.policy, cell.axis, cell.class))
        .map(|cell| {
            format!(
                "profile `{}` (tier {}) never reached ({}, {}, {}) — designed via: {}",
                report.profile,
                report.tier,
                cell.policy.label(),
                cell.axis,
                cell.class,
                cell.why
            )
        })
        .collect()
}

/// Checks that every outcome class is reached by at least one cell across
/// `reports` — no dead columns in the taxonomy. Returns one message per
/// dead class.
pub fn check_taxonomy(reports: &[CoverageReport]) -> Vec<String> {
    OUTCOME_CLASSES
        .iter()
        .enumerate()
        .filter(|&(column, _)| {
            !reports
                .iter()
                .flat_map(|r| r.rows.iter())
                .any(|row| row.counts[column] > 0)
        })
        .map(|(_, class)| format!("outcome class `{class}` is reached by no report cell"))
        .collect()
}

/// The full coverage artefact: the three built-in tier matrices plus the
/// benchmark reference matrix. This is the structure the `coverage` golden
/// snapshot pins and the `coverage_report` binary emits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CoverageArtefact {
    /// Tier matrices in [`wp_workloads::ProfileTier::all`] order, then the
    /// reference matrix.
    pub reports: Vec<CoverageReport>,
}

impl CoverageArtefact {
    /// The tier reports (everything except the trailing reference report).
    pub fn tier_reports(&self) -> &[CoverageReport] {
        &self.reports[..self.reports.len() - 1]
    }

    /// Every designed-cell and taxonomy failure across the artefact.
    pub fn failures(&self) -> Vec<String> {
        let mut failures: Vec<String> = self
            .tier_reports()
            .iter()
            .flat_map(check_designed_cells)
            .collect();
        failures.extend(check_taxonomy(&self.reports));
        failures
    }
}

/// The union plan behind [`CoverageArtefact`]: all three built-in tiers
/// plus the benchmark reference rows.
pub fn artefact_plan(options: &RunOptions) -> SimPlan {
    let mut plan = SimPlan::new();
    for profile in ProfileSpec::builtin_all() {
        plan.merge(profile_plan(&profile, options));
    }
    plan.merge(reference_plan(options));
    plan
}

/// Builds the full artefact from already-executed results ([`artefact_plan`]
/// points).
pub fn artefact_from_matrix(matrix: &SimMatrix, options: &RunOptions) -> CoverageArtefact {
    let mut reports: Vec<CoverageReport> = ProfileSpec::builtin_all()
        .iter()
        .map(|profile| profile_report(profile, matrix, options))
        .collect();
    reports.push(reference_report(matrix, options));
    CoverageArtefact { reports }
}

/// Standalone convenience: executes [`artefact_plan`] on `engine` and
/// renders the artefact.
pub fn run_artefact(engine: &SimEngine, options: &RunOptions) -> CoverageArtefact {
    artefact_from_matrix(&engine.run(&artefact_plan(options)), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::GOLDEN_OPTIONS;

    #[test]
    fn outcome_columns_and_counts_stay_in_lockstep() {
        // Any simulated result projects onto exactly one count per column.
        let result = crate::runner::simulate_workload(
            &WorkloadSpec::Benchmark(Benchmark::Li),
            &MachineConfig::baseline(),
            &RunOptions::quick().with_ops(2_000),
        );
        assert_eq!(outcome_counts(&result).len(), OUTCOME_CLASSES.len());
    }

    #[test]
    fn profile_plans_cover_policies_times_axes_times_scenarios() {
        let profile = ProfileSpec::builtin(wp_workloads::ProfileTier::Stress);
        let plan = profile_plan(&profile, &GOLDEN_OPTIONS);
        assert_eq!(
            plan.unique_points().len(),
            profile.scenarios.len() * policies().len() * config_axes().len()
        );
    }

    #[test]
    fn designed_cells_scale_with_the_tier() {
        let expected = designed_cells("expected").len();
        let stress = designed_cells("stress").len();
        assert!(stress > expected, "stress adds the eviction-driven cells");
        assert_eq!(designed_cells("adversarial").len(), stress);
        // Every designed cell names a real policy/axis/class combination.
        for cell in designed_cells("adversarial") {
            assert!(OUTCOME_CLASSES.contains(&cell.class));
            assert!(config_axes().iter().any(|(axis, _)| *axis == cell.axis));
        }
    }

    #[test]
    fn cell_lookup_distinguishes_rows_and_flags_missing_cells() {
        let report = CoverageReport {
            profile: "t".into(),
            tier: "stress".into(),
            ops: 1,
            seed: 0,
            classes: OUTCOME_CLASSES.iter().map(|c| c.to_string()).collect(),
            rows: vec![CoverageRow {
                policy: DCachePolicy::Parallel.label().to_string(),
                axis: "base".to_string(),
                counts: vec![0; 14],
            }],
        };
        assert_eq!(
            report.count(DCachePolicy::Parallel, "base", "parallel"),
            Some(0)
        );
        assert!(!report.reached(DCachePolicy::Parallel, "base", "parallel"));
        assert_eq!(
            report.count(DCachePolicy::Sequential, "base", "parallel"),
            None
        );
        // A zeroed stress report fails its designed cells with named rows.
        let failures = check_designed_cells(&report);
        assert!(!failures.is_empty());
        assert!(failures[0].contains("designed via"));
        // And an all-zero report set leaves the whole taxonomy dead.
        assert_eq!(check_taxonomy(&[report]).len(), OUTCOME_CLASSES.len());
    }
}
