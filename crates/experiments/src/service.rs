//! Cross-request singleflight over simulation points.
//!
//! The [`crate::engine::SimEngine`] dedups identical points *within one
//! plan*; a long-running daemon needs the same guarantee *across
//! concurrent requests*: when N clients ask for the same
//! [`SimPoint`] while it is in flight, exactly one simulation executes and
//! every caller observes the same outcome. [`PointService`] provides that
//! seam — a flight table keyed by the full point configuration, a
//! leader/follower join protocol, and a shared optional [`MatrixCache`]
//! behind the crate's circuit breaker, so cached, freshly simulated, and
//! coalesced responses are all bit-identical to the batch path
//! ([`crate::runner::simulate_workload`]).
//!
//! The `wp-serve` daemon drives this through its worker pool; the
//! [`PointService::run_point`] convenience (leader executes inline) is what
//! the singleflight proptests in `tests/singleflight.rs` exercise.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use wp_cpu::SimResult;

use crate::engine::{SimEngine, SimMatrix, SimPlan, SimPoint};
use crate::matrix_cache::{CacheHealth, MatrixCache};
use crate::runner::{simulate_workload_cancellable, CancelToken};

/// How long a sweep pass parks on one followed flight before re-checking
/// its own cancel token — bounds a sweep's reaction time to its deadline
/// while other requests' flights are in the air.
const SWEEP_FOLLOW_STEP: Duration = Duration::from_millis(100);

/// How a flight ended, as observed by every joined caller.
#[derive(Debug, Clone)]
pub enum FlightOutcome {
    /// The simulation completed; the result is shared by every caller and
    /// bit-identical to the batch executor's.
    Done(Arc<SimResult>),
    /// The leader's cancel token fired mid-simulation.
    Cancelled {
        /// Ops the leader consumed before the token fired.
        ops_completed: u64,
        /// Ops the run would have simulated.
        ops_requested: u64,
    },
    /// The leader was dropped without executing (worker shed or panicked);
    /// followers must retry or report overload.
    Shed,
}

/// The shared state of one in-flight point: the outcome slot plus the
/// condvar followers park on.
#[derive(Debug, Default)]
struct FlightState {
    outcome: Mutex<Option<FlightOutcome>>,
    done: Condvar,
}

/// A handle on an in-flight (or completed) point every joined caller
/// holds; [`Flight::wait`] parks until the leader publishes the outcome.
#[derive(Debug, Clone)]
pub struct Flight {
    state: Arc<FlightState>,
}

impl Flight {
    /// Blocks until the flight completes, or until `deadline` passes.
    /// `None` means the deadline expired with the flight still in the air —
    /// the outcome, when it lands, is still visible to other waiters.
    pub fn wait(&self, deadline: Option<Instant>) -> Option<FlightOutcome> {
        let mut outcome = self.state.outcome.lock().expect("flight lock poisoned");
        loop {
            if let Some(outcome) = outcome.as_ref() {
                return Some(outcome.clone());
            }
            match deadline {
                None => {
                    outcome = self.state.done.wait(outcome).expect("flight lock poisoned");
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let (guard, _timeout) = self
                        .state
                        .done
                        .wait_timeout(outcome, deadline - now)
                        .expect("flight lock poisoned");
                    outcome = guard;
                }
            }
        }
    }
}

/// The leader's obligation to execute a flight. Exactly one exists per
/// flight; dropping it without [`PointService::execute`] publishes
/// [`FlightOutcome::Shed`] and clears the flight-table entry, so followers
/// of a shed or panicked leader are woken instead of parked forever and
/// the next join opens a fresh flight.
#[derive(Debug)]
pub struct LeaderTicket {
    // Boxed so `Join::Leader` stays close in size to `Join::Follower`.
    point: Box<SimPoint>,
    state: Arc<FlightState>,
    service: Arc<ServiceState>,
    executed: bool,
}

/// Joining a flight either elects the caller leader (it must execute or
/// drop the ticket) or makes it a follower of the existing flight.
#[derive(Debug)]
pub enum Join {
    /// This caller opened the flight and owes it an execution.
    Leader(LeaderTicket, Flight),
    /// Another caller is already flying this point.
    Follower(Flight),
}

/// A singleflight executor over [`SimPoint`]s with an optional shared
/// [`MatrixCache`].
///
/// Cloning is cheap and shares the flight table, cache, and counters — the
/// daemon hands one clone to every worker and connection handler.
#[derive(Debug, Clone, Default)]
pub struct PointService {
    inner: Arc<ServiceState>,
}

#[derive(Debug, Default)]
struct ServiceState {
    flights: Mutex<HashMap<SimPoint, Arc<FlightState>>>,
    cache: Option<MatrixCache>,
    executed: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
}

impl ServiceState {
    /// Publishes `outcome` (first writer wins), removes the flight from the
    /// table so later joins open a fresh one, and wakes every follower.
    /// Poisoned locks are recovered rather than propagated — this runs from
    /// [`LeaderTicket::drop`] during unwinds.
    fn publish(&self, point: &SimPoint, state: &Arc<FlightState>, outcome: FlightOutcome) {
        {
            let mut flights = self
                .flights
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if let Some(current) = flights.get(point) {
                if Arc::ptr_eq(current, state) {
                    flights.remove(point);
                }
            }
        }
        let mut slot = state
            .outcome
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if slot.is_none() {
            *slot = Some(outcome);
        }
        drop(slot);
        state.done.notify_all();
    }
}

impl PointService {
    /// A service with no persistent cache: every led flight simulates.
    pub fn new() -> Self {
        Self::default()
    }

    /// A service backed by a shared [`MatrixCache`]: led flights consult
    /// the cache before simulating and store fresh results back. When the
    /// cache's circuit breaker trips, loads and stores degrade to
    /// pass-through and the service keeps computing — graceful degradation
    /// is the cache's contract, not special-cased here.
    pub fn with_cache(cache: MatrixCache) -> Self {
        Self {
            inner: Arc::new(ServiceState {
                cache: Some(cache),
                ..Default::default()
            }),
        }
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&MatrixCache> {
        self.inner.cache.as_ref()
    }

    /// The attached cache's health counters (all-zero without a cache) —
    /// what the daemon's `health` response and `run_all --health-json`
    /// both serialize.
    pub fn cache_health(&self) -> CacheHealth {
        self.inner
            .cache
            .as_ref()
            .map(MatrixCache::health)
            .unwrap_or_default()
    }

    /// Simulations actually executed (cache hits and coalesced joins do
    /// not count) — the counter the singleflight proptests pin down.
    pub fn executed(&self) -> u64 {
        self.inner.executed.load(Ordering::Relaxed)
    }

    /// Led flights served from the cache instead of simulating.
    pub fn cache_hits(&self) -> u64 {
        self.inner.cache_hits.load(Ordering::Relaxed)
    }

    /// Joins that found the point already in flight and followed it.
    pub fn coalesced(&self) -> u64 {
        self.inner.coalesced.load(Ordering::Relaxed)
    }

    /// Joins the flight for `point`, opening it if nobody is flying it.
    pub fn join(&self, point: &SimPoint) -> Join {
        let mut flights = self.inner.flights.lock().expect("flight table poisoned");
        if let Some(state) = flights.get(point) {
            self.inner.coalesced.fetch_add(1, Ordering::Relaxed);
            return Join::Follower(Flight {
                state: Arc::clone(state),
            });
        }
        let state = Arc::new(FlightState::default());
        flights.insert(point.clone(), Arc::clone(&state));
        Join::Leader(
            LeaderTicket {
                point: Box::new(point.clone()),
                state: Arc::clone(&state),
                service: Arc::clone(&self.inner),
                executed: false,
            },
            Flight { state },
        )
    }

    /// Executes a led flight: consult the cache, simulate under `token` if
    /// it misses, store fresh results back, and publish the outcome to
    /// every follower. Returns the published outcome.
    pub fn execute(&self, mut ticket: LeaderTicket, token: &CancelToken) -> FlightOutcome {
        ticket.executed = true;
        let outcome = self.compute(&ticket.point, token);
        self.inner
            .publish(&ticket.point, &ticket.state, outcome.clone());
        outcome
    }

    fn compute(&self, point: &SimPoint, token: &CancelToken) -> FlightOutcome {
        if token.is_cancelled() {
            return FlightOutcome::Cancelled {
                ops_completed: 0,
                ops_requested: point.options.ops as u64,
            };
        }
        if let Some(cache) = &self.inner.cache {
            if let Some(result) = cache.load(point) {
                self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
                return FlightOutcome::Done(Arc::new(result));
            }
        }
        self.inner.executed.fetch_add(1, Ordering::Relaxed);
        match simulate_workload_cancellable(&point.workload, &point.machine, &point.options, token)
        {
            Ok(result) => {
                if let Some(cache) = &self.inner.cache {
                    cache.store(point, &result);
                }
                FlightOutcome::Done(Arc::new(result))
            }
            Err(cancelled) => FlightOutcome::Cancelled {
                ops_completed: cancelled.ops_completed,
                ops_requested: cancelled.ops_requested,
            },
        }
    }

    /// Joins, and if elected leader executes inline — the convenience the
    /// daemon's workers and the proptests share: every caller of the same
    /// in-flight point gets the same outcome, and exactly one simulation
    /// runs.
    pub fn run_point(&self, point: &SimPoint, token: &CancelToken) -> FlightOutcome {
        match self.join(point) {
            Join::Leader(ticket, _flight) => self.execute(ticket, token),
            Join::Follower(flight) => flight
                .wait(None)
                .expect("an unbounded wait always observes the outcome"),
        }
    }

    /// Consults the attached cache for `point` without opening a flight.
    /// A hit counts toward [`cache_hits`](Self::cache_hits) — this is the
    /// sweep handler's warm pre-pass, and a warm point served here is
    /// indistinguishable (bytes and counters) from one served through a
    /// led flight.
    pub fn load_cached(&self, point: &SimPoint) -> Option<SimResult> {
        let result = self.inner.cache.as_ref()?.load(point)?;
        self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
        Some(result)
    }

    /// Publishes an externally computed `result` as a led flight's outcome —
    /// how a sweep's engine pass completes the flights its points lead,
    /// with byte-identical results to [`execute`](Self::execute) (the
    /// engine and the flight executor share one simulator and one cache).
    pub fn complete(&self, mut ticket: LeaderTicket, result: Arc<SimResult>) {
        ticket.executed = true;
        self.inner
            .publish(&ticket.point, &ticket.state, FlightOutcome::Done(result));
    }

    /// Runs a whole sweep through one gang-scheduled engine pass,
    /// coalescing with concurrent point requests.
    ///
    /// `points` is the sweep's deduplicated plan; `pending` the indices not
    /// yet streamed (the handler's warm pre-pass already answered the
    /// rest). Every pending point is joined: leaders are batched into one
    /// [`SimEngine::run_streaming`] pass (so a cold sweep gang-schedules
    /// exactly once), followers ride whatever flight another request
    /// already opened. `observer` fires once per streamed point, from
    /// worker threads, with the plan index.
    ///
    /// A followed flight's cancellation is **not** inherited: if the other
    /// request's leader is cancelled or shed, the point goes back to
    /// pending and a later round re-joins (leading a fresh flight) while
    /// this sweep's own `token` still has budget — the same re-lead rule
    /// the daemon applies to point requests.
    pub fn run_sweep(
        &self,
        points: &[SimPoint],
        pending: &[usize],
        engine: &SimEngine,
        token: &CancelToken,
        observer: &(dyn Fn(usize, &SimPoint, &SimResult) + Sync),
    ) -> SweepReport {
        let index_of: HashMap<&SimPoint, usize> =
            points.iter().enumerate().map(|(i, p)| (p, i)).collect();
        let streamed = AtomicU64::new(0);
        let mut report = SweepReport::default();
        let mut pending: Vec<usize> = pending.to_vec();
        while !pending.is_empty() && !token.is_cancelled() {
            let mut tickets: HashMap<usize, LeaderTicket> = HashMap::new();
            let mut followers: Vec<(usize, Flight)> = Vec::new();
            for &index in &pending {
                match self.join(&points[index]) {
                    Join::Leader(ticket, _flight) => {
                        tickets.insert(index, ticket);
                    }
                    Join::Follower(flight) => followers.push((index, flight)),
                }
            }
            let done = Mutex::new(Vec::new());
            if !tickets.is_empty() {
                report.engine_passes += 1;
                let mut plan = SimPlan::new();
                for &index in pending.iter().filter(|index| tickets.contains_key(index)) {
                    plan.add(points[index].clone());
                }
                let tickets = Mutex::new(tickets);
                let mut matrix = SimMatrix::new();
                let engine_observer = |point: &SimPoint, result: &SimResult| {
                    let Some(&index) = index_of.get(point) else {
                        return;
                    };
                    let ticket = tickets
                        .lock()
                        .expect("sweep ticket table poisoned")
                        .remove(&index);
                    if let Some(ticket) = ticket {
                        self.complete(ticket, Arc::new(result.clone()));
                    }
                    observer(index, point, result);
                    streamed.fetch_add(1, Ordering::Relaxed);
                    done.lock().expect("sweep done list poisoned").push(index);
                };
                engine.run_streaming(&mut matrix, &plan, token, &engine_observer);
                // The engine executed (or cache-loaded) on this service's
                // behalf: mirror the deltas into the service counters so
                // `health` and `metrics` see sweep work.
                self.inner
                    .executed
                    .fetch_add(matrix.executed_points() as u64, Ordering::Relaxed);
                self.inner
                    .cache_hits
                    .fetch_add(matrix.cache_hits() as u64, Ordering::Relaxed);
                // Tickets the cancelled engine pass never completed drop
                // here: their flights publish `Shed`, and followers (point
                // requests or other sweeps) re-lead under their own budget.
                drop(tickets);
            }
            for (index, flight) in followers {
                loop {
                    if token.is_cancelled() {
                        break;
                    }
                    match flight.wait(Some(Instant::now() + SWEEP_FOLLOW_STEP)) {
                        Some(FlightOutcome::Done(result)) => {
                            observer(index, &points[index], &result);
                            streamed.fetch_add(1, Ordering::Relaxed);
                            done.lock().expect("sweep done list poisoned").push(index);
                            break;
                        }
                        // The other request's flight was cancelled or shed
                        // under *its* deadline, not ours: leave the point
                        // pending and re-join next round.
                        Some(FlightOutcome::Cancelled { .. } | FlightOutcome::Shed) => break,
                        None => continue,
                    }
                }
            }
            let done = done.into_inner().expect("sweep done list poisoned");
            let before = pending.len();
            pending.retain(|index| !done.contains(index));
            if pending.len() == before && !pending.is_empty() {
                // A zero-progress round (every pending point followed a
                // flight that shed): yield briefly so the retry loop cannot
                // spin hot against a flapping leader.
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        report.streamed = streamed.into_inner() as usize;
        report.complete = pending.is_empty();
        report
    }
}

/// What one [`PointService::run_sweep`] call accomplished.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepReport {
    /// Points streamed by this call (observer invocations).
    pub streamed: usize,
    /// Gang-scheduled engine passes run (a cold, uncontended sweep runs
    /// exactly one).
    pub engine_passes: usize,
    /// True if every pending point was streamed before the token fired.
    pub complete: bool,
}

impl Drop for LeaderTicket {
    fn drop(&mut self) {
        if self.executed {
            return;
        }
        // The leader died (shed, panicked, or dropped): publish `Shed` so
        // followers wake and retry instead of parking forever, and clear
        // the table entry so the next join opens a fresh flight.
        self.service
            .publish(&self.point, &self.state, FlightOutcome::Shed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{MachineConfig, RunOptions};
    use wp_workloads::Benchmark;

    fn point(ops: usize) -> SimPoint {
        SimPoint::new(
            Benchmark::Li,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(ops),
        )
    }

    #[test]
    fn a_lone_caller_leads_and_executes_once() {
        let service = PointService::new();
        let point = point(2_000);
        let a = service.run_point(&point, &CancelToken::never());
        let b = service.run_point(&point, &CancelToken::never());
        assert_eq!(service.executed(), 2, "sequential calls are not coalesced");
        let (FlightOutcome::Done(a), FlightOutcome::Done(b)) = (a, b) else {
            panic!("uncancelled runs complete");
        };
        assert!(a.exact_eq(&b));
    }

    #[test]
    fn followers_share_the_leaders_result() {
        let service = PointService::new();
        let point = point(30_000);
        let threads = 6;
        let barrier = std::sync::Barrier::new(threads);
        let results: Vec<FlightOutcome> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        service.run_point(&point, &CancelToken::never())
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("worker panicked"))
                .collect()
        });
        assert!(
            service.executed() >= 1,
            "someone must have led the first flight"
        );
        assert!(
            service.executed() + service.coalesced() >= threads as u64,
            "every caller either led or followed"
        );
        let mut iter = results.into_iter();
        let FlightOutcome::Done(first) = iter.next().expect("six results") else {
            panic!("uncancelled runs complete");
        };
        for outcome in iter {
            let FlightOutcome::Done(result) = outcome else {
                panic!("uncancelled runs complete");
            };
            assert!(first.exact_eq(&result), "every caller gets the same bytes");
        }
    }

    #[test]
    fn dropped_leaders_shed_their_followers() {
        let service = PointService::new();
        let point = point(2_000);
        let Join::Leader(ticket, flight) = service.join(&point) else {
            panic!("first join leads");
        };
        let Join::Follower(follower) = service.join(&point) else {
            panic!("second join follows");
        };
        drop(ticket);
        assert!(matches!(
            follower.wait(None),
            Some(FlightOutcome::Shed) | None
        ));
        assert!(matches!(flight.wait(None), Some(FlightOutcome::Shed)));
        assert_eq!(service.executed(), 0);
        // The shed flight is not sticky: the next join opens a fresh one.
        assert!(matches!(service.join(&point), Join::Leader(..)));
    }

    #[test]
    fn cache_hits_bypass_execution_but_return_identical_bytes() {
        let dir =
            std::env::temp_dir().join(format!("wpsdm-service-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = PointService::with_cache(MatrixCache::new(&dir));
        let point = point(2_000);
        let FlightOutcome::Done(cold) = service.run_point(&point, &CancelToken::never()) else {
            panic!("uncancelled runs complete");
        };
        assert_eq!((service.executed(), service.cache_hits()), (1, 0));
        let FlightOutcome::Done(warm) = service.run_point(&point, &CancelToken::never()) else {
            panic!("uncancelled runs complete");
        };
        assert_eq!((service.executed(), service.cache_hits()), (1, 1));
        assert!(cold.exact_eq(&warm), "warm results are bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fired_tokens_cancel_with_progress() {
        let service = PointService::new();
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let token = CancelToken::never().with_flag(flag);
        let outcome = service.run_point(&point(5_000), &token);
        let FlightOutcome::Cancelled {
            ops_completed,
            ops_requested,
        } = outcome
        else {
            panic!("a pre-fired token must cancel");
        };
        assert_eq!(ops_requested, 5_000);
        assert_eq!(ops_completed, 0, "the token was checked before simulating");
    }

    #[test]
    fn waits_respect_deadlines() {
        let service = PointService::new();
        let point = point(2_000);
        let Join::Leader(_ticket, flight) = service.join(&point) else {
            panic!("first join leads");
        };
        // The leader never executes within the wait window.
        let waited = flight.wait(Some(Instant::now() + std::time::Duration::from_millis(20)));
        assert!(waited.is_none(), "the deadline expired mid-flight");
    }
}
