//! Figure 10 — way-prediction for i-caches at 2-, 4-, and 8-way
//! associativity.
//!
//! I-cache way-prediction rides on the fetch engine (BTB, SAWP, RAS), so it
//! is both timely and highly accurate (> 92 % for everything except fpppp,
//! whose code footprint thrashes the 16 KB i-cache). The paper measures
//! average energy-delay savings of 39 %, 64 % and 72 % for 2-, 4- and 8-way
//! i-caches with negligible performance degradation.

use serde::{Deserialize, Serialize};
use wp_cache::{ICachePolicy, L1Config};
use wp_workloads::Benchmark;

use crate::engine::{SimEngine, SimMatrix, SimPlan};
use crate::report::TextTable;
use crate::runner::{MachineConfig, RunOptions};

/// One (benchmark, associativity) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Row {
    /// Benchmark name.
    pub benchmark: String,
    /// I-cache associativity.
    pub associativity: usize,
    /// I-cache energy-delay relative to the parallel baseline of the same
    /// associativity.
    pub relative_energy_delay: f64,
    /// Execution-time increase relative to the baseline (fraction).
    pub performance_degradation: f64,
    /// Way-prediction accuracy over predicted fetches.
    pub accuracy: f64,
    /// Figure 10 access breakdown: (SAWP correct, BTB/RAS correct, no
    /// prediction, mispredicted) fractions of fetches.
    pub breakdown: [f64; 4],
}

/// The regenerated Figure 10.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Result {
    /// Per-(benchmark, associativity) rows.
    pub rows: Vec<Fig10Row>,
    /// Paper reference: (ways, average energy-delay savings percent).
    pub paper_savings: Vec<(usize, f64)>,
}

/// The paper's average savings per associativity (percent).
const PAPER_SAVINGS: [(usize, f64); 3] = [(2, 39.0), (4, 64.0), (8, 72.0)];

/// The parallel baseline machine for one i-cache associativity.
fn baseline_machine(ways: usize) -> MachineConfig {
    MachineConfig::baseline().with_l1i(L1Config::paper_icache().with_associativity(ways))
}

/// The simulation points Figure 10 needs: for each associativity, the
/// parallel baseline and the way-predicted machine on every benchmark.
pub fn plan(options: &RunOptions) -> SimPlan {
    let mut plan = SimPlan::new();
    for &(ways, _) in PAPER_SAVINGS.iter() {
        let baseline = baseline_machine(ways);
        plan.add_all_benchmarks(baseline, *options);
        plan.add_all_benchmarks(baseline.with_ipolicy(ICachePolicy::WayPredict), *options);
    }
    plan
}

/// Renders Figure 10 from an executed matrix containing [`plan`]'s points.
pub fn from_matrix(matrix: &SimMatrix, options: &RunOptions) -> Fig10Result {
    let mut rows = Vec::new();
    for &(ways, _) in PAPER_SAVINGS.iter() {
        let baseline_machine = baseline_machine(ways);
        let machine = baseline_machine.with_ipolicy(ICachePolicy::WayPredict);
        for &benchmark in Benchmark::all().iter() {
            let baseline = matrix.require(benchmark, &baseline_machine, options);
            let result = matrix.require(benchmark, &machine, options);
            let metrics = result.icache_relative_to(baseline);
            rows.push(Fig10Row {
                benchmark: benchmark.name().to_string(),
                associativity: ways,
                relative_energy_delay: metrics.relative_energy_delay,
                performance_degradation: result.performance_degradation_vs(baseline),
                accuracy: result.icache.way_prediction_accuracy(),
                breakdown: result.icache.access_breakdown(),
            });
        }
    }
    Fig10Result {
        rows,
        paper_savings: PAPER_SAVINGS.to_vec(),
    }
}

/// Regenerates Figure 10 standalone (plans, executes, renders).
pub fn run(options: &RunOptions) -> Fig10Result {
    from_matrix(&SimEngine::default().run(&plan(options)), options)
}

impl Fig10Result {
    /// Average savings (fraction) for one associativity.
    pub fn average_savings(&self, associativity: usize) -> f64 {
        let group: Vec<&Fig10Row> = self
            .rows
            .iter()
            .filter(|r| r.associativity == associativity)
            .collect();
        if group.is_empty() {
            return 0.0;
        }
        1.0 - group.iter().map(|r| r.relative_energy_delay).sum::<f64>() / group.len() as f64
    }

    /// Average accuracy (fraction) for one associativity.
    pub fn average_accuracy(&self, associativity: usize) -> f64 {
        let group: Vec<&Fig10Row> = self
            .rows
            .iter()
            .filter(|r| r.associativity == associativity)
            .collect();
        if group.is_empty() {
            return 0.0;
        }
        group.iter().map(|r| r.accuracy).sum::<f64>() / group.len() as f64
    }

    /// Renders the figure data as text.
    pub fn to_table(&self) -> String {
        let mut table = TextTable::new(vec![
            "benchmark",
            "ways",
            "rel. E*D",
            "perf. degr. %",
            "accuracy %",
            "SAWP %",
            "BTB/RAS %",
            "no-pred %",
            "mispred %",
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.benchmark.clone(),
                row.associativity.to_string(),
                format!("{:.2}", row.relative_energy_delay),
                format!("{:.1}", row.performance_degradation * 100.0),
                format!("{:.0}", row.accuracy * 100.0),
                format!("{:.0}", row.breakdown[0] * 100.0),
                format!("{:.0}", row.breakdown[1] * 100.0),
                format!("{:.0}", row.breakdown[2] * 100.0),
                format!("{:.0}", row.breakdown[3] * 100.0),
            ]);
        }
        let mut out = format!("Figure 10: i-cache way-prediction\n{}", table.render());
        out.push_str("\nAverages (measured vs paper savings %):\n");
        for &(ways, paper) in &self.paper_savings {
            out.push_str(&format!(
                "  {ways}-way: {:.0} % vs {paper} % (accuracy {:.0} %)\n",
                self.average_savings(ways) * 100.0,
                self.average_accuracy(ways) * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_grow_with_associativity_and_accuracy_is_high() {
        let result = run(&RunOptions::quick());
        let s2 = result.average_savings(2);
        let s4 = result.average_savings(4);
        let s8 = result.average_savings(8);
        assert!(s2 < s4 && s4 < s8, "savings {s2} {s4} {s8}");
        assert!(s8 > 0.55, "8-way savings {s8}");
        assert!(result.average_accuracy(4) > 0.80);
        // fpppp is the accuracy outlier.
        let fpppp = result
            .rows
            .iter()
            .find(|r| r.benchmark == "fpppp" && r.associativity == 4)
            .expect("fpppp row");
        let others_min = result
            .rows
            .iter()
            .filter(|r| r.associativity == 4 && r.benchmark != "fpppp")
            .map(|r| r.accuracy)
            .fold(1.0_f64, f64::min);
        assert!(
            fpppp.accuracy <= others_min + 0.05,
            "fpppp ({}) should be the least accurate (others >= {others_min})",
            fpppp.accuracy
        );
    }
}
