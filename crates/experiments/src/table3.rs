//! Table 3 — relative cache energy of each access type.
//!
//! The paper's Table 3 lists, for the 16 KB 4-way L1 and a 0.25 µm process,
//! the energy of every access type relative to a parallel read. This module
//! regenerates the table from the analytic energy model.

use serde::{Deserialize, Serialize};
use wp_cache::L1Config;
use wp_energy::{CacheEnergyModel, RelativeEnergyTable};

use crate::engine::{SimMatrix, SimPlan};
use crate::report::TextTable;
use crate::runner::RunOptions;

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Description of the access type.
    pub component: String,
    /// Energy relative to a parallel read, as measured by our model.
    pub measured: f64,
    /// The value the paper reports (None for rows the paper does not list,
    /// e.g. the mispredicted access).
    pub paper: Option<f64>,
}

/// The regenerated Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Result {
    /// Rows in the paper's order.
    pub rows: Vec<Table3Row>,
}

/// Paper reference values for Table 3.
const PAPER_ROWS: [(&str, f64); 5] = [
    ("Parallel access cache read (4 ways read)", 1.00),
    (
        "Sequential-access, way-predicted, or direct-mapping access (1 way read)",
        0.21,
    ),
    ("Cache write", 0.24),
    ("Tag array energy (also included in all above rows)", 0.06),
    ("1024 entry x 4 bit prediction table read/write", 0.007),
];

/// The simulation points Table 3 needs: none — the table is analytic.
pub fn plan(_options: &RunOptions) -> SimPlan {
    SimPlan::new()
}

/// Renders Table 3; the matrix is unused (analytic result), accepted for
/// interface uniformity with the simulated figures.
pub fn from_matrix(_matrix: &SimMatrix, options: &RunOptions) -> Table3Result {
    run(options)
}

/// Regenerates Table 3. The [`RunOptions`] are accepted for interface
/// uniformity but unused — the table is analytic, not simulated.
pub fn run(_options: &RunOptions) -> Table3Result {
    let geometry = L1Config::paper_dcache()
        .geometry()
        .expect("the paper's L1 geometry is valid");
    let model = CacheEnergyModel::new(geometry);
    let table = RelativeEnergyTable::from_model(&model);
    let measured = [
        table.parallel_read,
        table.single_way_read,
        table.write,
        table.tag_array,
        table.prediction_table,
    ];
    let mut rows: Vec<Table3Row> = PAPER_ROWS
        .iter()
        .zip(measured.iter())
        .map(|(&(component, paper), &value)| Table3Row {
            component: component.to_string(),
            measured: value,
            paper: Some(paper),
        })
        .collect();
    rows.push(Table3Row {
        component: "Mispredicted access (2 ways read)".to_string(),
        measured: table.mispredicted_read,
        paper: None,
    });
    Table3Result { rows }
}

impl Table3Result {
    /// Renders the table as text.
    pub fn to_table(&self) -> String {
        let mut table = TextTable::new(vec!["Energy component", "measured", "paper"]);
        for row in &self.rows {
            table.add_row(vec![
                row.component.clone(),
                format!("{:.3}", row.measured),
                row.paper.map_or("-".to_string(), |p| format!("{p:.3}")),
            ]);
        }
        format!(
            "Table 3: cache energy relative to a parallel read\n{}",
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_within_tolerance() {
        let result = run(&RunOptions::quick());
        for row in &result.rows {
            if let Some(paper) = row.paper {
                let tolerance = if paper < 0.05 { 0.005 } else { 0.025 };
                assert!(
                    (row.measured - paper).abs() < tolerance,
                    "{}: measured {} vs paper {}",
                    row.component,
                    row.measured,
                    paper
                );
            }
        }
    }

    #[test]
    fn renders_all_rows() {
        let result = run(&RunOptions::quick());
        let text = result.to_table();
        assert!(text.contains("Cache write"));
        assert!(text.contains("Mispredicted"));
        assert_eq!(result.rows.len(), 6);
    }
}
