//! Figure 9 — selective-DM schemes on a 2-cycle (high-latency) d-cache.
//!
//! With a 2-cycle base access, a mispredicted or sequential access takes
//! three cycles. The paper shows the out-of-order core still absorbs the
//! occasional third cycle of selective-DM (69 % / 73 % savings at 2.0 % /
//! 3.1 % degradation) but not the third cycle on *every* access of a
//! sequential cache (~13 % degradation).

use serde::{Deserialize, Serialize};
use wp_cache::{DCachePolicy, L1Config};

use crate::compare::DcacheFigure;
use crate::engine::{SimEngine, SimMatrix, SimPlan};
use crate::runner::RunOptions;

/// The regenerated Figure 9.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Result {
    /// The comparison on the 2-cycle cache (against a 2-cycle parallel
    /// baseline).
    pub figure: DcacheFigure,
}

const TITLE: &str = "Figure 9: 2-cycle d-cache, relative to 2-cycle parallel access";
const POLICIES: [DCachePolicy; 3] = [
    DCachePolicy::SelDmWayPredict,
    DCachePolicy::SelDmSequential,
    DCachePolicy::Sequential,
];
const PAPER: [(&str, f64, f64); 3] = [
    ("seldm+waypred", 69.0, 2.0),
    ("seldm+sequential", 73.0, 3.1),
    ("sequential", 68.0, 13.0),
];

fn l1d_2cycle() -> L1Config {
    L1Config::paper_dcache().with_base_latency(2)
}

/// The simulation points Figure 9 needs.
pub fn plan(options: &RunOptions) -> SimPlan {
    DcacheFigure::plan(&POLICIES, l1d_2cycle(), options)
}

/// Renders Figure 9 from an executed matrix containing [`plan`]'s points.
pub fn from_matrix(matrix: &SimMatrix, options: &RunOptions) -> Fig9Result {
    Fig9Result {
        figure: DcacheFigure::from_matrix(matrix, TITLE, &POLICIES, l1d_2cycle(), options, &PAPER),
    }
}

/// Regenerates Figure 9 standalone (plans, executes, renders).
pub fn run(options: &RunOptions) -> Fig9Result {
    from_matrix(&SimEngine::default().run(&plan(options)), options)
}

impl Fig9Result {
    /// Renders the figure data as text.
    pub fn to_table(&self) -> String {
        self.figure.to_table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seldm_absorbs_the_extra_latency_sequential_does_not() {
        let result = run(&RunOptions::quick());
        let f = &result.figure;
        let seldm = f
            .average_degradation(DCachePolicy::SelDmWayPredict)
            .expect("present");
        let sequential = f
            .average_degradation(DCachePolicy::Sequential)
            .expect("present");
        assert!(
            sequential > 2.0 * seldm.max(0.005),
            "sequential ({sequential}) should degrade much more than selective-DM ({seldm})"
        );
        let savings = f
            .average_savings(DCachePolicy::SelDmSequential)
            .expect("present");
        assert!(savings > 0.5, "savings {savings}");
    }
}
