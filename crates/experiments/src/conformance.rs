//! Differential conformance: the optimized stack pinned to the `wp-oracle`
//! reference simulator, point by point, bit for bit.
//!
//! Every simulation point a consumer can ask for — any
//! ([`WorkloadSpec`], [`MachineConfig`], [`RunOptions`]) triple — must
//! produce the *same* [`SimResult`] from two independent implementations:
//!
//! * the **optimized** stack ([`crate::runner::simulate_workload`] /
//!   [`SimEngine`]): SoA tag stores, SWAR tag matching, monomorphized
//!   policy kernels, gang-scheduled shared streams;
//! * the **oracle** ([`wp_oracle::OracleProcessor`]): nested-`Vec` LRU
//!   sets, per-access policy `match`es, per-access energy-model
//!   evaluation, one micro-op at a time.
//!
//! "Same" means [`SimResult::exact_eq`] — every counter equal and every
//! energy/accuracy field identical down to the IEEE-754 bit pattern. The
//! two backends consume one materialized [`SharedStream`] through
//! independent readers (the optimized side in blocks, the oracle through
//! [`wp_workloads::BlockSourceIter`]), so a mismatch is always a modelling
//! divergence, never workload-generation noise.
//!
//! Three checking surfaces (see `docs/VALIDATION.md`):
//!
//! 1. [`check_plan`] — a whole [`SimPlan`] (the `conformance` binary runs
//!    the full `run_all` union plan: all 253 unique sweep points);
//! 2. [`random_points`] — a seeded random matrix over cache geometries,
//!    latencies, policies, core widths, and workloads (benchmarks,
//!    parameterised scenarios, recorded traces);
//! 3. golden snapshots — `tests/golden/*.json` holds every figure/table
//!    artefact rendered at [`GOLDEN_OPTIONS`]; [`check_goldens`] fails on
//!    any byte of drift and [`bless_goldens`] regenerates the files after
//!    an intentional change.

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wp_cache::{DCachePolicy, ICachePolicy, L1Config};
use wp_cpu::{CpuConfig, SimResult};
use wp_oracle::OracleProcessor;
use wp_workloads::{Benchmark, BlockSourceIter, Scenario, SharedStream, StreamKey, WorkloadSpec};

use crate::engine::{parallel_map, SimEngine, SimPlan, SimPoint};
use crate::runner::{MachineConfig, RunOptions};
use crate::{fig10, fig11, fig4, fig5, fig6, fig7, fig8, fig9, table3, table4, table5};

/// Simulates one point on the oracle backend, from a live workload stream —
/// the reference twin of [`crate::runner::simulate_workload`].
///
/// # Panics
///
/// Panics if `machine` contains an invalid cache configuration or a
/// trace-file workload cannot be re-opened, like the optimized twin.
pub fn oracle_simulate_workload(
    workload: &WorkloadSpec,
    machine: &MachineConfig,
    options: &RunOptions,
) -> SimResult {
    let mut cpu = oracle_processor(machine);
    let stream = workload
        .stream(options.ops, options.seed)
        .unwrap_or_else(|e| panic!("workload {workload} failed to open: {e}"));
    cpu.run(stream)
}

/// Simulates one machine on the oracle backend over an already-materialized
/// shared stream — the reference twin of
/// [`crate::runner::simulate_workload_shared`]. The stream fans out: any
/// number of optimized and oracle consumers replay the one
/// materialization through independent readers.
///
/// # Panics
///
/// Panics like [`oracle_simulate_workload`].
pub fn oracle_simulate_shared(stream: &SharedStream, machine: &MachineConfig) -> SimResult {
    let mut cpu = oracle_processor(machine);
    let reader = stream
        .reader()
        .unwrap_or_else(|e| panic!("shared workload stream failed to re-open: {e}"));
    cpu.run(BlockSourceIter::new(reader))
}

fn oracle_processor(machine: &MachineConfig) -> OracleProcessor {
    OracleProcessor::with_l1(
        machine.cpu,
        machine.l1d,
        machine.dpolicy,
        machine.l1i,
        machine.ipolicy,
    )
    .expect("experiment cache configurations must be valid")
}

/// The verdict for one checked point.
#[derive(Debug, Clone)]
pub struct PointReport {
    /// The point checked.
    pub point: SimPoint,
    /// The optimized stack's result.
    pub optimized: SimResult,
    /// The oracle's result.
    pub oracle: SimResult,
    /// Names of the fields whose bits differ (empty means conforming).
    pub diff: Vec<&'static str>,
}

impl PointReport {
    /// True if the two backends agreed bit for bit.
    pub fn matches(&self) -> bool {
        self.diff.is_empty()
    }
}

/// Checks every unique point of `plan`: the optimized side executes through
/// a fresh [`SimEngine`] (gang scheduling, SWAR, kernels — the real
/// production path, no persistent cache), the oracle side replays the same
/// materialized streams per-op, and each pair is compared bit for bit.
/// Returns one report per unique point, in plan order. Streams spill under
/// the default cap ([`wp_workloads::stream_memory_cap`]).
pub fn check_plan(plan: &SimPlan, threads: usize) -> Vec<PointReport> {
    check_plan_with(&SimEngine::new(threads), plan)
}

/// [`check_plan`] with an explicit spill cap for both backends: the
/// optimized engine via [`SimEngine::with_stream_memory_cap`], the
/// oracle's fan-out via [`SharedStream::materialize_capped`]. `None` uses
/// the default cap. A tiny cap forces every stream through the `WPTR`
/// spill codec — the conformance binary's `--stream-cap` and the spill
/// tests use this without touching process-global environment.
pub fn check_plan_capped(
    plan: &SimPlan,
    threads: usize,
    stream_cap: Option<usize>,
) -> Vec<PointReport> {
    let mut engine = SimEngine::new(threads);
    if let Some(cap) = stream_cap {
        engine = engine.with_stream_memory_cap(cap);
    }
    check_plan_with(&engine, plan)
}

/// [`check_plan`] against a caller-configured optimized engine — the
/// general entry: the engine's thread count, gang setting, and stream cap
/// all apply to the optimized side, and the oracle side mirrors the
/// thread count and cap. Any attached [`crate::MatrixCache`] is ignored:
/// conformance exists to *execute* both stacks, never to compare a stack
/// against its own stored output.
pub fn check_plan_with(engine: &SimEngine, plan: &SimPlan) -> Vec<PointReport> {
    check_matrix_against_oracle(&engine.clone().without_matrix_cache(), plan)
}

/// [`check_plan_with`], but *keeping* any [`crate::MatrixCache`] attached
/// to the optimized engine — the fault-schedule conformance entry. The
/// optimized side is allowed to load from and store to its (possibly
/// fault-injected) cache while the oracle executes everything from
/// scratch; the pair must still agree bit for bit, proving no injected
/// I/O failure, torn write, or recovery sweep can corrupt a result a
/// consumer sees. Driven by the `conformance` binary's `--faulty-cache`
/// flag and the CI reliability job (see `docs/RELIABILITY.md`).
pub fn check_plan_keeping_cache(engine: &SimEngine, plan: &SimPlan) -> Vec<PointReport> {
    check_matrix_against_oracle(engine, plan)
}

/// Shared body of [`check_plan_with`] / [`check_plan_keeping_cache`]: run
/// the optimized engine as configured, replay the same streams through the
/// oracle, compare bit for bit.
fn check_matrix_against_oracle(engine: &SimEngine, plan: &SimPlan) -> Vec<PointReport> {
    let threads = engine.threads();
    let points = plan.unique_points();
    let matrix = engine.run(plan);

    // Group the oracle's work by stream identity so each stream is
    // materialized once and fanned out, mirroring the optimized gangs.
    let mut keys: Vec<StreamKey> = Vec::new();
    let mut key_index = std::collections::HashMap::new();
    let jobs: Vec<(usize, usize)> = points
        .iter()
        .enumerate()
        .map(|(point_index, point)| {
            let key = StreamKey::new(
                point.workload.clone(),
                point.options.ops,
                point.options.seed,
            );
            let stream_index = *key_index.entry(key.clone()).or_insert_with(|| {
                keys.push(key);
                keys.len() - 1
            });
            (point_index, stream_index)
        })
        .collect();
    let cap = engine.stream_memory_cap();
    let streams: Vec<SharedStream> = parallel_map(threads, &keys, |key| {
        SharedStream::materialize_capped(key, cap)
            .unwrap_or_else(|e| panic!("workload stream {key} failed to materialize: {e}"))
    });
    let oracle_results: Vec<SimResult> =
        parallel_map(threads, &jobs, |&(point_index, stream_index)| {
            oracle_simulate_shared(&streams[stream_index], &points[point_index].machine)
        });

    points
        .into_iter()
        .zip(oracle_results)
        .map(|(point, oracle)| {
            let optimized = matrix
                .require_workload(&point.workload, &point.machine, &point.options)
                .clone();
            let diff = oracle.diff(&optimized);
            PointReport {
                point,
                optimized,
                oracle,
                diff,
            }
        })
        .collect()
}

/// Checks a single point end to end (both backends generate their own
/// stream) — the entry the property tests drive.
pub fn check_point(point: &SimPoint) -> PointReport {
    let optimized =
        crate::runner::simulate_workload(&point.workload, &point.machine, &point.options);
    let oracle = oracle_simulate_workload(&point.workload, &point.machine, &point.options);
    let diff = oracle.diff(&optimized);
    PointReport {
        point: point.clone(),
        optimized,
        oracle,
        diff,
    }
}

/// Draws `count` random (configuration, workload) points from `seed`.
///
/// The matrix spans cache geometry (sets × block size × associativity,
/// including direct-mapped), base latency, prediction-table and victim-list
/// sizing, all eight d-cache policies, both i-cache policies, core widths
/// and window sizes, and every workload family; pass `extra_workloads`
/// (e.g. trace-file specs captured beforehand) to mix recorded traces into
/// the rotation. The same `(count, seed)` always draws the same points.
pub fn random_points(count: usize, seed: u64, extra_workloads: &[WorkloadSpec]) -> Vec<SimPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let l1 = |rng: &mut StdRng| {
                let sets = [16usize, 32, 64, 128][rng.gen_range(0usize..4)];
                let block = [16usize, 32, 64][rng.gen_range(0usize..3)];
                let assoc = [1usize, 2, 4, 8][rng.gen_range(0usize..4)];
                L1Config {
                    size_bytes: sets * block * assoc,
                    block_bytes: block,
                    associativity: assoc,
                    base_latency: rng.gen_range(1u64..=2),
                    extra_probe_latency: 1,
                    prediction_table_entries: [256usize, 1024][rng.gen_range(0usize..2)],
                    victim_list_entries: [4usize, 16][rng.gen_range(0usize..2)],
                }
            };
            let dpolicy = [
                DCachePolicy::Parallel,
                DCachePolicy::Sequential,
                DCachePolicy::WayPredictPc,
                DCachePolicy::WayPredictXor,
                DCachePolicy::SelDmParallel,
                DCachePolicy::SelDmWayPredict,
                DCachePolicy::SelDmSequential,
                DCachePolicy::PerfectWayPredict,
            ][rng.gen_range(0usize..8)];
            let ipolicy =
                [ICachePolicy::Parallel, ICachePolicy::WayPredict][rng.gen_range(0usize..2)];
            let cpu = CpuConfig {
                fetch_width: [4usize, 8][rng.gen_range(0usize..2)],
                issue_width: [4usize, 8][rng.gen_range(0usize..2)],
                commit_width: [4usize, 8][rng.gen_range(0usize..2)],
                rob_entries: [32usize, 64][rng.gen_range(0usize..2)],
                lsq_entries: [16usize, 32][rng.gen_range(0usize..2)],
                ..CpuConfig::default()
            };
            let machine = MachineConfig {
                l1d: l1(&mut rng),
                l1i: l1(&mut rng),
                dpolicy,
                ipolicy,
                cpu,
            };
            // Workload rotation: every benchmark, then the six scenario
            // families (three steady, three adversarial), then any
            // caller-supplied specs — offsets derived from the benchmark
            // list so a new benchmark joins the draw automatically.
            let benchmarks = Benchmark::all();
            let scenario_base = benchmarks.len();
            let extra_base = scenario_base + 6;
            let workload = match rng.gen_range(0usize..extra_base + extra_workloads.len()) {
                i if i < scenario_base => WorkloadSpec::Benchmark(benchmarks[i]),
                i if i == scenario_base => WorkloadSpec::Scenario(Scenario::PointerChase {
                    nodes: [64u32, 512, 4096][rng.gen_range(0usize..3)],
                    node_stride: [32u32, 64, 160][rng.gen_range(0usize..3)],
                }),
                i if i == scenario_base + 1 => WorkloadSpec::Scenario(Scenario::StridedStream {
                    stride: [32u32, 64, 96][rng.gen_range(0usize..3)],
                    conflict_permille: [0u16, 50, 500][rng.gen_range(0usize..3)],
                }),
                i if i == scenario_base + 2 => WorkloadSpec::Scenario(Scenario::PhaseMix {
                    phase_ops: [500u32, 2000][rng.gen_range(0usize..2)],
                }),
                i if i == scenario_base + 3 => WorkloadSpec::Scenario(Scenario::WayAliasThrash {
                    table_entries: [256u32, 1024][rng.gen_range(0usize..2)],
                    group: [2u32, 4, 8][rng.gen_range(0usize..3)],
                }),
                i if i == scenario_base + 4 => WorkloadSpec::Scenario(Scenario::PhaseFlip {
                    period_ops: [256u32, 1024, 4096][rng.gen_range(0usize..3)],
                    conflict_ways: [2u32, 6, 8][rng.gen_range(0usize..3)],
                }),
                i if i == scenario_base + 5 => WorkloadSpec::Scenario(Scenario::ConflictChase {
                    blocks: [3u32, 4, 5][rng.gen_range(0usize..3)],
                }),
                i => extra_workloads[i - extra_base].clone(),
            };
            let options = RunOptions {
                ops: rng.gen_range(1_000usize..6_000),
                seed: rng.gen_range(0u64..1 << 32),
            };
            SimPoint::with_workload(workload, machine, options)
        })
        .collect()
}

/// The pinned run options every golden snapshot is rendered at. Small
/// enough that regenerating all eleven artefacts is a CI-speed operation,
/// long enough that every predictor and breakdown class is exercised.
pub const GOLDEN_OPTIONS: RunOptions = RunOptions {
    ops: 4_000,
    seed: 42,
};

/// The artefact names, in the paper's presentation order, followed by the
/// coverage matrix; golden files are `tests/golden/<name>.json`.
pub const GOLDEN_ARTEFACTS: [&str; 12] = [
    "table3", "table4", "fig4", "fig5", "fig6", "table5", "fig7", "fig8", "fig9", "fig10", "fig11",
    "coverage",
];

/// Renders all twelve artefacts at [`GOLDEN_OPTIONS`] as pretty JSON, in
/// [`GOLDEN_ARTEFACTS`] order: the eleven paper artefacts plus the
/// (policy × config-axis × outcome-class) coverage matrix over the
/// adversarial profile tiers. Always simulates fresh (no persistent
/// cache), on `threads` workers.
pub fn render_golden_artefacts(threads: usize) -> Vec<(&'static str, String)> {
    let options = GOLDEN_OPTIONS;
    let engine = SimEngine::new(threads);
    let matrix = engine.run(&crate::run_all_plan(&options));
    use crate::report::to_json;
    vec![
        ("table3", to_json(&table3::from_matrix(&matrix, &options))),
        ("table4", to_json(&table4::run_threaded(&options, threads))),
        ("fig4", to_json(&fig4::from_matrix(&matrix, &options))),
        ("fig5", to_json(&fig5::from_matrix(&matrix, &options))),
        ("fig6", to_json(&fig6::from_matrix(&matrix, &options))),
        ("table5", to_json(&table5::from_matrix(&matrix, &options))),
        ("fig7", to_json(&fig7::from_matrix(&matrix, &options))),
        ("fig8", to_json(&fig8::from_matrix(&matrix, &options))),
        ("fig9", to_json(&fig9::from_matrix(&matrix, &options))),
        ("fig10", to_json(&fig10::from_matrix(&matrix, &options))),
        ("fig11", to_json(&fig11::from_matrix(&matrix, &options))),
        (
            "coverage",
            to_json(&crate::coverage::run_artefact(&engine, &options)),
        ),
    ]
}

/// The repository's committed golden directory (`tests/golden/` at the
/// workspace root).
pub fn default_golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// One golden file that disagrees with the freshly rendered artefact.
#[derive(Debug, Clone)]
pub enum GoldenDrift {
    /// The golden file is missing (run `conformance --bless`).
    Missing(&'static str),
    /// The golden file's bytes differ from the fresh render.
    Differs(&'static str),
}

/// Compares every committed golden snapshot in `dir` against a fresh
/// render; returns the drifting artefacts (empty means no drift).
pub fn check_goldens(dir: &Path, threads: usize) -> Vec<GoldenDrift> {
    render_golden_artefacts(threads)
        .into_iter()
        .filter_map(|(name, fresh)| {
            match std::fs::read_to_string(dir.join(format!("{name}.json"))) {
                Err(_) => Some(GoldenDrift::Missing(name)),
                Ok(stored) if stored != fresh => Some(GoldenDrift::Differs(name)),
                Ok(_) => None,
            }
        })
        .collect()
}

/// Regenerates every golden snapshot in `dir` from a fresh render.
///
/// # Errors
///
/// Returns the first I/O error encountered while writing.
pub fn bless_goldens(dir: &Path, threads: usize) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (name, fresh) in render_golden_artefacts(threads) {
        std::fs::write(dir.join(format!("{name}.json")), fresh)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_points_are_deterministic_and_valid() {
        let a = random_points(50, 7, &[]);
        let b = random_points(50, 7, &[]);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y, "same (count, seed) must draw the same points");
        }
        // Every drawn machine must be constructible.
        for point in &a {
            assert!(point.machine.l1d.geometry().is_ok());
            assert!(point.machine.l1i.geometry().is_ok());
        }
        // Different seeds draw different matrices.
        assert_ne!(a, random_points(50, 8, &[]));
    }

    #[test]
    fn check_point_conforms_on_a_baseline_point() {
        let report = check_point(&SimPoint::new(
            Benchmark::Li,
            MachineConfig::baseline(),
            RunOptions::quick().with_ops(3_000),
        ));
        assert!(report.matches(), "diff: {:?}", report.diff);
        assert!(report.oracle.exact_eq(&report.optimized));
    }

    #[test]
    fn check_plan_fans_one_stream_out_to_both_backends() {
        let options = RunOptions::quick().with_ops(2_500);
        let mut plan = SimPlan::new();
        for dpolicy in [DCachePolicy::Parallel, DCachePolicy::SelDmWayPredict] {
            plan.add(SimPoint::new(
                Benchmark::Gcc,
                MachineConfig::baseline().with_dpolicy(dpolicy),
                options,
            ));
        }
        let reports = check_plan(&plan, 2);
        assert_eq!(reports.len(), 2);
        for report in reports {
            assert!(report.matches(), "diff: {:?}", report.diff);
        }
    }
}
