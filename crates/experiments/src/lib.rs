//! Experiment harness that regenerates every table and figure of the
//! evaluation in *Reducing Set-Associative Cache Energy via Way-Prediction
//! and Selective Direct-Mapping* (Powell et al., MICRO 2001).
//!
//! Each experiment module corresponds to one table or figure:
//!
//! | module | paper artefact |
//! |---|---|
//! | [`table3`] | Table 3 — relative cache energy per access type |
//! | [`table4`] | Table 4 — d-cache miss rates, direct-mapped vs 4-way |
//! | [`fig4`] | Figure 4 — sequential-access d-cache energy-delay |
//! | [`fig5`] | Figure 5 — PC- vs XOR-based way-prediction |
//! | [`fig6`] | Figure 6 — selective-DM schemes and access breakdown |
//! | [`table5`] | Table 5 — d-cache technique summary |
//! | [`fig7`] | Figure 7 — effect of cache size (16 KB vs 32 KB) |
//! | [`fig8`] | Figure 8 — effect of associativity (2/4/8-way) |
//! | [`fig9`] | Figure 9 — 2-cycle (high-latency) d-cache |
//! | [`fig10`] | Figure 10 — i-cache way-prediction |
//! | [`fig11`] | Figure 11 — overall processor energy and energy-delay |
//!
//! Each module exposes a `run(&RunOptions) -> …Result` function returning a
//! serialisable result struct with a `to_table()` text rendering, and every
//! result records the paper's reference numbers next to the measured ones.
//! The `wp-experiments` binaries (`table3`, `fig4`, …, `run_all`) print the
//! tables and can dump JSON for EXPERIMENTS.md.
//!
//! # Example
//!
//! ```no_run
//! use wp_experiments::{fig6, RunOptions};
//!
//! let options = RunOptions::default().with_ops(100_000);
//! let result = fig6::run(&options);
//! println!("{}", result.to_table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod report;
pub mod runner;
pub mod table3;
pub mod table4;
pub mod table5;

pub use compare::PolicyComparison;
pub use report::TextTable;
pub use runner::{BenchmarkRun, MachineConfig, RunOptions};
