//! Experiment harness that regenerates every table and figure of the
//! evaluation in *Reducing Set-Associative Cache Energy via Way-Prediction
//! and Selective Direct-Mapping* (Powell et al., MICRO 2001).
//!
//! Each experiment module corresponds to one table or figure:
//!
//! | module | paper artefact |
//! |---|---|
//! | [`table3`] | Table 3 — relative cache energy per access type |
//! | [`table4`] | Table 4 — d-cache miss rates, direct-mapped vs 4-way |
//! | [`fig4`] | Figure 4 — sequential-access d-cache energy-delay |
//! | [`fig5`] | Figure 5 — PC- vs XOR-based way-prediction |
//! | [`fig6`] | Figure 6 — selective-DM schemes and access breakdown |
//! | [`table5`] | Table 5 — d-cache technique summary |
//! | [`fig7`] | Figure 7 — effect of cache size (16 KB vs 32 KB) |
//! | [`fig8`] | Figure 8 — effect of associativity (2/4/8-way) |
//! | [`fig9`] | Figure 9 — 2-cycle (high-latency) d-cache |
//! | [`fig10`] | Figure 10 — i-cache way-prediction |
//! | [`fig11`] | Figure 11 — overall processor energy and energy-delay |
//!
//! Each module exposes three entry points:
//!
//! * `plan(&RunOptions) -> SimPlan` — the simulation points the artefact
//!   needs, *declared* rather than executed;
//! * `from_matrix(&SimMatrix, &RunOptions) -> …Result` — render the
//!   artefact from already-executed results;
//! * `run(&RunOptions) -> …Result` — standalone convenience combining the
//!   two through a fresh [`SimEngine`].
//!
//! The [`engine`] module's [`SimEngine`] dedups identical points across
//! every consumer's plan and executes the unique set in parallel, so
//! `run_all` performs one sweep feeding all eleven renderers instead of
//! eleven serial re-simulations. Every result struct is serialisable and
//! records the paper's reference numbers next to the measured ones; the
//! `wp-experiments` binaries (`table3`, `fig4`, …, `run_all`) print the
//! tables and can dump JSON for EXPERIMENTS.md.
//!
//! A [`SimPoint`]'s workload is a [`wp_workloads::WorkloadSpec`]: a paper
//! benchmark, a stress scenario, or a recorded trace file whose *content
//! digest* is the dedup identity. The `trace_capture` binary records any
//! generated workload in the `WPTR` format (see `docs/TRACE_FORMAT.md`)
//! and `trace_replay` streams it back through this engine, reproducing the
//! live run's statistics exactly. `docs/PAPER_MAP.md` maps each paper
//! artefact to its module, plan, and fidelity knobs.
//!
//! # Example
//!
//! ```no_run
//! use wp_experiments::{fig6, RunOptions};
//!
//! let options = RunOptions::default().with_ops(100_000);
//! let result = fig6::run(&options);
//! println!("{}", result.to_table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod conformance;
pub mod coverage;
pub mod engine;
pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod matrix_cache;
pub mod report;
pub mod runner;
pub mod service;
pub mod storage;
pub mod table3;
pub mod table4;
pub mod table5;

pub use compare::PolicyComparison;
pub use engine::{PointObserver, SimEngine, SimMatrix, SimPlan, SimPoint};
pub use matrix_cache::{CacheHealth, EvictLockTimeout, MatrixCache};
pub use report::TextTable;
pub use runner::{
    simulate_workload, simulate_workload_cancellable, BenchmarkRun, CancelToken, Cancelled,
    CliError, CliOptions, MachineConfig, RunOptions,
};
pub use service::{Flight, FlightOutcome, Join, LeaderTicket, PointService, SweepReport};

/// The union plan of every table and figure — the set of simulation points
/// `run_all` executes. Shared by the `run_all` binary and the engine's
/// integration tests so the executed-exactly-once invariant is asserted
/// against exactly what the binary runs.
pub fn run_all_plan(options: &RunOptions) -> SimPlan {
    let mut plan = SimPlan::new();
    for points in [
        table3::plan(options),
        table4::plan(options),
        fig4::plan(options),
        fig5::plan(options),
        fig6::plan(options),
        table5::plan(options),
        fig7::plan(options),
        fig8::plan(options),
        fig9::plan(options),
        fig10::plan(options),
        fig11::plan(options),
    ] {
        plan.merge(points);
    }
    plan
}
