//! Shared simulation driver: build a processor for a (benchmark, policy,
//! cache configuration) triple, run the trace, and return the results.

use serde::{Deserialize, Serialize};
use wp_cache::{DCacheController, DCachePolicy, ICacheController, ICachePolicy, L1Config};
use wp_cpu::{CpuConfig, Processor, SimResult};
use wp_mem::{HierarchyConfig, MemoryHierarchy};
use wp_predictors::HybridBranchPredictor;
use wp_workloads::{Benchmark, TraceConfig, TraceGenerator};

/// Options shared by every experiment runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunOptions {
    /// Micro-ops simulated per benchmark per configuration.
    pub ops: usize,
    /// Trace seed (fixed so results are reproducible run-to-run).
    pub seed: u64,
}

impl RunOptions {
    /// The default experiment length used by the binaries (large enough for
    /// stable rates on every benchmark).
    pub fn default_ops() -> usize {
        400_000
    }

    /// Sets the trace length.
    pub fn with_ops(mut self, ops: usize) -> Self {
        self.ops = ops;
        self
    }

    /// Sets the trace seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A small configuration for quick runs (benchmarks and CI tests).
    pub fn quick() -> Self {
        Self {
            ops: 60_000,
            seed: 42,
        }
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            ops: Self::default_ops(),
            seed: 42,
        }
    }
}

/// The complete hardware configuration of one simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// L1 d-cache configuration.
    pub l1d: L1Config,
    /// L1 i-cache configuration.
    pub l1i: L1Config,
    /// D-cache access policy.
    pub dpolicy: DCachePolicy,
    /// I-cache access policy.
    pub ipolicy: ICachePolicy,
    /// Core parameters.
    pub cpu: CpuConfig,
}

impl MachineConfig {
    /// The paper's baseline machine: 1-cycle, 4-way, parallel-access L1s on
    /// the Table 1 core.
    pub fn baseline() -> Self {
        Self {
            l1d: L1Config::paper_dcache(),
            l1i: L1Config::paper_icache(),
            dpolicy: DCachePolicy::Parallel,
            ipolicy: ICachePolicy::Parallel,
            cpu: CpuConfig::default(),
        }
    }

    /// Returns a copy with a different d-cache policy.
    pub fn with_dpolicy(mut self, dpolicy: DCachePolicy) -> Self {
        self.dpolicy = dpolicy;
        self
    }

    /// Returns a copy with a different i-cache policy.
    pub fn with_ipolicy(mut self, ipolicy: ICachePolicy) -> Self {
        self.ipolicy = ipolicy;
        self
    }

    /// Returns a copy with a different d-cache configuration.
    pub fn with_l1d(mut self, l1d: L1Config) -> Self {
        self.l1d = l1d;
        self
    }

    /// Returns a copy with a different i-cache configuration.
    pub fn with_l1i(mut self, l1i: L1Config) -> Self {
        self.l1i = l1i;
        self
    }
}

/// One (benchmark, machine) simulation outcome.
#[derive(Debug, Clone)]
pub struct BenchmarkRun {
    /// The benchmark simulated.
    pub benchmark: Benchmark,
    /// The machine configuration simulated.
    pub machine: MachineConfig,
    /// The measured result.
    pub result: SimResult,
}

/// Builds and runs one simulation.
///
/// # Panics
///
/// Panics if `machine` contains an invalid cache configuration; the
/// configurations used by the experiment modules are all statically valid.
pub fn simulate(benchmark: Benchmark, machine: &MachineConfig, options: &RunOptions) -> BenchmarkRun {
    let dcache = DCacheController::new(machine.l1d, machine.dpolicy)
        .expect("experiment d-cache configuration must be valid");
    let icache = ICacheController::new(machine.l1i, machine.ipolicy)
        .expect("experiment i-cache configuration must be valid");
    let hierarchy =
        MemoryHierarchy::new(HierarchyConfig::default()).expect("Table 1 hierarchy is valid");
    let mut cpu = Processor::new(
        machine.cpu,
        dcache,
        icache,
        hierarchy,
        HybridBranchPredictor::default(),
    );
    let trace = TraceGenerator::new(
        TraceConfig::new(benchmark)
            .with_ops(options.ops)
            .with_seed(options.seed),
    );
    let result = cpu.run(trace);
    BenchmarkRun {
        benchmark,
        machine: *machine,
        result,
    }
}

/// Runs every benchmark on one machine configuration.
pub fn simulate_all(machine: &MachineConfig, options: &RunOptions) -> Vec<BenchmarkRun> {
    Benchmark::all()
        .iter()
        .map(|&b| simulate(b, machine, options))
        .collect()
}

/// Parses the command-line arguments shared by every experiment binary:
/// `--ops N` to change the trace length, `--seed N` to change the seed, and
/// `--json` to print machine-readable output. Unknown arguments are ignored.
pub fn options_from_args(args: impl Iterator<Item = String>) -> (RunOptions, bool) {
    let mut options = RunOptions::default();
    let mut json = false;
    let args: Vec<String> = args.collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--quick" => options = RunOptions::quick(),
            "--ops" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    options.ops = v;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    options.seed = v;
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    (options, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_builders_compose() {
        let o = RunOptions::default().with_ops(123).with_seed(7);
        assert_eq!(o.ops, 123);
        assert_eq!(o.seed, 7);
        assert!(RunOptions::quick().ops < RunOptions::default().ops);
    }

    #[test]
    fn machine_builders_compose() {
        let m = MachineConfig::baseline()
            .with_dpolicy(DCachePolicy::Sequential)
            .with_ipolicy(ICachePolicy::WayPredict)
            .with_l1d(L1Config::paper_dcache().with_associativity(8));
        assert_eq!(m.dpolicy, DCachePolicy::Sequential);
        assert_eq!(m.ipolicy, ICachePolicy::WayPredict);
        assert_eq!(m.l1d.associativity, 8);
    }

    #[test]
    fn simulate_produces_consistent_counts() {
        let run = simulate(
            Benchmark::Troff,
            &MachineConfig::baseline(),
            &RunOptions::quick().with_ops(20_000),
        );
        assert_eq!(run.result.activity.instructions, 20_000);
        assert!(run.result.cycles > 0);
    }

    #[test]
    fn identical_options_give_identical_results() {
        let machine = MachineConfig::baseline().with_dpolicy(DCachePolicy::SelDmWayPredict);
        let options = RunOptions::quick().with_ops(15_000);
        let a = simulate(Benchmark::Li, &machine, &options);
        let b = simulate(Benchmark::Li, &machine, &options);
        assert_eq!(a.result.cycles, b.result.cycles);
        assert_eq!(a.result.dcache, b.result.dcache);
    }
}
