//! Shared simulation driver: build a processor for a (benchmark, policy,
//! cache configuration) triple, run the trace, and return the results.
//!
//! The experiment modules do not usually call [`simulate`] directly any
//! more — they declare [`crate::engine::SimPlan`]s and render from the
//! deduplicated [`crate::engine::SimMatrix`]; this module supplies the
//! underlying executor and the [`MachineConfig`] key type.

use core::fmt;

use serde::{Deserialize, Serialize};
use wp_cache::{DCachePolicy, ICachePolicy, L1Config};
use wp_cpu::{run_lane_batch, CpuConfig, LaneMember, Processor, SimResult};
use wp_workloads::{Benchmark, SharedStream, WorkloadSpec};

use crate::engine::{SimEngine, SimMatrix, SimPlan};
use crate::matrix_cache::MatrixCache;

/// Options shared by every experiment runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RunOptions {
    /// Micro-ops simulated per benchmark per configuration.
    pub ops: usize,
    /// Trace seed (fixed so results are reproducible run-to-run).
    pub seed: u64,
}

impl RunOptions {
    /// The default experiment length used by the binaries (large enough for
    /// stable rates on every benchmark).
    pub fn default_ops() -> usize {
        400_000
    }

    /// Sets the trace length.
    pub fn with_ops(mut self, ops: usize) -> Self {
        self.ops = ops;
        self
    }

    /// Sets the trace seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A small configuration for quick runs (benchmarks and CI tests).
    pub fn quick() -> Self {
        Self {
            ops: 60_000,
            seed: 42,
        }
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            ops: Self::default_ops(),
            seed: 42,
        }
    }
}

/// The complete hardware configuration of one simulation. `Hash`/`Eq` make
/// it usable as (part of) the [`crate::engine::SimMatrix`] key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MachineConfig {
    /// L1 d-cache configuration.
    pub l1d: L1Config,
    /// L1 i-cache configuration.
    pub l1i: L1Config,
    /// D-cache access policy.
    pub dpolicy: DCachePolicy,
    /// I-cache access policy.
    pub ipolicy: ICachePolicy,
    /// Core parameters.
    pub cpu: CpuConfig,
}

impl MachineConfig {
    /// The paper's baseline machine: 1-cycle, 4-way, parallel-access L1s on
    /// the Table 1 core.
    pub fn baseline() -> Self {
        Self {
            l1d: L1Config::paper_dcache(),
            l1i: L1Config::paper_icache(),
            dpolicy: DCachePolicy::Parallel,
            ipolicy: ICachePolicy::Parallel,
            cpu: CpuConfig::default(),
        }
    }

    /// Returns a copy with a different d-cache policy.
    pub fn with_dpolicy(mut self, dpolicy: DCachePolicy) -> Self {
        self.dpolicy = dpolicy;
        self
    }

    /// Returns a copy with a different i-cache policy.
    pub fn with_ipolicy(mut self, ipolicy: ICachePolicy) -> Self {
        self.ipolicy = ipolicy;
        self
    }

    /// Returns a copy with a different d-cache configuration.
    pub fn with_l1d(mut self, l1d: L1Config) -> Self {
        self.l1d = l1d;
        self
    }

    /// Returns a copy with a different i-cache configuration.
    pub fn with_l1i(mut self, l1i: L1Config) -> Self {
        self.l1i = l1i;
        self
    }
}

/// One (benchmark, machine) simulation outcome.
#[derive(Debug, Clone)]
pub struct BenchmarkRun {
    /// The benchmark simulated.
    pub benchmark: Benchmark,
    /// The machine configuration simulated.
    pub machine: MachineConfig,
    /// The measured result.
    pub result: SimResult,
}

/// Builds and runs one simulation over any workload source: a synthetic
/// benchmark, a stress scenario, or a recorded trace replayed off disk. The
/// stream never materializes in memory; the processor consumes it the same
/// way in all three cases.
///
/// # Panics
///
/// Panics if `machine` contains an invalid cache configuration, or if a
/// trace-file workload cannot be re-opened (its header was validated when
/// the [`WorkloadSpec`] was built, so a failure here means the file changed
/// underneath the experiment).
pub fn simulate_workload(
    workload: &WorkloadSpec,
    machine: &MachineConfig,
    options: &RunOptions,
) -> SimResult {
    let mut cpu = Processor::with_l1(
        machine.cpu,
        machine.l1d,
        machine.dpolicy,
        machine.l1i,
        machine.ipolicy,
    )
    .expect("experiment cache configurations must be valid");
    let stream = workload
        .stream(options.ops, options.seed)
        .unwrap_or_else(|e| panic!("workload {workload} failed to open: {e}"));
    cpu.run(stream)
}

/// A cooperative cancellation token for [`simulate_workload_cancellable`]:
/// a wall-clock deadline, a shared cancel flag, or both. The simulation
/// polls it once per op block ([`wp_workloads::DEFAULT_OP_BLOCK`] ops), so
/// cancellation latency is bounded by one block of simulation, not by the
/// whole run — the property the service's deadline layer is built on.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    deadline: Option<std::time::Instant>,
    flag: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl CancelToken {
    /// A token that never fires: the cancellable executor behaves exactly
    /// like [`simulate_workload`].
    pub fn never() -> Self {
        Self::default()
    }

    /// Returns a copy that fires once the wall clock passes `deadline`.
    pub fn with_deadline(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns a copy that fires once `flag` is set (the service sets it on
    /// explicit client cancellation and shutdown).
    pub fn with_flag(mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) -> Self {
        self.flag = Some(flag);
        self
    }

    /// The wall-clock instant the deadline component fires at, if any —
    /// the service's follower re-lead path compares its own budget against
    /// the leader's.
    pub fn deadline(&self) -> Option<std::time::Instant> {
        self.deadline
    }

    /// True once the deadline has passed or the flag is set.
    pub fn is_cancelled(&self) -> bool {
        if let Some(flag) = &self.flag {
            if flag.load(std::sync::atomic::Ordering::Relaxed) {
                return true;
            }
        }
        match self.deadline {
            Some(deadline) => std::time::Instant::now() >= deadline,
            None => false,
        }
    }
}

/// A simulation stopped by its [`CancelToken`] before completing, with the
/// partial-progress counters the service reports in `DeadlineExceeded`
/// errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// Ops the processor consumed before the token fired.
    pub ops_completed: u64,
    /// Ops the run would have simulated ([`RunOptions::ops`]).
    pub ops_requested: u64,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation cancelled after {} of {} ops",
            self.ops_completed, self.ops_requested
        )
    }
}

impl std::error::Error for Cancelled {}

/// Wraps a block source, polling a [`CancelToken`] once per refill: when
/// the token fires while ops remain, the refilled block is discarded and
/// the source reports exhaustion, recording how far the run got. The token
/// is checked only while the inner source still produces, so a run whose
/// last block was consumed before the deadline completes normally — a
/// finished simulation is never misreported as cancelled. The op sequence
/// up to the cut is untouched, so an uncancelled run is bit-identical to
/// the unwrapped source.
struct CancelSource<'a, S> {
    inner: S,
    token: &'a CancelToken,
    ops_completed: u64,
    cancelled: bool,
}

impl<S: wp_workloads::OpBlockSource> wp_workloads::OpBlockSource for CancelSource<'_, S> {
    fn fill(&mut self, buf: &mut wp_workloads::OpBuffer) -> usize {
        let produced = self.inner.fill(buf);
        if produced == 0 {
            return 0;
        }
        if self.token.is_cancelled() {
            self.cancelled = true;
            buf.clear();
            return 0;
        }
        self.ops_completed += produced as u64;
        produced
    }
}

/// [`simulate_workload`] with cooperative cancellation: the run checks
/// `token` at op-block granularity and stops early once it fires, returning
/// [`Cancelled`] with partial-progress counters instead of a result. A run
/// whose token never fires returns a result bit-identical to
/// [`simulate_workload`] — the cancel seam adds no observable behaviour
/// (asserted by the runner tests), so the service and the batch path share
/// one executor.
///
/// # Errors
///
/// Returns [`Cancelled`] if the token fired before the workload was fully
/// consumed; the partial [`SimResult`] is discarded (it is not a valid
/// measurement of the point).
///
/// # Panics
///
/// Panics exactly where [`simulate_workload`] does: invalid cache
/// configuration or a workload that fails to open.
pub fn simulate_workload_cancellable(
    workload: &WorkloadSpec,
    machine: &MachineConfig,
    options: &RunOptions,
    token: &CancelToken,
) -> Result<SimResult, Cancelled> {
    let mut cpu = Processor::with_l1(
        machine.cpu,
        machine.l1d,
        machine.dpolicy,
        machine.l1i,
        machine.ipolicy,
    )
    .expect("experiment cache configurations must be valid");
    let stream = workload
        .stream(options.ops, options.seed)
        .unwrap_or_else(|e| panic!("workload {workload} failed to open: {e}"));
    let mut source = CancelSource {
        inner: wp_workloads::IterBlockSource(stream),
        token,
        ops_completed: 0,
        cancelled: false,
    };
    let result = cpu.run_blocks(&mut source);
    if source.cancelled {
        Err(Cancelled {
            ops_completed: source.ops_completed,
            ops_requested: options.ops as u64,
        })
    } else {
        Ok(result)
    }
}

/// Builds and runs one simulation over an already-materialized shared
/// workload stream — the gang-scheduled executor: the stream was produced
/// once by [`wp_workloads::SharedStream::materialize`] and any number of
/// machine configurations replay it through independent readers, so the
/// op-generation cost is paid once per gang instead of once per point.
/// Results are bit-identical to [`simulate_workload`] over the same
/// `(workload, ops, seed)` triple.
///
/// # Panics
///
/// Panics if `machine` contains an invalid cache configuration or a spilled
/// stream's temp file cannot be re-opened.
pub fn simulate_workload_shared(stream: &SharedStream, machine: &MachineConfig) -> SimResult {
    let mut cpu = Processor::with_l1(
        machine.cpu,
        machine.l1d,
        machine.dpolicy,
        machine.l1i,
        machine.ipolicy,
    )
    .expect("experiment cache configurations must be valid");
    let mut reader = stream
        .reader()
        .unwrap_or_else(|e| panic!("shared workload stream failed to re-open: {e}"));
    cpu.run_blocks(&mut reader)
}

/// Runs a whole lane batch — up to [`wp_cpu::MAX_LANES`] machine
/// configurations sharing a d-cache policy and tag geometry — over **one**
/// walk of an already-materialized shared stream, returning one result per
/// machine in input order. Each result is bit-identical to
/// [`simulate_workload_shared`] of the same machine (the conformance
/// harness and `tests/lanes.rs` hold the engine to this); the engine's gang
/// scheduler calls this for the batchable subsets of a gang and falls back
/// to the scalar executor for the rest.
///
/// # Panics
///
/// Panics if `machines` is empty, disagrees on d-cache policy or geometry
/// (the engine groups by the batch key before calling), contains an invalid
/// cache configuration, or a spilled stream's temp file cannot be
/// re-opened.
pub fn simulate_workload_shared_lanes(
    stream: &SharedStream,
    machines: &[MachineConfig],
) -> Vec<SimResult> {
    let dpolicy = machines
        .first()
        .expect("lane batches are never empty")
        .dpolicy;
    debug_assert!(machines.iter().all(|m| m.dpolicy == dpolicy));
    let members: Vec<LaneMember> = machines
        .iter()
        .map(|m| LaneMember {
            cpu: m.cpu,
            l1d: m.l1d,
            l1i: m.l1i,
            ipolicy: m.ipolicy,
        })
        .collect();
    let mut reader = stream
        .reader()
        .unwrap_or_else(|e| panic!("shared workload stream failed to re-open: {e}"));
    run_lane_batch(dpolicy, &members, &mut reader)
        .expect("experiment cache configurations must be valid")
}

/// Builds and runs one simulation of a paper benchmark.
///
/// # Panics
///
/// Panics if `machine` contains an invalid cache configuration; the
/// configurations used by the experiment modules are all statically valid.
pub fn simulate(
    benchmark: Benchmark,
    machine: &MachineConfig,
    options: &RunOptions,
) -> BenchmarkRun {
    let result = simulate_workload(&WorkloadSpec::Benchmark(benchmark), machine, options);
    BenchmarkRun {
        benchmark,
        machine: *machine,
        result,
    }
}

/// Runs every benchmark on one machine configuration.
pub fn simulate_all(machine: &MachineConfig, options: &RunOptions) -> Vec<BenchmarkRun> {
    Benchmark::all()
        .iter()
        .map(|&b| simulate(b, machine, options))
        .collect()
}

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CliOptions {
    /// Simulation length and seed.
    pub run: RunOptions,
    /// Print machine-readable JSON instead of text tables.
    pub json: bool,
    /// Worker threads for the engine (`None` = all available cores).
    pub threads: Option<usize>,
    /// Disable the persistent on-disk matrix cache (`--no-matrix-cache`):
    /// every point simulates, and nothing is written back.
    pub no_matrix_cache: bool,
    /// Root the matrix cache at this directory instead of
    /// [`MatrixCache::default_dir`] (`--matrix-cache-dir PATH`).
    pub matrix_cache_dir: Option<std::path::PathBuf>,
    /// Cap the matrix cache directory at this many bytes
    /// (`--matrix-cache-cap BYTES`): stores beyond the cap evict
    /// oldest-mtime records first (see `docs/RELIABILITY.md`). Defaults to
    /// the `WPSDM_MATRIX_CACHE_CAP` environment override, else unbounded.
    /// Zero is rejected at parse time — a cache that can hold nothing is a
    /// misconfiguration, not a policy.
    pub matrix_cache_cap: Option<u64>,
    /// Disable gang scheduling (`--no-gang`): every simulated point
    /// generates its own workload stream instead of sharing one
    /// materialization per `(workload, ops, seed)` gang. Results are
    /// bit-identical either way; the flag exists for determinism auditing
    /// (CI diffs gang-on against gang-off output) and benchmarking.
    pub no_gang: bool,
    /// Disable config-parallel lane kernels (`--no-lanes`): every gang
    /// member replays its stream through the scalar executor instead of
    /// batching geometry-sharing members through one
    /// [`simulate_workload_shared_lanes`] walk. Results are bit-identical
    /// either way; like `--no-gang` the flag exists for determinism
    /// auditing and benchmarking.
    pub no_lanes: bool,
    /// Path of a workload-profile file (`--profile FILE`): a versioned
    /// JSON description of an adversarial scenario mix (see
    /// `docs/WORKLOADS.md`). Parsed here, loaded and validated by
    /// [`CliOptions::load_profile`]; the binaries that honour it are
    /// `run_all`, `conformance`, `trace_capture`, and `coverage_report` —
    /// the single-artefact binaries reject it.
    pub profile: Option<std::path::PathBuf>,
    /// Cap the resident bytes of one materialized gang stream
    /// (`--stream-cap BYTES`); longer streams spill to the `WPTR` codec on
    /// disk. Results are bit-identical at any cap — this is a memory knob
    /// and the tests' lever for exercising the spill path — so it lives
    /// here rather than in [`RunOptions`], which is the simulation *dedup
    /// key*: a field there would split identical results into distinct
    /// matrix/cache entries. Defaults to the `WPSDM_STREAM_MEMORY_CAP`
    /// environment override, else 64 MiB.
    pub stream_cap: Option<usize>,
    /// Write the cache-health counters ([`crate::CacheHealth`]) as JSON to
    /// this path after the run (`--health-json PATH`) — the machine-readable
    /// twin of the stderr health line, and the same struct the `wp-serve`
    /// daemon returns for a `health` request. Honoured by `run_all`;
    /// rejected by `conformance` (which compares executors, not caches).
    pub health_json: Option<std::path::PathBuf>,
}

impl CliOptions {
    /// Parses `std::env::args()`, printing the error and usage to stderr and
    /// exiting with status 2 on a bad command line.
    pub fn from_env_or_exit() -> Self {
        match options_from_args(std::env::args().skip(1)) {
            Ok(options) => options,
            Err(error) => {
                eprintln!("error: {error}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Loads and validates the `--profile` file, if one was given.
    ///
    /// # Errors
    ///
    /// Returns the [`wp_workloads::ProfileError`] naming the file on any
    /// read, parse, version, or field problem.
    pub fn load_profile(
        &self,
    ) -> Result<Option<wp_workloads::ProfileSpec>, wp_workloads::ProfileError> {
        self.profile
            .as_deref()
            .map(wp_workloads::ProfileSpec::load)
            .transpose()
    }

    /// [`CliOptions::load_profile`], printing the error plus usage to
    /// stderr and exiting with status 2 on a bad profile file — the same
    /// contract as a bad command line ([`CliOptions::from_env_or_exit`]).
    pub fn profile_or_exit(&self) -> Option<wp_workloads::ProfileSpec> {
        match self.load_profile() {
            Ok(profile) => profile,
            Err(error) => {
                eprintln!("error: {error}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// The engine the options ask for: the requested thread count, with the
    /// persistent matrix cache attached unless `--no-matrix-cache` was
    /// given (results served from the cache are bit-identical to
    /// simulating, so the flag exists for determinism auditing and CI,
    /// not correctness).
    pub fn engine(&self) -> SimEngine {
        let mut engine = match self.threads {
            Some(threads) => SimEngine::new(threads),
            None => SimEngine::default(),
        };
        if self.no_gang {
            engine = engine.without_gang();
        }
        if self.no_lanes {
            engine = engine.without_lanes();
        }
        if let Some(cap) = self.stream_cap {
            engine = engine.with_stream_memory_cap(cap);
        }
        if self.no_matrix_cache {
            return engine;
        }
        let mut cache = match &self.matrix_cache_dir {
            Some(dir) => MatrixCache::new(dir),
            None => MatrixCache::at_default_dir(),
        };
        if self.matrix_cache_cap.is_some() {
            cache = cache.with_cap(self.matrix_cache_cap);
        }
        if let Some(io) = crate::storage::FaultyIo::from_env() {
            // The fault-injection knob (`WPSDM_MATRIX_CACHE_FAULT_SEED`):
            // CI's reliability job runs the real binaries over a faulty
            // cache and asserts byte-identical output.
            cache = cache.with_io_backend(io);
        }
        engine.with_matrix_cache(cache)
    }
}

/// Usage text shared by the binaries.
pub const USAGE: &str = "usage: <experiment> [--quick] [--ops N] [--seed N] [--threads N] \
                         [--json] [--profile FILE] [--no-gang] [--no-lanes] \
                         [--stream-cap BYTES] [--no-matrix-cache] [--matrix-cache-dir PATH] \
                         [--matrix-cache-cap BYTES] [--health-json PATH]";

/// Shared body of the single-artefact binaries: parse the command line,
/// execute the artefact's plan on the engine, render from the matrix, and
/// print the result as a text table or (`--json`) machine-readable JSON.
pub fn artefact_main<R: serde::Serialize>(
    plan: fn(&RunOptions) -> SimPlan,
    from_matrix: fn(&SimMatrix, &RunOptions) -> R,
    to_table: fn(&R) -> String,
) {
    let cli = CliOptions::from_env_or_exit();
    if cli.profile.is_some() {
        // Profiles describe whole workload mixes; the single-artefact
        // binaries render fixed paper figures and must not silently ignore
        // a request to run something else.
        eprintln!("error: flag `--profile` is not supported by single-artefact binaries");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let matrix = cli.engine().run(&plan(&cli.run));
    if matrix.cache_hits() > 0 {
        // Make cached sweeps impossible to mistake for fresh ones: the
        // cache is keyed by configuration, not by code, so after a
        // simulator change the stored results must be dropped (bump
        // `matrix_cache::CACHE_FORMAT_VERSION`) or bypassed.
        eprintln!(
            "note: {} of {} points served from the on-disk matrix cache; \
             pass --no-matrix-cache to re-simulate everything",
            matrix.cache_hits(),
            matrix.cache_hits() + matrix.executed_points()
        );
    }
    let result = from_matrix(&matrix, &cli.run);
    if cli.json {
        println!("{}", crate::report::to_json(&result));
    } else {
        println!("{}", to_table(&result));
    }
}

/// A command-line parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A flag the experiment binaries do not understand.
    UnknownFlag(String),
    /// A flag that takes a value appeared without one.
    MissingValue(&'static str),
    /// A flag value that did not parse.
    InvalidValue(&'static str, String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            CliError::MissingValue(flag) => write!(f, "flag `{flag}` requires a value"),
            CliError::InvalidValue(flag, value) => {
                write!(f, "invalid value `{value}` for flag `{flag}`")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Parses the command-line arguments shared by every experiment binary:
/// `--quick` for the short configuration, `--ops N` and `--seed N` for the
/// trace, `--threads N` for the engine's worker count, `--json` for
/// machine-readable output, `--no-gang` to disable gang-scheduled stream
/// sharing, `--no-lanes` to disable config-parallel lane kernels within
/// gangs, and `--no-matrix-cache` / `--matrix-cache-dir PATH` to control
/// the persistent result cache (CI and trace_replay use
/// `--no-matrix-cache` to force every point to simulate, and diff
/// `--no-gang` output against the default to audit gang determinism).
/// Unknown flags are reported as errors rather than silently
/// ignored, and explicit `--ops`/`--seed` always override `--quick`
/// regardless of flag order.
pub fn options_from_args(args: impl Iterator<Item = String>) -> Result<CliOptions, CliError> {
    let mut options = CliOptions::default();
    let mut quick = false;
    let mut ops: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => options.json = true,
            "--quick" => quick = true,
            "--ops" => ops = Some(parse_value("--ops", args.next())?),
            "--seed" => seed = Some(parse_value("--seed", args.next())?),
            "--threads" => {
                let threads: usize = parse_value("--threads", args.next())?;
                if threads == 0 {
                    return Err(CliError::InvalidValue("--threads", "0".to_string()));
                }
                options.threads = Some(threads);
            }
            "--no-gang" => options.no_gang = true,
            "--no-lanes" => options.no_lanes = true,
            "--stream-cap" => {
                options.stream_cap = Some(parse_value("--stream-cap", args.next())?);
            }
            "--profile" => {
                let file = args.next().ok_or(CliError::MissingValue("--profile"))?;
                options.profile = Some(file.into());
            }
            "--no-matrix-cache" => options.no_matrix_cache = true,
            "--matrix-cache-dir" => {
                let dir = args
                    .next()
                    .ok_or(CliError::MissingValue("--matrix-cache-dir"))?;
                options.matrix_cache_dir = Some(dir.into());
            }
            "--health-json" => {
                let path = args.next().ok_or(CliError::MissingValue("--health-json"))?;
                options.health_json = Some(path.into());
            }
            "--matrix-cache-cap" => {
                let cap: u64 = parse_value("--matrix-cache-cap", args.next())?;
                if cap == 0 {
                    return Err(CliError::InvalidValue(
                        "--matrix-cache-cap",
                        "0".to_string(),
                    ));
                }
                options.matrix_cache_cap = Some(cap);
            }
            other => return Err(CliError::UnknownFlag(other.to_string())),
        }
    }
    if quick {
        options.run = RunOptions::quick();
    }
    if let Some(ops) = ops {
        options.run.ops = ops;
    }
    if let Some(seed) = seed {
        options.run.seed = seed;
    }
    Ok(options)
}

fn parse_value<T: std::str::FromStr>(
    flag: &'static str,
    value: Option<String>,
) -> Result<T, CliError> {
    let value = value.ok_or(CliError::MissingValue(flag))?;
    value
        .parse()
        .map_err(|_| CliError::InvalidValue(flag, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn parse(args: &[&str]) -> Result<CliOptions, CliError> {
        options_from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn options_builders_compose() {
        let o = RunOptions::default().with_ops(123).with_seed(7);
        assert_eq!(o.ops, 123);
        assert_eq!(o.seed, 7);
        assert!(RunOptions::quick().ops < RunOptions::default().ops);
    }

    #[test]
    fn machine_builders_compose() {
        let m = MachineConfig::baseline()
            .with_dpolicy(DCachePolicy::Sequential)
            .with_ipolicy(ICachePolicy::WayPredict)
            .with_l1d(L1Config::paper_dcache().with_associativity(8));
        assert_eq!(m.dpolicy, DCachePolicy::Sequential);
        assert_eq!(m.ipolicy, ICachePolicy::WayPredict);
        assert_eq!(m.l1d.associativity, 8);
    }

    #[test]
    fn simulate_produces_consistent_counts() {
        let run = simulate(
            Benchmark::Troff,
            &MachineConfig::baseline(),
            &RunOptions::quick().with_ops(20_000),
        );
        assert_eq!(run.result.activity.instructions, 20_000);
        assert!(run.result.cycles > 0);
    }

    #[test]
    fn identical_options_give_identical_results() {
        let machine = MachineConfig::baseline().with_dpolicy(DCachePolicy::SelDmWayPredict);
        let options = RunOptions::quick().with_ops(15_000);
        let a = simulate(Benchmark::Li, &machine, &options);
        let b = simulate(Benchmark::Li, &machine, &options);
        assert_eq!(a.result.cycles, b.result.cycles);
        assert_eq!(a.result.dcache, b.result.dcache);
    }

    #[test]
    fn known_flags_parse() {
        let options = parse(&[
            "--quick",
            "--ops",
            "1234",
            "--seed",
            "9",
            "--threads",
            "3",
            "--json",
        ])
        .expect("valid command line");
        assert_eq!(options.run.ops, 1234);
        assert_eq!(options.run.seed, 9);
        assert_eq!(options.threads, Some(3));
        assert!(options.json);
        assert_eq!(options.engine().threads(), 3);
    }

    #[test]
    fn explicit_ops_and_seed_override_quick_in_any_order() {
        let before = parse(&["--ops", "200000", "--quick"]).expect("valid");
        let after = parse(&["--quick", "--ops", "200000"]).expect("valid");
        assert_eq!(before.run.ops, 200_000);
        assert_eq!(before.run, after.run);
        // --quick still applies to whatever was not explicitly set.
        assert_eq!(before.run.seed, RunOptions::quick().seed);
    }

    #[test]
    fn matrix_cache_flags_parse() {
        // Default: the persistent cache is attached at the default root.
        let default = parse(&[]).expect("valid");
        assert!(!default.no_matrix_cache);
        assert!(default.engine().matrix_cache().is_some());
        // --no-matrix-cache detaches it.
        let off = parse(&["--no-matrix-cache"]).expect("valid");
        assert!(off.no_matrix_cache);
        assert!(off.engine().matrix_cache().is_none());
        // --matrix-cache-dir moves it.
        let moved = parse(&["--matrix-cache-dir", "/tmp/wpsdm-cache-test"]).expect("valid");
        assert_eq!(
            moved
                .engine()
                .matrix_cache()
                .map(|cache| cache.dir().to_path_buf()),
            Some(std::path::PathBuf::from("/tmp/wpsdm-cache-test"))
        );
        assert_eq!(
            parse(&["--matrix-cache-dir"]),
            Err(CliError::MissingValue("--matrix-cache-dir"))
        );
    }

    #[test]
    fn matrix_cache_cap_flag_parses_and_reaches_the_cache() {
        let default = parse(&[]).expect("valid");
        assert_eq!(default.matrix_cache_cap, None);
        let capped = parse(&["--matrix-cache-cap", "4096"]).expect("valid");
        assert_eq!(capped.matrix_cache_cap, Some(4096));
        assert_eq!(
            capped.engine().matrix_cache().and_then(|cache| cache.cap()),
            Some(4096)
        );
        assert_eq!(
            parse(&["--matrix-cache-cap"]),
            Err(CliError::MissingValue("--matrix-cache-cap"))
        );
        assert_eq!(
            parse(&["--matrix-cache-cap", "lots"]),
            Err(CliError::InvalidValue(
                "--matrix-cache-cap",
                "lots".to_string()
            ))
        );
        assert_eq!(
            parse(&["--matrix-cache-cap", "0"]),
            Err(CliError::InvalidValue(
                "--matrix-cache-cap",
                "0".to_string()
            ))
        );
    }

    #[test]
    fn stream_cap_flag_reaches_the_engine() {
        let default = parse(&[]).expect("valid");
        assert_eq!(default.stream_cap, None);
        let capped = parse(&["--stream-cap", "1234"]).expect("valid");
        assert_eq!(capped.stream_cap, Some(1234));
        assert_eq!(capped.engine().stream_memory_cap(), 1234);
        assert_eq!(
            parse(&["--stream-cap"]),
            Err(CliError::MissingValue("--stream-cap"))
        );
        assert_eq!(
            parse(&["--stream-cap", "lots"]),
            Err(CliError::InvalidValue("--stream-cap", "lots".to_string()))
        );
    }

    #[test]
    fn gang_flag_parses_and_disables_gang_scheduling() {
        let default = parse(&[]).expect("valid");
        assert!(!default.no_gang);
        assert!(default.engine().gang_enabled());
        let off = parse(&["--no-gang"]).expect("valid");
        assert!(off.no_gang);
        assert!(!off.engine().gang_enabled());
    }

    #[test]
    fn lanes_flag_parses_and_disables_lane_batching() {
        let default = parse(&[]).expect("valid");
        assert!(!default.no_lanes);
        assert!(default.engine().lanes_enabled());
        let off = parse(&["--no-lanes"]).expect("valid");
        assert!(off.no_lanes);
        assert!(!off.engine().lanes_enabled());
    }

    #[test]
    fn profile_flag_parses_and_loads_lazily() {
        let none = parse(&[]).expect("valid");
        assert_eq!(none.profile, None);
        assert!(none.load_profile().expect("no profile is fine").is_none());
        let with = parse(&["--profile", "/tmp/p.json"]).expect("valid");
        assert_eq!(with.profile, Some(std::path::PathBuf::from("/tmp/p.json")));
        assert_eq!(
            parse(&["--profile"]),
            Err(CliError::MissingValue("--profile"))
        );
        // A missing file surfaces the profile error verbatim.
        let missing = parse(&["--profile", "/nonexistent/p.json"]).expect("parses");
        let err = missing.load_profile().unwrap_err();
        assert_eq!(
            err.to_string(),
            "cannot read profile `/nonexistent/p.json`: file not found"
        );
    }

    #[test]
    fn unknown_flags_are_reported() {
        assert_eq!(
            parse(&["--frobnicate"]),
            Err(CliError::UnknownFlag("--frobnicate".to_string()))
        );
    }

    #[test]
    fn missing_and_invalid_values_are_reported() {
        assert_eq!(parse(&["--ops"]), Err(CliError::MissingValue("--ops")));
        assert_eq!(
            parse(&["--seed", "abc"]),
            Err(CliError::InvalidValue("--seed", "abc".to_string()))
        );
        assert_eq!(
            parse(&["--threads", "0"]),
            Err(CliError::InvalidValue("--threads", "0".to_string()))
        );
        let error = parse(&["--threads", "x"]).unwrap_err();
        assert!(error.to_string().contains("--threads"));
    }

    #[test]
    fn uncancelled_runs_are_bit_identical_to_the_plain_executor() {
        let workload = WorkloadSpec::Benchmark(Benchmark::Gcc);
        let machine = MachineConfig::baseline().with_dpolicy(DCachePolicy::SelDmWayPredict);
        let options = RunOptions::quick().with_ops(12_000);
        let plain = simulate_workload(&workload, &machine, &options);
        let cancellable =
            simulate_workload_cancellable(&workload, &machine, &options, &CancelToken::never())
                .expect("a token that never fires must not cancel");
        assert!(
            plain.exact_eq(&cancellable),
            "the cancel seam must add no observable behaviour"
        );
    }

    #[test]
    fn fired_tokens_cancel_with_partial_progress() {
        let workload = WorkloadSpec::Benchmark(Benchmark::Li);
        let machine = MachineConfig::baseline();
        let options = RunOptions::quick().with_ops(10_000);
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let token = CancelToken::never().with_flag(flag);
        let error = simulate_workload_cancellable(&workload, &machine, &options, &token)
            .expect_err("a pre-fired token must cancel");
        assert_eq!(error.ops_requested, 10_000);
        assert!(
            error.ops_completed < error.ops_requested,
            "a cancelled run never consumed the whole workload"
        );
        assert_eq!(
            error.to_string(),
            format!(
                "simulation cancelled after {} of 10000 ops",
                error.ops_completed
            )
        );
    }

    #[test]
    fn expired_deadlines_cancel() {
        let token =
            CancelToken::never().with_deadline(std::time::Instant::now() - Duration::from_secs(1));
        assert!(token.is_cancelled());
        assert!(!CancelToken::never().is_cancelled());
        let error = simulate_workload_cancellable(
            &WorkloadSpec::Benchmark(Benchmark::Li),
            &MachineConfig::baseline(),
            &RunOptions::quick().with_ops(8_000),
            &token,
        )
        .expect_err("an expired deadline must cancel");
        assert!(error.ops_completed < 8_000);
    }

    #[test]
    fn health_json_flag_parses() {
        let default = parse(&[]).expect("valid");
        assert_eq!(default.health_json, None);
        let with = parse(&["--health-json", "/tmp/health.json"]).expect("valid");
        assert_eq!(
            with.health_json,
            Some(std::path::PathBuf::from("/tmp/health.json"))
        );
        assert_eq!(
            parse(&["--health-json"]),
            Err(CliError::MissingValue("--health-json"))
        );
    }

    #[test]
    fn machine_config_hashes_by_value() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        assert!(set.insert(MachineConfig::baseline()));
        assert!(!set.insert(MachineConfig::baseline()));
        assert!(set.insert(MachineConfig::baseline().with_dpolicy(DCachePolicy::Sequential)));
    }
}
