//! Figure 4 — energy-delay and performance of a sequential-access d-cache.
//!
//! Sequential access saves the most raw energy (only the matching way is
//! ever read) but serializes the tag and data arrays: every access takes an
//! extra cycle, which the out-of-order core cannot hide. The paper reports
//! an average 68 % energy-delay reduction at an average 11 % (up to 18 %)
//! performance degradation — good energy, unacceptable performance for an
//! L1.

use serde::{Deserialize, Serialize};
use wp_cache::{DCachePolicy, L1Config};

use crate::compare::DcacheFigure;
use crate::engine::{SimEngine, SimMatrix, SimPlan};
use crate::runner::RunOptions;

/// The regenerated Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// The underlying comparison (sequential vs. 1-cycle parallel).
    pub figure: DcacheFigure,
}

const TITLE: &str = "Figure 4: sequential-access d-cache, relative to 1-cycle parallel access";
const POLICIES: [DCachePolicy; 1] = [DCachePolicy::Sequential];
const PAPER: [(&str, f64, f64); 1] = [("sequential", 68.0, 11.0)];

/// The simulation points Figure 4 needs.
pub fn plan(options: &RunOptions) -> SimPlan {
    DcacheFigure::plan(&POLICIES, L1Config::paper_dcache(), options)
}

/// Renders Figure 4 from an executed matrix containing [`plan`]'s points.
pub fn from_matrix(matrix: &SimMatrix, options: &RunOptions) -> Fig4Result {
    Fig4Result {
        figure: DcacheFigure::from_matrix(
            matrix,
            TITLE,
            &POLICIES,
            L1Config::paper_dcache(),
            options,
            &PAPER,
        ),
    }
}

/// Regenerates Figure 4 standalone (plans, executes, renders).
pub fn run(options: &RunOptions) -> Fig4Result {
    from_matrix(&SimEngine::default().run(&plan(options)), options)
}

impl Fig4Result {
    /// Renders the figure data as text.
    pub fn to_table(&self) -> String {
        self.figure.to_table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_saves_energy_but_costs_performance() {
        let result = run(&RunOptions::quick());
        let savings = result
            .figure
            .average_savings(DCachePolicy::Sequential)
            .expect("sequential average present");
        let degradation = result
            .figure
            .average_degradation(DCachePolicy::Sequential)
            .expect("sequential average present");
        // Shape: deep energy-delay savings, but a clearly visible slowdown.
        assert!(savings > 0.5, "savings {savings}");
        assert!(degradation > 0.02, "degradation {degradation}");
        assert!(result.to_table().contains("sequential"));
    }
}
